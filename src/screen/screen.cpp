#include "screen/screen.hpp"

#include <exception>
#include <limits>
#include <optional>
#include <utility>

#include "miri/value.hpp"

namespace rustbrain::screen {

namespace {

using lang::Type;
using miri::Finding;
using miri::UbCategory;
using miri::Value;

// ---------------------------------------------------------------------------
// Internal control flow
// ---------------------------------------------------------------------------

/// The run leaves the modelled subset (or an internal invariant broke):
/// degrade to Unknown. Never escapes screen_program.
struct Bail {
    std::string reason;
};

/// A definite finding on a fully-concrete path: the run would end with
/// exactly this Finding under MiriLite.
struct Definite {
    Finding finding;
};

/// One abstract value with its propagated constraint. Concrete execution
/// keeps `range` a singleton mirroring `value`; a non-singleton range with
/// no exact value is representable (future widening) but any such value
/// reaching a step-, output- or control-flow-relevant position bails.
struct AbsValue {
    Value value;       // exact payload (valid when exact)
    Interval range;    // value constraint (singleton when exact)
    bool exact = true;
};

AbsValue make_abs(Value value) {
    AbsValue out;
    // Arrays have no single bit pattern; their elements carry their own
    // constraints. Every other kind gets its exact singleton interval.
    if (value.kind() != Value::Kind::Array) {
        out.range =
            Interval::singleton(static_cast<std::int64_t>(value.bits()));
    }
    out.value = std::move(value);
    return out;
}

/// The payload of an abstract value that must be exact to proceed.
const Value& exact(const AbsValue& v) {
    if (!v.exact) throw Bail{"non-singleton constraint reached an exact position"};
    return v.value;
}

// ---------------------------------------------------------------------------
// The mirror interpreter
// ---------------------------------------------------------------------------

/// Per-run screening outcome.
struct RunScreen {
    enum class Outcome { Clean, Definite, Bail };
    Outcome outcome = Outcome::Bail;
    Finding finding;             // Outcome::Definite
    std::string reason;          // Outcome::Bail
    std::vector<std::string> output;  // Outcome::Clean: exact observable output
    std::uint64_t steps = 0;     // Outcome::Clean: exact MiriLite step count
    std::uint64_t ops = 0;       // abstract ops spent (all outcomes)
};

/// Mirrors miri::Interpreter statement for statement over the modelled
/// subset. Step accounting is charged at exactly the interpreter's sites
/// (every exec_statement entry, every eval_expr entry, one extra step per
/// while-loop iteration), so a clean run's step count — and therefore the
/// virtual time every consumer derives from it — is byte-identical.
class AbstractInterpreter {
  public:
    AbstractInterpreter(const lang::Program& program,
                        const miri::LoweredProgram& lowering,
                        const std::vector<std::int64_t>& inputs,
                        const miri::InterpLimits& limits,
                        const ScreenOptions& options, std::uint64_t ops_spent)
        : program_(program),
          lowering_(lowering),
          inputs_(inputs),
          limits_(limits),
          options_(options),
          ops_(ops_spent) {
        statics_.resize(program_.statics.size());
    }

    [[nodiscard]] RunScreen screen() {
        RunScreen run;
        try {
            setup_statics();
            const lang::FnItem* main_fn = program_.find_function("main");
            if (main_fn == nullptr) {
                throw Definite{Finding{UbCategory::CompileError,
                                       "program has no 'main' function",
                                       {}}};
            }
            const std::int32_t main_index = static_cast<std::int32_t>(
                main_fn - program_.functions.data());
            call_function(main_index, {}, main_fn->span);
            // Post-main teardown: leaked threads, held mutexes and heap
            // leaks are impossible here — every construct that could
            // create one (spawn, mutex_new, alloc) bails first.
            run.outcome = RunScreen::Outcome::Clean;
        } catch (const Definite& definite) {
            run.outcome = RunScreen::Outcome::Definite;
            run.finding = definite.finding;
        } catch (const Bail& bail) {
            run.outcome = RunScreen::Outcome::Bail;
            run.reason = bail.reason;
        } catch (const std::exception& error) {
            run.outcome = RunScreen::Outcome::Bail;
            run.reason = std::string("unexpected error: ") + error.what();
        } catch (...) {
            run.outcome = RunScreen::Outcome::Bail;
            run.reason = "unexpected error";
        }
        run.output = std::move(output_);
        run.steps = steps_;
        run.ops = ops_;
        return run;
    }

  private:
    struct Slot {
        AbsValue value;
        Type type;
    };
    struct Frame {
        std::vector<std::optional<Slot>> slots;
    };
    /// A place as a symbolic path (root slot/static + element indices), so
    /// no pointer into the environment is held across an evaluation.
    struct PlaceRef {
        bool is_static = false;
        std::int32_t index = -1;
        std::vector<std::uint64_t> path;
        Type type;
    };
    struct ExecResult {
        enum class Flow { Normal, Return };
        Flow flow = Flow::Normal;
        AbsValue value;
    };

    // -- cost accounting (mirrors Interpreter::step) ------------------------

    void step(const support::SourceSpan& span) {
        if (++steps_ > limits_.max_steps) {
            throw Definite{Finding{
                UbCategory::Panic,
                "step limit exceeded (possible infinite loop)", span}};
        }
        charge();
    }

    void charge() {
        if (++ops_ > options_.max_ops) {
            throw Bail{"screening op budget exhausted"};
        }
    }

    [[noreturn]] void panic(std::string message, support::SourceSpan span) {
        throw Definite{Finding{UbCategory::Panic, std::move(message), span}};
    }

    // -- statics ------------------------------------------------------------

    void setup_statics() {
        for (std::size_t i = 0; i < program_.statics.size(); ++i) {
            const lang::StaticItem& item = program_.statics[i];
            // The interpreter allocates before evaluating the initializer;
            // a self-reference would read uninitialized memory there. Here
            // the static stays unset during its own init, so a self-
            // reference falls through to the function-name path and bails —
            // Unknown, which is always sound.
            const AbsValue init = eval_expr(*item.init);
            statics_[i] = Slot{init, item.type};
        }
    }

    // -- calls --------------------------------------------------------------

    AbsValue call_function(std::int32_t fn_index, std::vector<AbsValue> args,
                           support::SourceSpan span) {
        if (fn_index < 0 ||
            static_cast<std::size_t>(fn_index) >= program_.functions.size()) {
            throw Definite{Finding{UbCategory::FuncCall,
                                   "calling a pointer that is not a function",
                                   span}};
        }
        if (++call_depth_ > limits_.max_call_depth) {
            --call_depth_;
            panic("stack overflow: call depth exceeded " +
                      std::to_string(limits_.max_call_depth),
                  span);
        }
        const lang::FnItem& fn =
            program_.functions[static_cast<std::size_t>(fn_index)];
        frames_.emplace_back();
        frames_.back().slots.resize(
            lowering_.fn_slot_counts[static_cast<std::size_t>(fn_index)]);
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            // Under lowering, parameters occupy slots 0..n-1 in order.
            frames_.back().slots[i] =
                Slot{i < args.size() ? args[i] : make_abs(Value::unit()),
                     fn.params[i].type};
        }
        const ExecResult exec = exec_block(fn.body);
        frames_.pop_back();
        --call_depth_;
        if (exec.flow == ExecResult::Flow::Return) return exec.value;
        return make_abs(Value::unit());
    }

    std::int32_t resolve_fn_target(const miri::FnPtrVal& fn,
                                   const Type& static_type,
                                   support::SourceSpan span) const {
        if (!fn.valid() ||
            static_cast<std::size_t>(fn.fn_index) >= program_.functions.size()) {
            throw Definite{Finding{UbCategory::FuncCall,
                                   "calling a pointer that is not a function",
                                   span}};
        }
        const lang::FnItem& target =
            program_.functions[static_cast<std::size_t>(fn.fn_index)];
        if (static_type.is_fn_ptr() && !(target.fn_type() == static_type)) {
            throw Definite{Finding{
                UbCategory::FuncPointer,
                "call through a function pointer with the wrong signature: "
                "pointer says " +
                    static_type.to_string() + " but '" + target.name + "' is " +
                    target.fn_type().to_string(),
                span}};
        }
        return fn.fn_index;
    }

    AbsValue call_fn_value(const AbsValue& callee, const Type& static_type,
                           std::vector<AbsValue> args,
                           support::SourceSpan span) {
        const Value& fn_value = exact(callee);
        if (fn_value.kind() != Value::Kind::Fn) {
            throw Bail{"indirect call through a non-function value"};
        }
        const std::int32_t target =
            resolve_fn_target(fn_value.as_fn(), static_type, span);
        return call_function(target, std::move(args), span);
    }

    // -- statements ---------------------------------------------------------

    ExecResult exec_block(const lang::Block& block) {
        ExecResult result;
        for (const auto& stmt : block.statements) {
            result = exec_statement(*stmt);
            if (result.flow != ExecResult::Flow::Normal) break;
        }
        return result;
    }

    ExecResult exec_statement(const lang::Stmt& stmt) {
        step(stmt.span);
        switch (stmt.kind) {
            case lang::StmtKind::Let: {
                const auto& node = static_cast<const lang::LetStmt&>(stmt);
                const AbsValue value = eval_expr(*node.init);
                const Type& type =
                    node.declared_type ? *node.declared_type : node.init->type;
                const std::int32_t slot = lowering_.let_slots[node.id];
                if (slot < 0) throw Bail{"let without a lowered slot"};
                frames_.back().slots[static_cast<std::size_t>(slot)] =
                    Slot{value, type};
                return {};
            }
            case lang::StmtKind::Assign: {
                const auto& node = static_cast<const lang::AssignStmt&>(stmt);
                const AbsValue value = eval_expr(*node.value);
                const PlaceRef place = eval_place(*node.place);
                store_place(place, value);
                return {};
            }
            case lang::StmtKind::Expr: {
                eval_expr(*static_cast<const lang::ExprStmt&>(stmt).expr);
                return {};
            }
            case lang::StmtKind::If: {
                const auto& node = static_cast<const lang::IfStmt&>(stmt);
                if (exact(eval_expr(*node.condition)).as_bool()) {
                    return exec_block(node.then_block);
                }
                if (node.else_block) {
                    return exec_block(*node.else_block);
                }
                return {};
            }
            case lang::StmtKind::While: {
                const auto& node = static_cast<const lang::WhileStmt&>(stmt);
                while (exact(eval_expr(*node.condition)).as_bool()) {
                    step(node.span);
                    ExecResult result = exec_block(node.body);
                    if (result.flow != ExecResult::Flow::Normal) return result;
                }
                return {};
            }
            case lang::StmtKind::Return: {
                const auto& node = static_cast<const lang::ReturnStmt&>(stmt);
                ExecResult result;
                result.flow = ExecResult::Flow::Return;
                result.value = node.value ? eval_expr(*node.value)
                                          : make_abs(Value::unit());
                return result;
            }
            case lang::StmtKind::Block:
                return exec_block(static_cast<const lang::BlockStmt&>(stmt).block);
            case lang::StmtKind::Unsafe:
                // The block itself is ordinary sequencing; each risky
                // operation inside (raw derefs, heap intrinsics) bails on
                // its own.
                return exec_block(static_cast<const lang::UnsafeStmt&>(stmt).block);
            case lang::StmtKind::Become:
                throw Bail{"tail calls (become) are not modelled"};
        }
        return {};
    }

    // -- places -------------------------------------------------------------

    PlaceRef eval_place(const lang::Expr& expr) {
        switch (expr.kind) {
            case lang::ExprKind::VarRef: {
                const auto& node = static_cast<const lang::VarRefExpr&>(expr);
                const miri::VarResolution& res = lowering_.var_refs[node.id];
                if (res.kind == miri::VarResolution::Kind::Local) {
                    const auto& slot = frames_.back().slots
                        [static_cast<std::size_t>(res.index)];
                    if (!slot.has_value()) throw Bail{"read of a dead slot"};
                    PlaceRef place;
                    place.is_static = false;
                    place.index = res.index;
                    place.type = slot->type;
                    return place;
                }
                if (res.kind == miri::VarResolution::Kind::Static) {
                    const auto& slot =
                        statics_[static_cast<std::size_t>(res.index)];
                    if (!slot.has_value()) {
                        throw Bail{"read of an uninitialized static"};
                    }
                    PlaceRef place;
                    place.is_static = true;
                    place.index = res.index;
                    place.type = slot->type;
                    return place;
                }
                throw Bail{"unresolved place name '" + node.name + "'"};
            }
            case lang::ExprKind::Index: {
                const auto& node = static_cast<const lang::IndexExpr&>(expr);
                const Type& base_type = node.base->type;
                if (base_type.is_ref()) {
                    throw Bail{"indexing through a reference is not modelled"};
                }
                PlaceRef place = eval_place(*node.base);
                if (!place.type.is_array()) {
                    throw Bail{"indexing a non-array place"};
                }
                const AbsValue index = eval_expr(*node.index);
                const std::uint64_t len = place.type.array_length();
                // Bounds constraint: the index interval must sit inside
                // [0, len). A singleton that escapes is the interpreter's
                // exact panic; len is checked against the *unsigned* index
                // exactly as the interpreter compares it.
                const std::uint64_t i = exact(index).bits();
                if (i >= len) {
                    panic("index out of bounds: the len is " +
                              std::to_string(len) + " but the index is " +
                              std::to_string(i),
                          node.span);
                }
                place.path.push_back(i);
                place.type = place.type.element();
                return place;
            }
            case lang::ExprKind::Unary:
                throw Bail{"deref places are not modelled"};
            default:
                throw Bail{"expression is not a modelled place"};
        }
    }

    AbsValue load_path(const Value& root, const std::vector<std::uint64_t>& path,
                       std::size_t depth) const {
        if (depth == path.size()) return make_abs(root);
        if (root.kind() != Value::Kind::Array) {
            throw Bail{"path load through a non-array value"};
        }
        const std::vector<Value>& elements = root.as_array();
        if (path[depth] >= elements.size()) {
            throw Bail{"path load out of range"};
        }
        return load_path(elements[path[depth]], path, depth + 1);
    }

    Value store_path(const Value& root, const std::vector<std::uint64_t>& path,
                     std::size_t depth, const Value& value) const {
        if (depth == path.size()) return value;
        if (root.kind() != Value::Kind::Array) {
            throw Bail{"path store through a non-array value"};
        }
        std::vector<Value> elements = root.as_array();
        if (path[depth] >= elements.size()) {
            throw Bail{"path store out of range"};
        }
        elements[path[depth]] =
            store_path(elements[path[depth]], path, depth + 1, value);
        return Value::array(std::move(elements));
    }

    Slot& place_root(const PlaceRef& place) {
        if (place.is_static) {
            auto& slot = statics_[static_cast<std::size_t>(place.index)];
            if (!slot.has_value()) throw Bail{"access to an unset static"};
            return *slot;
        }
        auto& slot = frames_.back().slots[static_cast<std::size_t>(place.index)];
        if (!slot.has_value()) throw Bail{"access to a dead slot"};
        return *slot;
    }

    AbsValue load_place(const PlaceRef& place) {
        charge();
        return load_path(exact(place_root(place).value), place.path, 0);
    }

    void store_place(const PlaceRef& place, const AbsValue& value) {
        charge();
        Slot& root = place_root(place);
        if (place.path.empty()) {
            root.value = value;
            return;
        }
        root.value = make_abs(
            store_path(exact(root.value), place.path, 0, exact(value)));
    }

    // -- expressions --------------------------------------------------------

    std::int64_t signed_value(const Value& v, const Type& t) const {
        return v.as_signed(t.size_bytes());
    }

    AbsValue arith_result(std::uint64_t bits, const Type& type) const {
        return make_abs(Value::scalar(miri::truncate_to_type(bits, type)));
    }

    AbsValue eval_expr(const lang::Expr& expr) {
        step(expr.span);
        switch (expr.kind) {
            case lang::ExprKind::IntLit: {
                const auto& node = static_cast<const lang::IntLitExpr&>(expr);
                return arith_result(node.value, expr.type);
            }
            case lang::ExprKind::BoolLit:
                return make_abs(Value::boolean(
                    static_cast<const lang::BoolLitExpr&>(expr).value));
            case lang::ExprKind::VarRef: {
                const auto& node = static_cast<const lang::VarRefExpr&>(expr);
                const miri::VarResolution& res = lowering_.var_refs[node.id];
                switch (res.kind) {
                    case miri::VarResolution::Kind::Local:
                        return load_place(eval_place(expr));
                    case miri::VarResolution::Kind::Static:
                        if (statics_[static_cast<std::size_t>(res.index)]
                                .has_value()) {
                            return load_place(eval_place(expr));
                        }
                        // Forward reference during static setup falls
                        // through to a function item of the same name,
                        // like the interpreter.
                        break;
                    case miri::VarResolution::Kind::Function:
                        return make_abs(
                            Value::function(miri::FnPtrVal{res.index}));
                    case miri::VarResolution::Kind::Unresolved:
                        break;
                }
                const lang::FnItem* fn = program_.find_function(node.name);
                if (fn == nullptr) {
                    throw Bail{"unresolved name '" + node.name + "'"};
                }
                return make_abs(Value::function(miri::FnPtrVal{
                    static_cast<std::int32_t>(fn - program_.functions.data())}));
            }
            case lang::ExprKind::Unary:
                return eval_unary(static_cast<const lang::UnaryExpr&>(expr));
            case lang::ExprKind::Binary:
                return eval_binary(static_cast<const lang::BinaryExpr&>(expr));
            case lang::ExprKind::Cast:
                return eval_cast(static_cast<const lang::CastExpr&>(expr));
            case lang::ExprKind::Index:
                return load_place(eval_place(expr));
            case lang::ExprKind::Call:
                return eval_call(static_cast<const lang::CallExpr&>(expr));
            case lang::ExprKind::CallPtr: {
                const auto& node = static_cast<const lang::CallPtrExpr&>(expr);
                const AbsValue callee = eval_expr(*node.callee);
                std::vector<AbsValue> args;
                args.reserve(node.args.size());
                for (const auto& arg : node.args) {
                    args.push_back(eval_expr(*arg));
                }
                return call_fn_value(callee, node.callee->type, std::move(args),
                                     node.span);
            }
            case lang::ExprKind::ArrayLit: {
                const auto& node = static_cast<const lang::ArrayLitExpr&>(expr);
                std::vector<Value> elements;
                elements.reserve(node.elements.size());
                for (const auto& element : node.elements) {
                    elements.push_back(exact(eval_expr(*element)));
                }
                return make_abs(Value::array(std::move(elements)));
            }
            case lang::ExprKind::ArrayRepeat: {
                const auto& node =
                    static_cast<const lang::ArrayRepeatExpr&>(expr);
                const AbsValue element = eval_expr(*node.element);
                return make_abs(Value::array(
                    std::vector<Value>(node.count, exact(element))));
            }
        }
        return make_abs(Value::unit());
    }

    AbsValue eval_unary(const lang::UnaryExpr& expr) {
        switch (expr.op) {
            case lang::UnaryOp::Neg: {
                const AbsValue operand = eval_expr(*expr.operand);
                const std::int64_t value =
                    signed_value(exact(operand), expr.operand->type);
                const std::uint64_t size = expr.type.size_bytes();
                const std::int64_t min_value =
                    size >= 8 ? std::numeric_limits<std::int64_t>::min()
                              : -(1LL << (size * 8 - 1));
                if (value == min_value) {
                    panic("attempt to negate with overflow", expr.span);
                }
                return arith_result(static_cast<std::uint64_t>(-value),
                                    expr.type);
            }
            case lang::UnaryOp::Not: {
                const AbsValue operand = eval_expr(*expr.operand);
                if (expr.type.is_bool()) {
                    return make_abs(Value::boolean(!exact(operand).as_bool()));
                }
                return arith_result(~exact(operand).bits(), expr.type);
            }
            case lang::UnaryOp::Deref:
                throw Bail{"dereferences are not modelled"};
            case lang::UnaryOp::AddrOf:
            case lang::UnaryOp::AddrOfMut:
                throw Bail{"borrows are not modelled"};
        }
        return make_abs(Value::unit());
    }

    AbsValue eval_binary(const lang::BinaryExpr& expr) {
        using lang::BinaryOp;
        // Short-circuit operators first (the skipped operand must not be
        // evaluated — its steps never happen).
        if (expr.op == BinaryOp::And) {
            if (!exact(eval_expr(*expr.lhs)).as_bool()) {
                return make_abs(Value::boolean(false));
            }
            return make_abs(
                Value::boolean(exact(eval_expr(*expr.rhs)).as_bool()));
        }
        if (expr.op == BinaryOp::Or) {
            if (exact(eval_expr(*expr.lhs)).as_bool()) {
                return make_abs(Value::boolean(true));
            }
            return make_abs(
                Value::boolean(exact(eval_expr(*expr.rhs)).as_bool()));
        }

        const Value lhs = exact(eval_expr(*expr.lhs));
        const Value rhs = exact(eval_expr(*expr.rhs));
        const Type& operand_type = expr.lhs->type;
        const std::uint64_t size = operand_type.size_bytes();
        const bool is_signed = operand_type.is_signed_integer();

        switch (expr.op) {
            case BinaryOp::Add:
            case BinaryOp::Sub:
            case BinaryOp::Mul: {
                const char* name = expr.op == BinaryOp::Add   ? "add"
                                   : expr.op == BinaryOp::Sub ? "subtract"
                                                              : "multiply";
                if (size >= 8) {
                    if (is_signed) {
                        const std::int64_t a = signed_value(lhs, operand_type);
                        const std::int64_t b = signed_value(rhs, operand_type);
                        std::int64_t out = 0;
                        bool overflow = false;
                        if (expr.op == BinaryOp::Add) {
                            overflow = __builtin_add_overflow(a, b, &out);
                        } else if (expr.op == BinaryOp::Sub) {
                            overflow = __builtin_sub_overflow(a, b, &out);
                        } else {
                            overflow = __builtin_mul_overflow(a, b, &out);
                        }
                        if (overflow) {
                            panic(std::string("attempt to ") + name +
                                      " with overflow",
                                  expr.span);
                        }
                        return arith_result(static_cast<std::uint64_t>(out),
                                            expr.type);
                    }
                    const std::uint64_t a = lhs.bits();
                    const std::uint64_t b = rhs.bits();
                    std::uint64_t out = 0;
                    bool overflow = false;
                    if (expr.op == BinaryOp::Add) {
                        overflow = __builtin_add_overflow(a, b, &out);
                    } else if (expr.op == BinaryOp::Sub) {
                        overflow = __builtin_sub_overflow(a, b, &out);
                    } else {
                        overflow = __builtin_mul_overflow(a, b, &out);
                    }
                    if (overflow) {
                        panic(std::string("attempt to ") + name +
                                  " with overflow",
                              expr.span);
                    }
                    return arith_result(out, expr.type);
                }
                // Narrow widths: the mathematically-correct result fits in
                // i64; the overflow check is interval containment against
                // the operand width's representable range.
                const std::int64_t a =
                    is_signed ? signed_value(lhs, operand_type)
                              : static_cast<std::int64_t>(lhs.bits());
                const std::int64_t b =
                    is_signed ? signed_value(rhs, operand_type)
                              : static_cast<std::int64_t>(rhs.bits());
                std::int64_t wide = 0;
                if (expr.op == BinaryOp::Add) wide = a + b;
                if (expr.op == BinaryOp::Sub) wide = a - b;
                if (expr.op == BinaryOp::Mul) wide = a * b;
                const Interval representable =
                    Interval::type_range(size, is_signed);
                if (!Interval::singleton(wide).within(representable)) {
                    panic(std::string("attempt to ") + name + " with overflow",
                          expr.span);
                }
                return arith_result(static_cast<std::uint64_t>(wide),
                                    expr.type);
            }
            case BinaryOp::Div:
            case BinaryOp::Rem: {
                const bool is_div = expr.op == BinaryOp::Div;
                if (rhs.bits() == 0) {
                    panic(is_div ? "attempt to divide by zero"
                                 : "attempt to calculate the remainder with a "
                                   "divisor of zero",
                          expr.span);
                }
                if (is_signed) {
                    const std::int64_t a = signed_value(lhs, operand_type);
                    const std::int64_t b = signed_value(rhs, operand_type);
                    const std::int64_t min_value =
                        size >= 8 ? std::numeric_limits<std::int64_t>::min()
                                  : -(1LL << (size * 8 - 1));
                    if (a == min_value && b == -1) {
                        panic(is_div
                                  ? "attempt to divide with overflow"
                                  : "attempt to calculate the remainder with "
                                    "overflow",
                              expr.span);
                    }
                    const std::int64_t out = is_div ? a / b : a % b;
                    return arith_result(static_cast<std::uint64_t>(out),
                                        expr.type);
                }
                const std::uint64_t out = is_div ? lhs.bits() / rhs.bits()
                                                 : lhs.bits() % rhs.bits();
                return arith_result(out, expr.type);
            }
            case BinaryOp::Shl:
            case BinaryOp::Shr: {
                const std::uint64_t shift = rhs.bits();
                if (shift >= size * 8) {
                    panic(expr.op == BinaryOp::Shl
                              ? "attempt to shift left with overflow"
                              : "attempt to shift right with overflow",
                          expr.span);
                }
                if (expr.op == BinaryOp::Shl) {
                    return arith_result(lhs.bits() << shift, expr.type);
                }
                if (is_signed) {
                    return arith_result(
                        static_cast<std::uint64_t>(
                            signed_value(lhs, operand_type) >>
                            static_cast<std::int64_t>(shift)),
                        expr.type);
                }
                return arith_result(lhs.bits() >> shift, expr.type);
            }
            case BinaryOp::BitAnd:
                return arith_result(lhs.bits() & rhs.bits(), expr.type);
            case BinaryOp::BitOr:
                return arith_result(lhs.bits() | rhs.bits(), expr.type);
            case BinaryOp::BitXor:
                return arith_result(lhs.bits() ^ rhs.bits(), expr.type);
            case BinaryOp::Eq:
                return make_abs(Value::boolean(lhs.bits() == rhs.bits()));
            case BinaryOp::Ne:
                return make_abs(Value::boolean(lhs.bits() != rhs.bits()));
            case BinaryOp::Lt:
            case BinaryOp::Le:
            case BinaryOp::Gt:
            case BinaryOp::Ge: {
                bool result = false;
                if (is_signed) {
                    const std::int64_t a = signed_value(lhs, operand_type);
                    const std::int64_t b = signed_value(rhs, operand_type);
                    result = expr.op == BinaryOp::Lt   ? a < b
                             : expr.op == BinaryOp::Le ? a <= b
                             : expr.op == BinaryOp::Gt ? a > b
                                                       : a >= b;
                } else {
                    const std::uint64_t a = lhs.bits();
                    const std::uint64_t b = rhs.bits();
                    result = expr.op == BinaryOp::Lt   ? a < b
                             : expr.op == BinaryOp::Le ? a <= b
                             : expr.op == BinaryOp::Gt ? a > b
                                                       : a >= b;
                }
                return make_abs(Value::boolean(result));
            }
            case BinaryOp::And:
            case BinaryOp::Or:
                break;  // handled above
        }
        return make_abs(Value::unit());
    }

    AbsValue eval_cast(const lang::CastExpr& expr) {
        const AbsValue operand_abs = eval_expr(*expr.operand);
        const Value& operand = exact(operand_abs);
        const Type& source = expr.operand->type;
        const Type& target = expr.target;

        if ((source.is_integer() || source.is_bool()) && target.is_integer()) {
            const std::uint64_t wide =
                source.is_signed_integer()
                    ? static_cast<std::uint64_t>(signed_value(operand, source))
                    : operand.bits();
            return arith_result(wide, target);
        }
        if (source.is_fn_ptr() && target.is_integer()) {
            return arith_result(operand.bits(), target);
        }
        if (source.is_integer() && target.is_fn_ptr()) {
            return make_abs(Value::function(miri::FnPtrVal{
                miri::fn_addr_to_index(operand.bits(),
                                       program_.functions.size())}));
        }
        if (source.is_fn_ptr() && target.is_fn_ptr()) {
            return operand_abs;
        }
        // Everything producing or consuming data pointers (int -> raw ptr,
        // ref -> raw ptr, raw -> raw, ptr -> int) leaves the modelled
        // domain: pointer values never exist here.
        throw Bail{"pointer casts are not modelled"};
    }

    AbsValue eval_call(const lang::CallExpr& expr) {
        const miri::CallResolution& res = lowering_.calls[expr.id];
        if (res.kind == miri::CallResolution::Kind::Intrinsic) {
            return eval_intrinsic(expr);
        }
        std::vector<AbsValue> args;
        args.reserve(expr.args.size());
        for (const auto& arg : expr.args) {
            args.push_back(eval_expr(*arg));
        }
        switch (res.kind) {
            case miri::CallResolution::Kind::LocalFnPtr: {
                const auto& slot =
                    frames_.back().slots[static_cast<std::size_t>(res.index)];
                if (!slot.has_value()) {
                    throw Bail{"call through a dead fn-pointer slot"};
                }
                return call_fn_value(slot->value, slot->type, std::move(args),
                                     expr.span);
            }
            case miri::CallResolution::Kind::Direct:
                return call_function(res.index, std::move(args), expr.span);
            default:
                throw Bail{"call to unknown function '" + expr.callee + "'"};
        }
    }

    AbsValue eval_intrinsic(const lang::CallExpr& expr) {
        const std::string& name = expr.callee;
        std::vector<AbsValue> args;
        args.reserve(expr.args.size());
        for (const auto& arg : expr.args) {
            args.push_back(eval_expr(*arg));
        }

        const bool needs_arg = name == "print_int" || name == "print_bool" ||
                               name == "assert";
        if (needs_arg && (args.empty() || expr.args.empty())) {
            throw Bail{"intrinsic '" + name + "' with no argument"};
        }
        if (name == "print_int") {
            const Type& arg_type = expr.args[0]->type;
            if (arg_type.is_signed_integer()) {
                output_.push_back(std::to_string(
                    exact(args[0]).as_signed(arg_type.size_bytes())));
            } else {
                output_.push_back(std::to_string(exact(args[0]).bits()));
            }
            return make_abs(Value::unit());
        }
        if (name == "print_bool") {
            output_.push_back(exact(args[0]).as_bool() ? "true" : "false");
            return make_abs(Value::unit());
        }
        if (name == "input") {
            const std::uint64_t index =
                args.empty() ? 0 : exact(args[0]).bits();
            const std::int64_t value =
                index < inputs_.size() ? inputs_[index] : 0;
            return make_abs(
                Value::scalar(static_cast<std::uint64_t>(value)));
        }
        if (name == "assert") {
            if (!exact(args[0]).as_bool()) {
                panic("assertion failed", expr.span);
            }
            return make_abs(Value::unit());
        }
        if (name == "panic") {
            panic("explicit panic", expr.span);
        }
        // alloc / dealloc / offset (heap + provenance), spawn / join /
        // mutex_* / atomic_* (concurrency): outside the modelled domain.
        throw Bail{"intrinsic '" + name + "' is not modelled"};
    }

    const lang::Program& program_;
    const miri::LoweredProgram& lowering_;
    const std::vector<std::int64_t>& inputs_;
    const miri::InterpLimits& limits_;
    const ScreenOptions& options_;

    std::vector<Frame> frames_;
    std::vector<std::optional<Slot>> statics_;
    std::vector<std::string> output_;
    std::uint64_t steps_ = 0;
    std::uint64_t ops_ = 0;
    std::uint32_t call_depth_ = 0;
};

}  // namespace

Interval Interval::full() {
    return {std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max()};
}

Interval Interval::type_range(std::uint64_t size_bytes, bool is_signed) {
    if (size_bytes >= 8) return full();
    if (is_signed) {
        return {-(1LL << (size_bytes * 8 - 1)),
                (1LL << (size_bytes * 8 - 1)) - 1};
    }
    return {0, static_cast<std::int64_t>((1ULL << (size_bytes * 8)) - 1)};
}

const char* verdict_kind_name(VerdictKind kind) {
    switch (kind) {
        case VerdictKind::ProvenSafe: return "proven-safe";
        case VerdictKind::LikelyUB: return "likely-ub";
        case VerdictKind::Unknown: return "unknown";
    }
    return "?";
}

ScreenResult screen_program(
    const lang::Program& program, const miri::LoweredProgram& lowering,
    const std::vector<std::vector<std::int64_t>>& input_sets,
    const miri::InterpLimits& limits, const ScreenOptions& options) {
    ScreenResult out;
    try {
        const std::vector<std::vector<std::int64_t>> runs =
            input_sets.empty() ? std::vector<std::vector<std::int64_t>>{{}}
                               : input_sets;
        std::uint64_t ops = 0;
        miri::MiriReport synthesized;
        for (const auto& inputs : runs) {
            // The op budget spans all runs, so screening cost is bounded
            // per candidate, not per input vector.
            AbstractInterpreter interp(program, lowering, inputs, limits,
                                       options, ops);
            const RunScreen run = interp.screen();
            ops = run.ops;
            if (run.outcome == RunScreen::Outcome::Bail) {
                out.verdict.kind = VerdictKind::Unknown;
                out.verdict.confidence = 0.0;
                out.verdict.detail = run.reason;
                out.verdict.ops = ops;
                return out;
            }
            if (run.outcome == RunScreen::Outcome::Definite) {
                out.verdict.kind = VerdictKind::LikelyUB;
                out.verdict.confidence = 0.95;
                out.verdict.category = run.finding.category;
                out.verdict.span = run.finding.span;
                out.verdict.detail = run.finding.message;
                out.verdict.ops = ops;
                return out;
            }
            synthesized.total_steps += run.steps;
            synthesized.outputs.push_back(run.output);
        }
        out.verdict.kind = VerdictKind::ProvenSafe;
        out.verdict.confidence = 1.0;
        out.verdict.ops = ops;
        out.report = std::move(synthesized);
    } catch (...) {
        // The never-throw contract: any escape degrades to Unknown.
        out = ScreenResult{};
        out.verdict.kind = VerdictKind::Unknown;
        out.verdict.detail = "screening failed unexpectedly";
    }
    return out;
}

}  // namespace rustbrain::screen
