#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/wire.hpp"

namespace rustbrain::serve {

namespace {

[[noreturn]] void fail_errno(const char* what) {
    throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

RepairServer::RepairServer(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        fail_errno("bind 127.0.0.1");
    }
    socklen_t addr_len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        fail_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
    if (::listen(listen_fd_, 16) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        fail_errno("listen");
    }
    acceptor_ = std::thread([this] { accept_loop(); });
}

RepairServer::~RepairServer() { stop(); }

void RepairServer::accept_loop() {
    while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            // stop() shut the listener down — or it genuinely failed;
            // either way the accept loop is over.
            break;
        }
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) {
                ::close(fd);
                continue;
            }
            open_connections_.push_back(fd);
            ++active_handlers_;
        }
        try {
            std::thread([this, fd] { handle_connection(fd); }).detach();
        } catch (...) {
            // Could not spawn a handler: undo the registration and drop
            // the connection instead of leaking the liveness count.
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                open_connections_.erase(
                    std::remove(open_connections_.begin(),
                                open_connections_.end(), fd),
                    open_connections_.end());
                --active_handlers_;
            }
            stopped_cv_.notify_all();
            ::close(fd);
        }
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        accept_done_ = true;
    }
    stopped_cv_.notify_all();
}

void RepairServer::handle_connection(int fd) {
    std::string payload;
    while (true) {
        try {
            if (!read_frame(fd, payload)) break;  // client closed cleanly
        } catch (const std::exception&) {
            break;  // unframeable stream: nothing sane left to answer on
        }
        RepairResponse response;
        try {
            response = service_.repair(parse_request(payload));
        } catch (const std::exception& error) {
            // A frame that does not parse as a request still gets a framed
            // answer — the bad-request error path CI exercises.
            response.ok = false;
            response.error = error.what();
        }
        try {
            write_frame(fd, render_response(response));
        } catch (const std::exception&) {
            break;  // client went away mid-response
        }
        const std::uint64_t served = requests_served_.fetch_add(1) + 1;
        if (options_.max_requests != 0 && served >= options_.max_requests) {
            // Budget reached: close the front door. The joins happen in
            // stop()/wait() on an external thread — never here, a handler
            // cannot join itself.
            bool already_stopping = false;
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                already_stopping = stopping_;
                stopping_ = true;
            }
            if (!already_stopping && listen_fd_ >= 0) {
                ::shutdown(listen_fd_, SHUT_RDWR);
            }
            stopped_cv_.notify_all();
            break;
        }
    }
    ::shutdown(fd, SHUT_RDWR);
    {
        // Self-reap: this detached thread's decrement (and the notify,
        // made under the lock so stop() cannot miss it) is its last touch
        // of `this` — after the unlock, stop() may return and the server
        // may be destroyed. Only the local fd is used past this point.
        const std::lock_guard<std::mutex> lock(mutex_);
        open_connections_.erase(std::remove(open_connections_.begin(),
                                            open_connections_.end(), fd),
                                open_connections_.end());
        --active_handlers_;
        stopped_cv_.notify_all();
    }
    ::close(fd);
}

void RepairServer::stop() {
    // One stop at a time: wait() and the destructor may call this
    // concurrently, and only one caller may join the acceptor.
    const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Wake handlers parked in read_frame on idle connections: their
        // next read returns 0 and they exit, so the drain below finishes
        // even against a client that never closes.
        for (int fd : open_connections_) ::shutdown(fd, SHUT_RDWR);
    }
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
    }
    stopped_cv_.notify_all();
    if (acceptor_.joinable()) acceptor_.join();
    {
        // Handlers are detached; wait for every one to self-reap before
        // the server (and the RepairService they call into) goes away.
        std::unique_lock<std::mutex> lock(mutex_);
        stopped_cv_.wait(lock, [this] { return active_handlers_ == 0; });
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void RepairServer::wait() {
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopped_cv_.wait(lock, [this] { return stopping_ || accept_done_; });
    }
    stop();
}

}  // namespace rustbrain::serve
