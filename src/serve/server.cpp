#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/wire.hpp"

namespace rustbrain::serve {

namespace {

[[noreturn]] void fail_errno(const char* what) {
    throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

RepairServer::RepairServer(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        fail_errno("bind 127.0.0.1");
    }
    socklen_t addr_len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        fail_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
    if (::listen(listen_fd_, 16) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        fail_errno("listen");
    }
    if (options_.frontend == Frontend::Reactor) {
        Reactor::Options reactor_options;
        reactor_options.max_requests = options_.max_requests;
        reactor_options.max_connections = options_.max_connections;
        reactor_options.send_buffer_bytes = options_.send_buffer_bytes;
        // The reactor takes ownership of the listening fd.
        const int fd = listen_fd_;
        listen_fd_ = -1;
        reactor_ =
            std::make_unique<Reactor>(fd, service_, reactor_options);
    } else {
        acceptor_ = std::thread([this] { accept_loop(); });
    }
}

RepairServer::~RepairServer() { stop(); }

std::uint64_t RepairServer::requests_served() const {
    if (reactor_ != nullptr) return reactor_->requests_served();
    return requests_served_.load();
}

ServerStats RepairServer::stats() const {
    if (reactor_ != nullptr) return reactor_->stats();
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return thread_stats_;
}

void RepairServer::reject_connection(int fd, std::size_t open) {
    RepairResponse refusal;
    refusal.ok = false;
    refusal.shed = true;
    refusal.retry_after_ms = 100.0;
    refusal.error = "server connection cap reached (" + std::to_string(open) +
                    " open); retry in ~100 ms";
    try {
        write_frame(fd, render_response(refusal));
    } catch (const std::exception&) {
        // Best effort only — the peer may already be gone.
    }
    ::close(fd);
}

void RepairServer::accept_loop() {
    int backoff_ms = 0;
    while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            if (is_transient_accept_error(errno)) {
                // EMFILE-class fd/buffer exhaustion is transient: back off
                // and retry (capped exponential) instead of ending the
                // accept loop while handlers are still draining fds.
                {
                    const std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++thread_stats_.accept_retries;
                }
                bool should_stop = false;
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    should_stop = stopping_;
                }
                if (should_stop) break;
                backoff_ms = backoff_ms == 0 ? 10
                                             : std::min(backoff_ms * 2, 200);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff_ms));
                continue;
            }
            // stop() shut the listener down — or it genuinely failed;
            // either way the accept loop is over.
            break;
        }
        backoff_ms = 0;
        bool rejected = false;
        std::size_t open = 0;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) {
                ::close(fd);
                continue;
            }
            open = open_connections_.size();
            if (options_.max_connections > 0 &&
                open >= options_.max_connections) {
                rejected = true;
            } else {
                open_connections_.push_back(fd);
                ++active_handlers_;
            }
        }
        if (rejected) {
            {
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++thread_stats_.connections_rejected;
            }
            reject_connection(fd, open);
            continue;
        }
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++thread_stats_.connections_accepted;
        }
        try {
            std::thread([this, fd] { handle_connection(fd); }).detach();
        } catch (...) {
            // Could not spawn a handler: undo the registration and drop
            // the connection instead of leaking the liveness count.
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                open_connections_.erase(
                    std::remove(open_connections_.begin(),
                                open_connections_.end(), fd),
                    open_connections_.end());
                --active_handlers_;
            }
            stopped_cv_.notify_all();
            ::close(fd);
        }
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        accept_done_ = true;
    }
    stopped_cv_.notify_all();
}

void RepairServer::handle_connection(int fd) {
    std::string payload;
    while (true) {
        try {
            if (!read_frame(fd, payload)) break;  // client closed cleanly
        } catch (const std::exception&) {
            break;  // unframeable stream: nothing sane left to answer on
        }
        RepairResponse response;
        try {
            response = service_.repair(parse_request(payload));
        } catch (const std::exception& error) {
            // A frame that does not parse as a request still gets a framed
            // answer — the bad-request error path CI exercises.
            response.ok = false;
            response.error = error.what();
        }
        try {
            write_frame(fd, render_response(response));
        } catch (const std::exception&) {
            break;  // client went away mid-response
        }
        const std::uint64_t served = requests_served_.fetch_add(1) + 1;
        if (options_.max_requests != 0 && served >= options_.max_requests) {
            // Budget reached: close the front door. The joins happen in
            // stop()/wait() on an external thread — never here, a handler
            // cannot join itself.
            bool already_stopping = false;
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                already_stopping = stopping_;
                stopping_ = true;
            }
            if (!already_stopping && listen_fd_ >= 0) {
                ::shutdown(listen_fd_, SHUT_RDWR);
            }
            stopped_cv_.notify_all();
            break;
        }
    }
    ::shutdown(fd, SHUT_RDWR);
    {
        // Self-reap: this detached thread's decrement (and the notify,
        // made under the lock so stop() cannot miss it) is its last touch
        // of `this` — after the unlock, stop() may return and the server
        // may be destroyed. Only the local fd is used past this point.
        const std::lock_guard<std::mutex> lock(mutex_);
        open_connections_.erase(std::remove(open_connections_.begin(),
                                            open_connections_.end(), fd),
                                open_connections_.end());
        --active_handlers_;
        stopped_cv_.notify_all();
    }
    ::close(fd);
}

void RepairServer::stop() {
    // One stop at a time: wait() and the destructor may call this
    // concurrently, and only one caller may join the acceptor.
    const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    if (reactor_ != nullptr) {
        reactor_->stop();
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Wake handlers parked in read_frame on idle connections: their
        // next read returns 0 and they exit, so the drain below finishes
        // even against a client that never closes.
        for (int fd : open_connections_) ::shutdown(fd, SHUT_RDWR);
    }
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
    }
    stopped_cv_.notify_all();
    if (acceptor_.joinable()) acceptor_.join();
    {
        // Handlers are detached; wait for every one to self-reap before
        // the server (and the RepairService they call into) goes away.
        std::unique_lock<std::mutex> lock(mutex_);
        stopped_cv_.wait(lock, [this] { return active_handlers_ == 0; });
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void RepairServer::wait() {
    if (reactor_ != nullptr) {
        reactor_->wait();
        stop();
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopped_cv_.wait(lock, [this] { return stopping_ || accept_done_; });
    }
    stop();
}

}  // namespace rustbrain::serve
