// RepairClient — blocking loopback connection to a RepairServer.
//
// One connection, synchronous request/response: repair() frames a
// RepairRequest, writes it, and blocks for the framed RepairResponse.
// roundtrip_raw() ships an arbitrary payload instead, which is how the
// bad-request error path is exercised end to end (a garbage frame must
// come back as an ok=0 response, not a dropped connection).
//
// Pipelining: send_async() writes a framed request without waiting for
// its response; recv_one() blocks for the next framed response. The
// server answers in request order per connection, so after N send_async
// calls, N recv_one calls return response i for request i. repair() is
// exactly send_async + recv_one.
#pragma once

#include <cstdint>
#include <string>

#include "serve/service.hpp"

namespace rustbrain::serve {

class RepairClient {
  public:
    /// Connects to 127.0.0.1:<port>. Throws std::runtime_error when the
    /// connection cannot be established.
    explicit RepairClient(std::uint16_t port);
    ~RepairClient();
    RepairClient(const RepairClient&) = delete;
    RepairClient& operator=(const RepairClient&) = delete;

    /// Framed round trip. Throws std::runtime_error on I/O failure or an
    /// unparseable response. Equivalent to send_async + recv_one.
    RepairResponse repair(const RepairRequest& request);

    /// Write one framed request and return immediately — the response is
    /// owed and must be collected with recv_one(). Up to N requests may
    /// be outstanding; responses come back in send order.
    void send_async(const RepairRequest& request);

    /// Block for the next framed response. Throws std::runtime_error on
    /// I/O failure, an unparseable response, or a server-side close while
    /// responses are still owed.
    RepairResponse recv_one();

    /// Ship a raw payload (not necessarily a valid request) and return the
    /// server's raw response payload.
    std::string roundtrip_raw(const std::string& payload);

  private:
    int fd_ = -1;
};

}  // namespace rustbrain::serve
