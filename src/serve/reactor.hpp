// Reactor — the single-threaded epoll front end for RepairServer.
//
// One thread multiplexes the listener, every connection, and an eventfd.
// Accepts are nonblocking; each connection feeds a wire::FrameReader that
// accumulates partial reads, so a request split across any number of TCP
// segments decodes incrementally without ever parking a thread. Complete
// frames are handed to RepairService::submit_async; workers finish the
// repair, render the response off the reactor thread, and hand the bytes
// back through a completion queue + eventfd wake. Responses are written
// back strictly in per-connection request order — a pipelined client that
// sent frames 0..N reads responses 0..N even when the scheduler finished
// them out of order — which is what keeps the deterministic-mode byte
// contract intact over pipelining (DESIGN.md §10). Writes go through a
// vectored buffered writer: queued response frames are flushed in batches
// of up to kMaxWriteIovecs with a single sendmsg (writev with
// MSG_NOSIGNAL), and when the kernel send buffer fills mid-batch the
// remainder — including a partially accepted frame mid-iovec — is kept
// and EPOLLOUT is armed, so a slow reader never blocks the loop or any
// other connection.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace rustbrain::serve {

/// Transient accept() failures (fd/buffer exhaustion) that deserve a
/// backoff-and-retry instead of ending the accept loop: EMFILE, ENFILE,
/// ENOBUFS, ENOMEM. ECONNABORTED and EINTR are retried immediately by the
/// callers and are not classified here.
bool is_transient_accept_error(int error);

/// Front-end counters. Filled by whichever frontend served: the reactor
/// fills everything; the thread-per-connection frontend reports only the
/// accept-side fields (loop/frame counters stay 0).
struct ServerStats {
    std::uint64_t loop_wakeups = 0;      // epoll_wait returns
    std::uint64_t frames_read = 0;       // complete request frames decoded
    std::uint64_t frames_written = 0;    // response frames queued for write
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  // over the connection cap
    std::uint64_t accept_retries = 0;    // EMFILE-class backoff rounds
    std::uint64_t epollout_arms = 0;     // kernel buffer filled mid-response
    std::uint64_t max_pipeline_depth = 0;  // most in-flight on one connection
    std::uint64_t writev_batches = 0;    // vectored flush syscalls issued
    std::uint64_t frames_per_writev_max = 0;  // largest iovec batch flushed
};

class Reactor {
  public:
    struct Options {
        /// Stop once this many responses have been written (0 = serve
        /// until stop()); in-flight pipelined requests are drained first.
        std::uint64_t max_requests = 0;
        /// Accepted-connection cap (0 = uncapped). Over-cap connections
        /// are accepted, sent one framed shed response, and closed —
        /// never silently dropped.
        std::size_t max_connections = 0;
        /// SO_SNDBUF requested for accepted connections (0 = kernel
        /// default). Tests shrink it so a multi-frame vectored flush
        /// reliably stops partway through an iovec batch.
        int send_buffer_bytes = 0;
    };

    /// Takes ownership of `listen_fd` (already bound and listening) and
    /// starts the loop thread. Throws std::runtime_error when the epoll
    /// or eventfd plumbing cannot be created (listen_fd is closed).
    Reactor(int listen_fd, RepairService& service, Options options);
    ~Reactor();
    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    /// Stop serving: close the listener and every connection, drain
    /// outstanding service completions, join the loop. Idempotent,
    /// including against concurrent callers.
    void stop();
    /// Block until the loop exited on its own (request budget drained) or
    /// stop() was called.
    void wait();

    [[nodiscard]] std::uint64_t requests_served() const {
        return requests_served_.load();
    }
    [[nodiscard]] ServerStats stats() const;

  private:
    struct Connection {
        int fd = -1;
        std::uint64_t id = 0;
        FrameReader reader;
        /// Framed responses not yet accepted by the kernel, one frame per
        /// entry so a flush can gather many with a single vectored write.
        std::deque<std::string> out;
        /// Bytes of out.front() the kernel already took (a partial write
        /// can stop mid-frame, including mid-iovec within a batch).
        std::size_t out_pos = 0;
        /// Sequence number handed to the next decoded frame.
        std::uint64_t next_request = 0;
        /// Sequence number the ordered writer owes next.
        std::uint64_t next_response = 0;
        /// Completed out-of-turn responses parked until their turn.
        std::map<std::uint64_t, std::string> ready;
        bool peer_closed = false;
        /// Unframeable stream or write error: the connection is dead;
        /// pending completions for it are discarded on arrival.
        bool broken = false;
        bool want_write = false;  // EPOLLOUT currently armed
    };

    struct Completion {
        std::uint64_t connection_id = 0;
        std::uint64_t sequence = 0;
        std::string payload;
    };

    void loop();
    void do_accepts();
    void handle_readable(Connection& connection);
    void handle_writable(Connection& connection);
    void process_frame(Connection& connection, const std::string& payload);
    void complete(Connection& connection, std::uint64_t sequence,
                  std::string payload);
    /// Move completed-in-order responses into the write buffer and flush.
    void flush_ready(Connection& connection);
    void write_pending(Connection& connection);
    void handle_completions();
    /// Re-register the connection's epoll interest from its current state
    /// (EPOLLIN unless the peer closed, EPOLLOUT while writes are pending).
    void update_interest(Connection& connection);
    /// Close-and-erase when the connection is broken, or when the peer
    /// closed and everything owed has been written.
    void reap(std::uint64_t connection_id);
    void close_connection(Connection& connection);
    void close_listener();
    void close_all_connections();
    [[nodiscard]] bool connections_drained() const;
    void drain_eventfd();
    void enqueue_completion(std::uint64_t connection_id,
                            std::uint64_t sequence, std::string payload);
    void wake();
    [[nodiscard]] std::uint64_t inflight(const Connection& connection) const {
        return connection.next_request - connection.next_response;
    }

    RepairService& service_;
    Options options_;
    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int event_fd_ = -1;
    std::thread thread_;
    std::mutex stop_mutex_;  // serializes stop() bodies

    /// Loop-thread state: connections keyed by id (epoll events carry the
    /// id, so a stale event for a closed fd cannot touch a reused one).
    std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
    std::uint64_t next_connection_id_ = 2;  // 0 = listener, 1 = eventfd
    /// Requests handed to the service whose completions the loop has not
    /// consumed yet; the loop never exits while this is nonzero, so a
    /// worker callback can never touch a destroyed reactor.
    std::uint64_t outstanding_ = 0;
    bool budget_reached_ = false;
    std::chrono::steady_clock::time_point accept_retry_at_{};
    int accept_backoff_ms_ = 0;

    std::mutex completions_mutex_;
    std::vector<Completion> completions_;

    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_served_{0};

    mutable std::mutex stats_mutex_;
    ServerStats stats_;

    std::mutex done_mutex_;
    std::condition_variable done_cv_;
    bool done_ = false;
};

}  // namespace rustbrain::serve
