#include "serve/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dataset/corpus.hpp"
#include "gen/corpus_io.hpp"

namespace rustbrain::serve {

namespace {

const char* kRequestMagic = "rustbrain-request";
const char* kResponseMagic = "rustbrain-response";
const char* kResultMagic = "case-result";

/// %a hexfloat: renders every finite double so that strtod reads the
/// identical bit pattern back — the round-trip the byte-compare needs.
std::string render_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    return buffer;
}

/// Byte-counted block: "<key> <bytes>\n<raw bytes>\n" — raw text is never
/// escaped, so any payload (newlines included) round-trips exactly.
void write_block(std::ostringstream& out, const char* key,
                 const std::string& payload) {
    out << key << ' ' << payload.size() << '\n' << payload << '\n';
}

/// Cursor over a payload with line-accurate error reporting — the
/// corpus_io Reader shape, shared by every parse_* below.
class Reader {
  public:
    explicit Reader(const std::string& text) : text_(text) {}

    [[noreturn]] void fail(const std::string& message) const {
        throw std::runtime_error("wire format error (line " +
                                 std::to_string(line_) + "): " + message);
    }

    [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

    std::string read_line() {
        ++line_;
        if (at_end()) fail("unexpected end of input");
        const std::size_t newline = text_.find('\n', pos_);
        if (newline == std::string::npos) fail("missing final newline");
        std::string line = text_.substr(pos_, newline - pos_);
        pos_ = newline + 1;
        return line;
    }

    std::string read_field(const std::string& key) {
        const std::string line = read_line();
        if (line == key) return "";
        if (line.rfind(key + " ", 0) != 0) {
            fail("expected '" + key + " ...' but found '" + line + "'");
        }
        return line.substr(key.size() + 1);
    }

    std::uint64_t parse_u64(const std::string& text, const char* what) {
        // All-digits only: stoull alone would also accept leading
        // whitespace and '+'/'-' signs, which are not canonical wire form.
        bool digits = !text.empty();
        for (const char c : text) {
            if (c < '0' || c > '9') {
                digits = false;
                break;
            }
        }
        if (digits) {
            try {
                return std::stoull(text);
            } catch (...) {  // out of range
            }
        }
        fail(std::string(what) + " is not an unsigned integer: '" + text +
             "'");
    }

    double parse_double(const std::string& text, const char* what) {
        const char* begin = text.c_str();
        char* end = nullptr;
        const double value = std::strtod(begin, &end);
        if (end != begin + text.size() || text.empty()) {
            fail(std::string(what) + " is not a number: '" + text + "'");
        }
        return value;
    }

    bool parse_bool(const std::string& text, const char* what) {
        if (text == "1") return true;
        if (text == "0") return false;
        fail(std::string(what) + " must be 0 or 1, got '" + text + "'");
    }

    /// Exactly `bytes` raw bytes followed by one '\n'.
    std::string read_block_body(std::uint64_t bytes) {
        const std::uint64_t remaining = text_.size() - pos_;
        if (remaining == 0 || bytes >= remaining) {
            fail("block runs past end of input");
        }
        std::string block = text_.substr(pos_, bytes);
        pos_ += bytes;
        if (text_[pos_] != '\n') {
            fail("block is not terminated by a newline (byte count is "
                 "wrong)");
        }
        ++pos_;
        for (char c : block) {
            if (c == '\n') ++line_;
        }
        ++line_;
        return block;
    }

    std::string read_block(const char* key) {
        return read_block_body(parse_u64(read_field(key), key));
    }

    void expect_end() {
        if (read_line() != "end") fail("expected 'end'");
        if (!at_end()) fail("trailing content after 'end'");
    }

    void check_header(const char* magic) {
        const std::string header = read_line();
        const std::string expected =
            std::string(magic) + " v" + std::to_string(kWireFormatVersion);
        if (header != expected) {
            fail("expected '" + expected + "' but found '" + header + "'");
        }
    }

  private:
    const std::string& text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 0;
};

void header(std::ostringstream& out, const char* magic) {
    out << magic << " v" << kWireFormatVersion << '\n';
}

}  // namespace

std::string frame(const std::string& payload) {
    if (payload.size() > kMaxFramePayload) {
        throw std::invalid_argument(
            "frame payload exceeds the 16 MiB wire limit (" +
            std::to_string(payload.size()) + " bytes)");
    }
    const auto size = static_cast<std::uint32_t>(payload.size());
    std::string framed;
    framed.reserve(payload.size() + 4);
    framed.push_back(static_cast<char>((size >> 24) & 0xFF));
    framed.push_back(static_cast<char>((size >> 16) & 0xFF));
    framed.push_back(static_cast<char>((size >> 8) & 0xFF));
    framed.push_back(static_cast<char>(size & 0xFF));
    framed.append(payload);
    return framed;
}

std::string render_case_result(const core::CaseResult& result) {
    std::ostringstream out;
    header(out, kResultMagic);
    write_block(out, "case_id", result.case_id);
    out << "pass " << (result.pass ? 1 : 0) << '\n';
    out << "exec " << (result.exec ? 1 : 0) << '\n';
    out << "time_ms " << render_double(result.time_ms) << '\n';
    out << "breakdown " << result.time_breakdown.size() << '\n';
    for (const auto& [category, charge] : result.time_breakdown) {
        // std::map iterates in key order, so the rendering is canonical.
        out << "charge " << render_double(charge) << ' ' << category.size()
            << '\n'
            << category << '\n';
    }
    out << "solutions " << result.solutions_generated << '\n';
    out << "steps " << result.steps_executed << '\n';
    out << "rollbacks " << result.rollbacks << '\n';
    out << "llm_calls " << result.llm_calls << '\n';
    out << "kb_consulted " << (result.kb_consulted ? 1 : 0) << '\n';
    out << "kb_skipped " << (result.kb_skipped_by_feedback ? 1 : 0) << '\n';
    out << "thinking " << result.thinking_switches << ' ' << result.escalations
        << ' ' << result.early_stops << ' ' << result.attempts_skipped << '\n';
    out << "screens " << result.screens << ' ' << result.screen_proven_safe
        << ' ' << result.screen_likely_ub << ' ' << result.screen_unknown
        << '\n';
    out << "trajectory " << result.error_trajectory.size();
    for (std::size_t errors : result.error_trajectory) out << ' ' << errors;
    out << '\n';
    write_block(out, "winning_rule", result.winning_rule);
    write_block(out, "final_source", result.final_source);
    out << "end\n";
    return out.str();
}

core::CaseResult parse_case_result(const std::string& text) {
    Reader reader(text);
    reader.check_header(kResultMagic);
    core::CaseResult result;
    result.case_id = reader.read_block("case_id");
    result.pass = reader.parse_bool(reader.read_field("pass"), "pass");
    result.exec = reader.parse_bool(reader.read_field("exec"), "exec");
    result.time_ms =
        reader.parse_double(reader.read_field("time_ms"), "time_ms");
    const std::uint64_t breakdown =
        reader.parse_u64(reader.read_field("breakdown"), "breakdown count");
    for (std::uint64_t i = 0; i < breakdown; ++i) {
        std::istringstream line(reader.read_field("charge"));
        std::string value_text;
        std::uint64_t bytes = 0;
        if (!(line >> value_text >> bytes)) {
            reader.fail("malformed charge line");
        }
        const double charge = reader.parse_double(value_text, "charge");
        const std::string category = reader.read_block_body(bytes);
        result.time_breakdown[category] = charge;
    }
    result.solutions_generated = static_cast<int>(
        reader.parse_u64(reader.read_field("solutions"), "solutions"));
    result.steps_executed = static_cast<int>(
        reader.parse_u64(reader.read_field("steps"), "steps"));
    result.rollbacks = static_cast<int>(
        reader.parse_u64(reader.read_field("rollbacks"), "rollbacks"));
    result.llm_calls =
        reader.parse_u64(reader.read_field("llm_calls"), "llm_calls");
    result.kb_consulted =
        reader.parse_bool(reader.read_field("kb_consulted"), "kb_consulted");
    result.kb_skipped_by_feedback =
        reader.parse_bool(reader.read_field("kb_skipped"), "kb_skipped");
    {
        std::istringstream line(reader.read_field("thinking"));
        if (!(line >> result.thinking_switches >> result.escalations >>
              result.early_stops >> result.attempts_skipped)) {
            reader.fail("malformed thinking line");
        }
    }
    {
        std::istringstream line(reader.read_field("screens"));
        if (!(line >> result.screens >> result.screen_proven_safe >>
              result.screen_likely_ub >> result.screen_unknown)) {
            reader.fail("malformed screens line");
        }
    }
    {
        std::istringstream line(reader.read_field("trajectory"));
        std::uint64_t length = 0;
        if (!(line >> length)) reader.fail("malformed trajectory line");
        for (std::uint64_t i = 0; i < length; ++i) {
            std::size_t errors = 0;
            if (!(line >> errors)) {
                reader.fail("trajectory shorter than declared");
            }
            result.error_trajectory.push_back(errors);
        }
    }
    result.winning_rule = reader.read_block("winning_rule");
    result.final_source = reader.read_block("final_source");
    reader.expect_end();
    return result;
}

std::string render_request(const RepairRequest& request) {
    std::ostringstream out;
    header(out, kRequestMagic);
    write_block(out, "ticket", request.ticket);
    write_block(out, "engine", request.engine);
    write_block(out, "options", request.options);
    write_block(out, "policy", request.policy);
    out << "feedback " << (request.use_feedback ? 1 : 0) << '\n';
    // The case travels as a single-case corpus: corpus_io already
    // round-trips every program byte-exactly and validates eagerly.
    const std::string corpus_text =
        gen::corpus_to_string(dataset::Corpus({request.ub_case}));
    write_block(out, "case", corpus_text);
    out << "end\n";
    return out.str();
}

RepairRequest parse_request(const std::string& text) {
    Reader reader(text);
    reader.check_header(kRequestMagic);
    RepairRequest request;
    request.ticket = reader.read_block("ticket");
    request.engine = reader.read_block("engine");
    request.options = reader.read_block("options");
    request.policy = reader.read_block("policy");
    request.use_feedback =
        reader.parse_bool(reader.read_field("feedback"), "feedback");
    const std::string corpus_text = reader.read_block("case");
    dataset::Corpus corpus;
    try {
        corpus = gen::corpus_from_string(corpus_text);
    } catch (const std::exception& error) {
        reader.fail(std::string("embedded case does not parse: ") +
                    error.what());
    }
    if (corpus.size() != 1) {
        reader.fail("request must carry exactly one case, got " +
                    std::to_string(corpus.size()));
    }
    request.ub_case = corpus.cases().front();
    reader.expect_end();
    return request;
}

std::string render_response(const RepairResponse& response) {
    std::ostringstream out;
    header(out, kResponseMagic);
    write_block(out, "ticket", response.ticket);
    out << "ok " << (response.ok ? 1 : 0) << '\n';
    out << "shed " << (response.shed ? 1 : 0) << '\n';
    out << "retry_after_ms " << render_double(response.retry_after_ms) << '\n';
    write_block(out, "error", response.error);
    out << "worker " << response.worker << '\n';
    out << "queue_ms " << render_double(response.queue_ms) << '\n';
    out << "service_ms " << render_double(response.service_ms) << '\n';
    write_block(out, "result", render_case_result(response.result));
    out << "end\n";
    return out.str();
}

RepairResponse parse_response(const std::string& text) {
    Reader reader(text);
    reader.check_header(kResponseMagic);
    RepairResponse response;
    response.ticket = reader.read_block("ticket");
    response.ok = reader.parse_bool(reader.read_field("ok"), "ok");
    response.shed = reader.parse_bool(reader.read_field("shed"), "shed");
    response.retry_after_ms = reader.parse_double(
        reader.read_field("retry_after_ms"), "retry_after_ms");
    response.error = reader.read_block("error");
    response.worker = reader.parse_u64(reader.read_field("worker"), "worker");
    response.queue_ms =
        reader.parse_double(reader.read_field("queue_ms"), "queue_ms");
    response.service_ms =
        reader.parse_double(reader.read_field("service_ms"), "service_ms");
    const std::string result_text = reader.read_block("result");
    try {
        response.result = parse_case_result(result_text);
    } catch (const std::exception& error) {
        reader.fail(std::string("embedded result does not parse: ") +
                    error.what());
    }
    reader.expect_end();
    return response;
}

void write_frame(int fd, const std::string& payload) {
    const std::string framed = frame(payload);
    std::size_t written = 0;
    while (written < framed.size()) {
        // MSG_NOSIGNAL: a peer that disconnects before the response lands
        // must surface as EPIPE (an exception the handler catches), not as
        // a SIGPIPE that kills the whole process.
        ssize_t n = ::send(fd, framed.data() + written,
                           framed.size() - written, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) {
            // Not a socket (the wire tests frame over plain pipes).
            n = ::write(fd, framed.data() + written, framed.size() - written);
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(std::string("frame write failed: ") +
                                     std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
}

namespace {

/// Reads exactly `want` bytes. Returns false on EOF before the first byte
/// when `eof_ok`; throws on I/O errors or a mid-buffer EOF.
bool read_exact(int fd, char* buffer, std::size_t want, bool eof_ok) {
    std::size_t got = 0;
    while (got < want) {
        const ssize_t n = ::read(fd, buffer + got, want - got);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error(std::string("frame read failed: ") +
                                     std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0 && eof_ok) return false;
            throw std::runtime_error("connection closed mid-frame");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

namespace {

/// Decode the 4-byte big-endian length prefix, enforcing the payload cap.
std::uint32_t decode_prefix(const char* prefix) {
    const std::uint32_t size =
        (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0]))
         << 24) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
         << 8) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]));
    if (size > kMaxFramePayload) {
        throw std::runtime_error(
            "frame length prefix exceeds the 16 MiB wire limit (" +
            std::to_string(size) + " bytes)");
    }
    return size;
}

}  // namespace

bool read_frame(int fd, std::string& payload) {
    char prefix[4];
    if (!read_exact(fd, prefix, sizeof prefix, /*eof_ok=*/true)) return false;
    const std::uint32_t size = decode_prefix(prefix);
    payload.resize(size);
    if (size > 0) {
        (void)read_exact(fd, payload.data(), size, /*eof_ok=*/false);
    }
    return true;
}

void FrameReader::feed(const char* data, std::size_t n) {
    buffer_.append(data, n);
}

bool FrameReader::next(std::string& payload) {
    const std::size_t available = buffer_.size() - pos_;
    if (available < 4) {
        // Everything buffered is a partial prefix; compact so a stream of
        // tiny frames never grows the buffer without bound.
        if (pos_ > 0) {
            buffer_.erase(0, pos_);
            pos_ = 0;
        }
        return false;
    }
    const std::uint32_t size = decode_prefix(buffer_.data() + pos_);
    if (available < 4 + static_cast<std::size_t>(size)) {
        if (pos_ > 0) {
            buffer_.erase(0, pos_);
            pos_ = 0;
        }
        return false;
    }
    payload.assign(buffer_, pos_ + 4, size);
    pos_ += 4 + static_cast<std::size_t>(size);
    ++frames_;
    if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
    }
    return true;
}

}  // namespace rustbrain::serve
