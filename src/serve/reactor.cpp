#include "serve/reactor.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace rustbrain::serve {

namespace {

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kEventId = 1;

/// Most frames gathered into one vectored write. Comfortably under any
/// IOV_MAX (POSIX guarantees ≥ 16, Linux has 1024) while letting a deep
/// pipeline drain with a handful of syscalls.
constexpr std::size_t kMaxWriteIovecs = 64;

[[noreturn]] void fail_errno(const char* what) {
    throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

bool is_transient_accept_error(int error) {
    return error == EMFILE || error == ENFILE || error == ENOBUFS ||
           error == ENOMEM;
}

Reactor::Reactor(int listen_fd, RepairService& service, Options options)
    : service_(service), options_(options), listen_fd_(listen_fd) {
    const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        errno = saved;
        fail_errno("fcntl O_NONBLOCK");
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
        const int saved = errno;
        ::close(listen_fd_);
        errno = saved;
        fail_errno("epoll_create1");
    }
    event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (event_fd_ < 0) {
        const int saved = errno;
        ::close(listen_fd_);
        ::close(epoll_fd_);
        errno = saved;
        fail_errno("eventfd");
    }
    epoll_event listen_event{};
    listen_event.events = EPOLLIN;
    listen_event.data.u64 = kListenerId;
    epoll_event wake_event{};
    wake_event.events = EPOLLIN;
    wake_event.data.u64 = kEventId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event) !=
            0 ||
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &wake_event) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        ::close(epoll_fd_);
        ::close(event_fd_);
        errno = saved;
        fail_errno("epoll_ctl ADD");
    }
    thread_ = std::thread([this] { loop(); });
}

Reactor::~Reactor() {
    stop();
    if (event_fd_ >= 0) ::close(event_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::stop() {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_.store(true);
    wake();
    if (thread_.joinable()) thread_.join();
}

void Reactor::wait() {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] { return done_; });
}

ServerStats Reactor::stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

void Reactor::wake() {
    if (event_fd_ < 0) return;
    const std::uint64_t one = 1;
    // The counter saturating (EAGAIN) still leaves the fd readable, which
    // is all a wake needs.
    (void)!::write(event_fd_, &one, sizeof one);
}

void Reactor::drain_eventfd() {
    std::uint64_t counter = 0;
    while (::read(event_fd_, &counter, sizeof counter) > 0) {
    }
}

void Reactor::enqueue_completion(std::uint64_t connection_id,
                                 std::uint64_t sequence,
                                 std::string payload) {
    {
        const std::lock_guard<std::mutex> lock(completions_mutex_);
        completions_.push_back({connection_id, sequence, std::move(payload)});
    }
    wake();
}

void Reactor::loop() {
    std::vector<epoll_event> events(64);
    while (true) {
        int timeout = -1;
        if (accept_backoff_ms_ > 0 && listen_fd_ >= 0) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= accept_retry_at_) {
                timeout = 0;
            } else {
                const auto remaining =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        accept_retry_at_ - now)
                        .count();
                timeout = static_cast<int>(remaining) + 1;
            }
        }
        const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                       static_cast<int>(events.size()),
                                       timeout);
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.loop_wakeups;
        }
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;  // epoll itself failed: nothing sane left to wait on
        }
        bool accept_ready = false;
        for (int i = 0; i < ready; ++i) {
            const std::uint64_t id = events[i].data.u64;
            const std::uint32_t mask = events[i].events;
            if (id == kListenerId) {
                accept_ready = true;
                continue;
            }
            if (id == kEventId) {
                drain_eventfd();
                continue;
            }
            const auto it = connections_.find(id);
            if (it == connections_.end()) continue;  // closed this batch
            Connection& connection = *it->second;
            if ((mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
                handle_readable(connection);
            }
            if ((mask & EPOLLOUT) != 0 && !connection.broken) {
                handle_writable(connection);
            }
            reap(id);
        }
        handle_completions();

        if (stopping_.load()) {
            // stop() means now: discard every connection, then drain the
            // service completions still in flight — the loop must consume
            // every callback before it may exit (worker callbacks touch
            // the completion queue and eventfd).
            close_listener();
            close_all_connections();
            if (outstanding_ == 0) break;
            continue;
        }
        if (budget_reached_) {
            close_listener();
            if (outstanding_ == 0 && connections_drained()) {
                close_all_connections();
                break;
            }
            continue;
        }
        if (listen_fd_ >= 0 &&
            (accept_ready ||
             (accept_backoff_ms_ > 0 &&
              std::chrono::steady_clock::now() >= accept_retry_at_))) {
            do_accepts();
        }
    }
    close_all_connections();
    close_listener();
    {
        const std::lock_guard<std::mutex> lock(done_mutex_);
        done_ = true;
    }
    done_cv_.notify_all();
}

void Reactor::do_accepts() {
    while (true) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                accept_backoff_ms_ = 0;
                return;
            }
            if (is_transient_accept_error(errno)) {
                // Transient fd/buffer exhaustion: back off and retry
                // (exponential, capped) instead of silently ending the
                // accept path — connections already open keep being
                // served meanwhile.
                {
                    const std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++stats_.accept_retries;
                }
                accept_backoff_ms_ = accept_backoff_ms_ == 0
                                         ? 10
                                         : std::min(accept_backoff_ms_ * 2,
                                                    200);
                accept_retry_at_ = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(
                                       accept_backoff_ms_);
                return;
            }
            // Fatal (listener shut down or gone): stop accepting.
            close_listener();
            return;
        }
        accept_backoff_ms_ = 0;
        if (options_.max_connections > 0 &&
            connections_.size() >= options_.max_connections) {
            // Connection cap: same contract as request shedding — a
            // framed, well-typed refusal, never a silent drop.
            {
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.connections_rejected;
            }
            RepairResponse refusal;
            refusal.ok = false;
            refusal.shed = true;
            refusal.retry_after_ms = 100.0;
            refusal.error =
                "server connection cap reached (" +
                std::to_string(connections_.size()) +
                " open); retry in ~100 ms";
            try {
                const std::string framed = frame(render_response(refusal));
                (void)::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
            } catch (const std::exception&) {
                // Best effort only.
            }
            ::close(fd);
            continue;
        }
        if (options_.send_buffer_bytes > 0) {
            (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                               &options_.send_buffer_bytes,
                               sizeof options_.send_buffer_bytes);
        }
        auto connection = std::make_unique<Connection>();
        connection->fd = fd;
        connection->id = next_connection_id_++;
        epoll_event event{};
        event.events = EPOLLIN;
        event.data.u64 = connection->id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
            ::close(fd);
            continue;
        }
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.connections_accepted;
        }
        connections_.emplace(connection->id, std::move(connection));
    }
}

void Reactor::handle_readable(Connection& connection) {
    if (connection.peer_closed || connection.broken) return;
    char buffer[64 * 1024];
    while (true) {
        const ssize_t n = ::read(connection.fd, buffer, sizeof buffer);
        if (n > 0) {
            connection.reader.feed(buffer, static_cast<std::size_t>(n));
            std::string payload;
            while (!budget_reached_ && !stopping_.load()) {
                try {
                    if (!connection.reader.next(payload)) break;
                } catch (const std::exception&) {
                    // Unframeable stream: nothing sane left to answer on.
                    connection.broken = true;
                    return;
                }
                {
                    const std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++stats_.frames_read;
                }
                process_frame(connection, payload);
                if (connection.broken) return;
            }
            continue;
        }
        if (n == 0) {
            // Peer sent FIN. Under level-triggered epoll an EOF'd fd stays
            // readable forever, so stop watching reads; responses still in
            // flight are written out before the reap.
            connection.peer_closed = true;
            update_interest(connection);
            return;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        connection.broken = true;  // reset or worse: discard
        return;
    }
}

void Reactor::process_frame(Connection& connection,
                            const std::string& payload) {
    const std::uint64_t sequence = connection.next_request++;
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        if (inflight(connection) > stats_.max_pipeline_depth) {
            stats_.max_pipeline_depth = inflight(connection);
        }
    }
    RepairRequest request;
    try {
        request = parse_request(payload);
    } catch (const std::exception& error) {
        // A frame that does not parse as a request still gets a framed
        // answer, in its pipeline slot, so later responses stay aligned.
        RepairResponse response;
        response.ok = false;
        response.error = error.what();
        complete(connection, sequence, render_response(response));
        return;
    }
    ++outstanding_;
    const std::uint64_t connection_id = connection.id;
    // The worker renders the response (the expensive half of the handoff)
    // before enqueueing; shed requests invoke the callback synchronously
    // on this thread, which lands in the same completion queue.
    service_.submit_async(
        std::move(request),
        [this, connection_id, sequence](RepairResponse response) {
            enqueue_completion(connection_id, sequence,
                               render_response(response));
        });
}

void Reactor::handle_completions() {
    std::vector<Completion> batch;
    {
        const std::lock_guard<std::mutex> lock(completions_mutex_);
        batch.swap(completions_);
    }
    for (Completion& completion : batch) {
        --outstanding_;
        const auto it = connections_.find(completion.connection_id);
        if (it == connections_.end()) continue;  // connection already gone
        Connection& connection = *it->second;
        if (connection.broken) continue;
        complete(connection, completion.sequence,
                 std::move(completion.payload));
        reap(completion.connection_id);
    }
}

void Reactor::complete(Connection& connection, std::uint64_t sequence,
                       std::string payload) {
    connection.ready.emplace(sequence, std::move(payload));
    flush_ready(connection);
}

void Reactor::flush_ready(Connection& connection) {
    bool queued = false;
    for (auto it = connection.ready.find(connection.next_response);
         it != connection.ready.end();
         it = connection.ready.find(connection.next_response)) {
        // In request order per connection: a response may only leave once
        // every earlier request on this connection has answered.
        try {
            connection.out.push_back(frame(it->second));
        } catch (const std::exception&) {
            connection.broken = true;
            return;
        }
        connection.ready.erase(it);
        ++connection.next_response;
        queued = true;
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.frames_written;
        }
        const std::uint64_t served = requests_served_.fetch_add(1) + 1;
        if (options_.max_requests != 0 && served >= options_.max_requests) {
            budget_reached_ = true;
        }
    }
    if (queued || !connection.out.empty()) {
        write_pending(connection);
    }
}

void Reactor::handle_writable(Connection& connection) {
    write_pending(connection);
}

void Reactor::write_pending(Connection& connection) {
    while (!connection.out.empty()) {
        // Gather up to kMaxWriteIovecs queued frames into one vectored
        // write; the first entry skips the bytes the kernel already took.
        iovec iov[kMaxWriteIovecs];
        std::size_t iov_count = 0;
        for (const std::string& pending : connection.out) {
            const std::size_t skip = iov_count == 0 ? connection.out_pos : 0;
            iov[iov_count].iov_base =
                const_cast<char*>(pending.data()) + skip;
            iov[iov_count].iov_len = pending.size() - skip;
            if (++iov_count == kMaxWriteIovecs) break;
        }
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = iov_count;
        const ssize_t n = ::sendmsg(connection.fd, &msg, MSG_NOSIGNAL);
        if (n >= 0) {
            {
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.writev_batches;
                if (iov_count > stats_.frames_per_writev_max) {
                    stats_.frames_per_writev_max = iov_count;
                }
            }
            // A short write may stop anywhere in the batch — drop the
            // fully accepted frames, keep the partial one's offset.
            std::size_t taken = static_cast<std::size_t>(n);
            while (!connection.out.empty()) {
                const std::size_t remaining =
                    connection.out.front().size() - connection.out_pos;
                if (taken < remaining) {
                    connection.out_pos += taken;
                    break;
                }
                taken -= remaining;
                connection.out.pop_front();
                connection.out_pos = 0;
            }
            continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // Kernel buffer full — the slow-reader path. Keep the
            // remainder and let EPOLLOUT resume it; the loop moves on.
            if (!connection.want_write) {
                connection.want_write = true;
                {
                    const std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++stats_.epollout_arms;
                }
                update_interest(connection);
            }
            return;
        }
        connection.broken = true;  // EPIPE/ECONNRESET: reader went away
        return;
    }
    if (connection.want_write) {
        connection.want_write = false;
        update_interest(connection);
    }
}

void Reactor::update_interest(Connection& connection) {
    epoll_event event{};
    event.data.u64 = connection.id;
    event.events = 0;
    if (!connection.peer_closed) event.events |= EPOLLIN;
    if (connection.want_write) event.events |= EPOLLOUT;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd, &event);
}

void Reactor::reap(std::uint64_t connection_id) {
    const auto it = connections_.find(connection_id);
    if (it == connections_.end()) return;
    Connection& connection = *it->second;
    const bool drained =
        inflight(connection) == 0 && connection.out.empty();
    if (connection.broken || (connection.peer_closed && drained)) {
        close_connection(connection);
    }
}

void Reactor::close_connection(Connection& connection) {
    const std::uint64_t id = connection.id;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection.fd, nullptr);
    ::shutdown(connection.fd, SHUT_RDWR);
    ::close(connection.fd);
    connections_.erase(id);  // invalidates `connection`
}

void Reactor::close_listener() {
    if (listen_fd_ < 0) return;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
    accept_backoff_ms_ = 0;
}

void Reactor::close_all_connections() {
    while (!connections_.empty()) {
        close_connection(*connections_.begin()->second);
    }
}

bool Reactor::connections_drained() const {
    for (const auto& [id, connection] : connections_) {
        (void)id;
        if (inflight(*connection) != 0 || !connection->out.empty()) {
            return false;
        }
    }
    return true;
}

}  // namespace rustbrain::serve
