// RepairService — repair-as-a-service over long-lived shared state.
//
// Everything else in the repo is a one-shot sweep: build engines, run a
// corpus, print, exit. The service is the long-lived shape the ROADMAP
// aims at — requests (source + engine/policy/options) arrive one at a
// time, fan out across the existing support::ThreadPool via a
// work-stealing scheduler, and share one verify::Oracle, one
// llm::PromptCache, and one warm core::FeedbackStore across their whole
// lifetime. Repeated traffic is the payoff regime: the second request for
// a hot program answers its verifications and prompts from cache, and
// feedback recorded by one request sharpens fast thinking for the next
// (requests opt in via use_feedback).
//
// Determinism contract (DESIGN.md §8): with use_feedback off, every
// response's CaseResult is a pure function of (engine id, options, case) —
// engines are built per request from the registry exactly like
// BatchRunner's workers build theirs, the shared caches are bit-identity
// preserving, and run_batch merges responses in submission order. A
// run_batch over a request list is therefore byte-identical to a serial
// BatchRunner sweep over the same cases (asserted in tests and CI).
// Queue/service latencies are wall-clock observability and excluded from
// that comparison.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine_registry.hpp"
#include "core/feedback.hpp"
#include "core/repair_engine.hpp"
#include "core/trace.hpp"
#include "dataset/case.hpp"
#include "kb/knowledge_base.hpp"
#include "llm/caching_backend.hpp"
#include "support/lru.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "support/work_steal.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::serve {

/// One unit of service work: a case plus the strategy to repair it with.
struct RepairRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    std::string ticket;
    /// Registry engine id; empty => the service's default_engine.
    std::string engine;
    /// "key=value,..." engine option spec (core::EngineOptions::parse).
    std::string options;
    /// Thinking-policy spec ("paper", "feedback-guided,threshold=2", ...);
    /// empty => whatever `options` says. Merged via core::set_policy_option.
    std::string policy;
    /// Opt into the service's shared FeedbackStore: the repair starts from
    /// a private snapshot of the warm store and its new records are merged
    /// back afterwards. Off by default — feedback makes the result depend
    /// on request history, which deterministic mode must not.
    bool use_feedback = false;
    dataset::UbCase ub_case;
};

struct RepairResponse {
    std::string ticket;
    bool ok = false;
    /// Set when !ok — e.g. the registry's invalid_argument text listing
    /// available engines/options/policies, or the overload notice when
    /// `shed` is set.
    std::string error;
    /// Admission control refused the request before it was queued: the
    /// service (or the connection cap) was over its configured thresholds.
    /// Always paired with ok == false and a retry_after_ms hint; the
    /// request was never run, so retrying it later is always safe.
    bool shed = false;
    /// Advice when shed: roughly how long until the queue should have
    /// drained below the breached threshold.
    double retry_after_ms = 0.0;
    core::CaseResult result;  // default-constructed when !ok
    std::uint64_t worker = 0;  // scheduler worker that ran the repair
    double queue_ms = 0.0;    // wall time from submit to dequeue
    double service_ms = 0.0;  // wall time from submit to completion
};

struct ServiceOptions {
    std::size_t workers = 0;  // 0 => support::ThreadPool::hardware_threads()
    /// Engine used by requests with an empty engine id.
    std::string default_engine = "rustbrain";
    /// Applied to requests with an empty policy spec (empty => none).
    std::string default_policy;
    /// Shared knowledge base (may be null: engines run knowledge-free).
    const kb::KnowledgeBase* knowledge_base = nullptr;
    /// Eviction policy for the service's PromptCache and VerifyCache.
    support::EvictionPolicy cache_policy = support::EvictionPolicy::Lru;
    /// Oracle shared by every request; null => the service builds its own
    /// (own VerifyCache under `cache_policy`, RUSTBRAIN_* env honoured).
    std::shared_ptr<const verify::Oracle> oracle;
    /// Optional observer for ServiceQueue / ServiceComplete events.
    /// Emission is serialized by the service, so any sink is safe; the
    /// per-repair engine event streams stay internal (they would interleave
    /// across workers).
    core::TraceSink* trace = nullptr;
    /// Admission control (0 disables both): a new request is shed — an
    /// immediate ok=false response with `shed` set and retry advice —
    /// instead of queued when the number of queued+running requests has
    /// reached max_inflight, or when a queue exists (in-flight > workers)
    /// and the most recent dequeue waited longer than max_queue_ms.
    /// Deterministic mode assumes both are 0: shedding is load-dependent
    /// by definition (admitted requests stay bit-identical regardless).
    std::size_t max_inflight = 0;
    double max_queue_ms = 0.0;
};

/// Aggregate counters across the service lifetime. Latency totals are
/// wall-clock; cache stats come from the shared stores, so they measure
/// reuse *across* requests, not within one.
struct ServiceStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;  // ok == false responses that actually ran
    /// Requests refused by admission control (counted in submitted, never
    /// in completed — they were not run).
    std::uint64_t shed = 0;
    double queue_ms_total = 0.0;
    double queue_ms_max = 0.0;
    /// Queue-latency percentiles from a bounded deterministic reservoir
    /// (support::Reservoir) of per-request queue_ms samples.
    double queue_ms_p50 = 0.0;
    double queue_ms_p95 = 0.0;
    double queue_ms_p99 = 0.0;
    double service_ms_total = 0.0;
    /// Requests that opted into feedback, and how many journal records
    /// they contributed back to the warm store.
    std::uint64_t feedback_requests = 0;
    std::uint64_t feedback_records_absorbed = 0;
    /// Screen verdict mix summed over completed CaseResults.
    std::uint64_t screens = 0;
    std::uint64_t screen_proven_safe = 0;
    std::uint64_t screen_likely_ub = 0;
    std::uint64_t screen_unknown = 0;
    support::WorkStealScheduler::Stats scheduler;
    llm::PromptCacheStats prompt_cache;
    verify::VerifyCacheStats verify_cache;
};

class RepairService {
  public:
    explicit RepairService(ServiceOptions options = {});
    ~RepairService();
    RepairService(const RepairService&) = delete;
    RepairService& operator=(const RepairService&) = delete;

    /// Enqueue one request; the future resolves when a worker finishes it.
    /// Never throws on a bad request — strategy errors come back as
    /// ok == false responses so one typo cannot poison the queue. When
    /// admission control is configured and breached, the future resolves
    /// immediately with a shed response (the request is never queued).
    std::future<RepairResponse> submit(RepairRequest request);

    /// Callback shape for the reactor: `done` runs on the worker that
    /// finished the repair (or synchronously on the caller when the
    /// request is shed). The callback must not block — the reactor's
    /// completion handoff is a queue push plus an eventfd wake.
    void submit_async(RepairRequest request,
                      std::function<void(RepairResponse)> done);

    /// submit + wait: the synchronous shape connection handlers use.
    RepairResponse repair(RepairRequest request);

    /// Deterministic mode: submit every request, then merge the responses
    /// in submission order (exactly BatchRunner's ordered merge). With
    /// use_feedback off on every request, the rendered CaseResults are
    /// byte-identical to a serial BatchRunner sweep over the same list at
    /// any worker count.
    std::vector<RepairResponse> run_batch(std::vector<RepairRequest> requests);

    [[nodiscard]] ServiceStats stats() const;
    [[nodiscard]] std::size_t workers() const { return pool_.size(); }
    [[nodiscard]] const verify::Oracle& oracle() const { return *oracle_; }
    [[nodiscard]] const std::shared_ptr<llm::PromptCache>& prompt_cache()
        const {
        return prompt_cache_;
    }
    /// Snapshot of the warm feedback store (copied under the lock).
    [[nodiscard]] core::FeedbackStore feedback_snapshot() const;

  private:
    RepairResponse handle(const RepairRequest& request, std::size_t worker,
                          double queue_ms,
                          std::chrono::steady_clock::time_point submitted_at);
    void emit(const core::TraceEvent& event);
    /// Admission check + submitted accounting (under stats_mutex_).
    /// Returns false when the request must be shed, with `shed_response`
    /// filled in (ticket is the caller's job).
    bool admit(RepairResponse& shed_response);

    ServiceOptions options_;
    support::ThreadPool pool_;
    std::shared_ptr<const verify::Oracle> oracle_;
    std::shared_ptr<llm::PromptCache> prompt_cache_;
    std::unique_ptr<support::WorkStealScheduler> scheduler_;

    mutable std::mutex feedback_mutex_;
    core::FeedbackStore feedback_;

    mutable std::mutex stats_mutex_;
    ServiceStats totals_;
    /// Queue-latency samples for the percentile report (bounded,
    /// deterministic given the arrival sequence). Guarded by stats_mutex_.
    support::Reservoir queue_samples_;
    /// The most recent dequeue's queue_ms — the freshest congestion signal
    /// the max_queue_ms admission check reads. Guarded by stats_mutex_.
    double last_queue_ms_ = 0.0;

    std::mutex trace_mutex_;
};

}  // namespace rustbrain::serve
