#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/wire.hpp"

namespace rustbrain::serve {

RepairClient::RepairClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("connect 127.0.0.1:" + std::to_string(port) +
                                 ": " + std::strerror(saved));
    }
}

RepairClient::~RepairClient() {
    if (fd_ >= 0) ::close(fd_);
}

std::string RepairClient::roundtrip_raw(const std::string& payload) {
    write_frame(fd_, payload);
    std::string response;
    if (!read_frame(fd_, response)) {
        throw std::runtime_error("server closed the connection");
    }
    return response;
}

void RepairClient::send_async(const RepairRequest& request) {
    write_frame(fd_, render_request(request));
}

RepairResponse RepairClient::recv_one() {
    std::string payload;
    if (!read_frame(fd_, payload)) {
        throw std::runtime_error(
            "server closed the connection with responses owed");
    }
    return parse_response(payload);
}

RepairResponse RepairClient::repair(const RepairRequest& request) {
    send_async(request);
    return recv_one();
}

}  // namespace rustbrain::serve
