#include "serve/service.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "core/thinking_policy.hpp"

namespace rustbrain::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

}  // namespace

RepairService::RepairService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.workers),
      prompt_cache_(
          std::make_shared<llm::PromptCache>(options_.cache_policy)) {
    if (options_.oracle != nullptr) {
        oracle_ = options_.oracle;
    } else {
        verify::OracleOptions oracle_options;
        oracle_options.cache =
            std::make_shared<verify::VerifyCache>(options_.cache_policy);
        oracle_ = std::make_shared<verify::Oracle>(std::move(oracle_options));
    }
    // Validate the default strategy eagerly: a typo in default_engine or
    // default_policy must fail service construction with the registry's
    // help text, not surface as an error response on every request.
    core::EngineBuildContext probe;
    probe.knowledge_base = options_.knowledge_base;
    probe.oracle = oracle_;
    core::EngineOptions probe_options;
    if (!options_.default_policy.empty()) {
        core::set_policy_option(probe_options, options_.default_policy);
    }
    (void)core::EngineRegistry::builtin().build(options_.default_engine,
                                                probe_options, probe);
    scheduler_ = std::make_unique<support::WorkStealScheduler>(pool_);
}

RepairService::~RepairService() {
    // The scheduler's destructor drains outstanding tasks before the
    // shared stores below it are torn down.
    scheduler_.reset();
}

void RepairService::emit(const core::TraceEvent& event) {
    if (options_.trace == nullptr) return;
    const std::lock_guard<std::mutex> lock(trace_mutex_);
    options_.trace->on_event(event);
}

bool RepairService::admit(RepairResponse& shed_response) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++totals_.submitted;
    const std::uint64_t inflight =
        totals_.submitted - totals_.completed - totals_.shed - 1;
    const char* breach = nullptr;
    if (options_.max_inflight > 0 && inflight >= options_.max_inflight) {
        breach = "in-flight requests";
    } else if (options_.max_queue_ms > 0.0 && inflight > pool_.size() &&
               last_queue_ms_ > options_.max_queue_ms) {
        breach = "queue latency";
    }
    if (breach == nullptr) return true;
    ++totals_.shed;
    // Retry advice: the backlog divided across the workers, scaled by the
    // average per-request execution time observed so far.
    double avg_exec_ms = 1.0;
    if (totals_.completed > 0) {
        avg_exec_ms = (totals_.service_ms_total - totals_.queue_ms_total) /
                      static_cast<double>(totals_.completed);
        if (avg_exec_ms < 1.0) avg_exec_ms = 1.0;
    }
    shed_response.ok = false;
    shed_response.shed = true;
    shed_response.retry_after_ms = avg_exec_ms *
                                   static_cast<double>(inflight) /
                                   static_cast<double>(pool_.size());
    if (shed_response.retry_after_ms < 1.0) shed_response.retry_after_ms = 1.0;
    shed_response.error =
        std::string("service overloaded (") + breach +
        " over the configured limit); request was not queued — retry in ~" +
        std::to_string(shed_response.retry_after_ms) + " ms";
    return false;
}

void RepairService::submit_async(RepairRequest request,
                                 std::function<void(RepairResponse)> done) {
    const auto submitted_at = std::chrono::steady_clock::now();
    RepairResponse shed_response;
    shed_response.ticket = request.ticket;
    if (!admit(shed_response)) {
        done(std::move(shed_response));
        return;
    }
    auto shared_request = std::make_shared<RepairRequest>(std::move(request));
    auto shared_done =
        std::make_shared<std::function<void(RepairResponse)>>(std::move(done));
    scheduler_->submit([this, shared_request, shared_done,
                        submitted_at](std::size_t worker) {
        const double queue_ms = elapsed_ms(submitted_at);
        (*shared_done)(
            handle(*shared_request, worker, queue_ms, submitted_at));
    });
}

std::future<RepairResponse> RepairService::submit(RepairRequest request) {
    auto promise = std::make_shared<std::promise<RepairResponse>>();
    std::future<RepairResponse> future = promise->get_future();
    submit_async(std::move(request), [promise](RepairResponse response) {
        promise->set_value(std::move(response));
    });
    return future;
}

RepairResponse RepairService::repair(RepairRequest request) {
    return submit(std::move(request)).get();
}

std::vector<RepairResponse> RepairService::run_batch(
    std::vector<RepairRequest> requests) {
    std::vector<std::future<RepairResponse>> futures;
    futures.reserve(requests.size());
    for (RepairRequest& request : requests) {
        futures.push_back(submit(std::move(request)));
    }
    // Ordered merge, exactly as BatchRunner reassembles case-index order:
    // whatever the steal pattern was, response i is request i.
    std::vector<RepairResponse> responses;
    responses.reserve(futures.size());
    for (std::future<RepairResponse>& future : futures) {
        responses.push_back(future.get());
    }
    return responses;
}

RepairResponse RepairService::handle(
    const RepairRequest& request, std::size_t worker, double queue_ms,
    std::chrono::steady_clock::time_point submitted_at) {
    const std::string engine_id =
        request.engine.empty() ? options_.default_engine : request.engine;
    {
        // Dequeue-time accounting: the admission check wants the freshest
        // congestion signal, not one delayed by the repair itself.
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        last_queue_ms_ = queue_ms;
        queue_samples_.add(queue_ms);
    }
    emit({core::TraceEventKind::ServiceQueue, engine_id,
          static_cast<std::uint64_t>(queue_ms * 1000.0), 0.0});

    RepairResponse response;
    response.ticket = request.ticket;
    response.worker = worker;
    response.queue_ms = queue_ms;

    // A request that opts into feedback starts from a private snapshot of
    // the warm store; only the delta it adds is merged back (journal
    // replay), so concurrent requests never double-count the shared prefix.
    std::unique_ptr<core::FeedbackStore> snapshot;
    std::uint64_t snapshot_records = 0;
    if (request.use_feedback) {
        const std::lock_guard<std::mutex> lock(feedback_mutex_);
        snapshot = std::make_unique<core::FeedbackStore>(feedback_);
        snapshot_records = snapshot->records();
    }

    try {
        core::EngineOptions engine_options =
            core::EngineOptions::parse(request.options);
        const std::string policy_spec =
            request.policy.empty() ? options_.default_policy : request.policy;
        if (!policy_spec.empty()) {
            core::set_policy_option(engine_options, policy_spec);
        }
        core::EngineBuildContext context;
        context.knowledge_base = options_.knowledge_base;
        context.oracle = oracle_;
        context.backend_factory = llm::caching_backend_factory(prompt_cache_);
        // Null feedback (not an empty store) when the request opted out —
        // matching BatchRunner's registry constructor, which nulls
        // context.feedback, is what keeps deterministic mode byte-identical.
        context.feedback = snapshot.get();
        const std::unique_ptr<core::RepairEngine> engine =
            core::EngineRegistry::builtin().build(engine_id, engine_options,
                                                  context);
        response.result = engine->repair(request.ub_case);
        response.ok = true;
    } catch (const std::exception& error) {
        response.error = error.what();
    }

    std::uint64_t absorbed = 0;
    if (snapshot != nullptr) {
        const std::lock_guard<std::mutex> lock(feedback_mutex_);
        const std::uint64_t before = feedback_.records();
        feedback_.absorb(*snapshot, snapshot_records);
        absorbed = feedback_.records() - before;
    }

    response.service_ms = elapsed_ms(submitted_at);
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++totals_.completed;
        if (!response.ok) ++totals_.failed;
        totals_.queue_ms_total += response.queue_ms;
        if (response.queue_ms > totals_.queue_ms_max) {
            totals_.queue_ms_max = response.queue_ms;
        }
        totals_.service_ms_total += response.service_ms;
        if (request.use_feedback) {
            ++totals_.feedback_requests;
            totals_.feedback_records_absorbed += absorbed;
        }
        totals_.screens += static_cast<std::uint64_t>(response.result.screens);
        totals_.screen_proven_safe +=
            static_cast<std::uint64_t>(response.result.screen_proven_safe);
        totals_.screen_likely_ub +=
            static_cast<std::uint64_t>(response.result.screen_likely_ub);
        totals_.screen_unknown +=
            static_cast<std::uint64_t>(response.result.screen_unknown);
    }
    emit({core::TraceEventKind::ServiceComplete, request.ub_case.id,
          static_cast<std::uint64_t>(response.service_ms * 1000.0), 0.0});
    return response;
}

ServiceStats RepairService::stats() const {
    ServiceStats stats;
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats = totals_;
        stats.queue_ms_p50 = queue_samples_.percentile(0.50);
        stats.queue_ms_p95 = queue_samples_.percentile(0.95);
        stats.queue_ms_p99 = queue_samples_.percentile(0.99);
    }
    stats.scheduler = scheduler_->stats();
    stats.prompt_cache = prompt_cache_->stats();
    stats.verify_cache = oracle_->stats();
    return stats;
}

core::FeedbackStore RepairService::feedback_snapshot() const {
    const std::lock_guard<std::mutex> lock(feedback_mutex_);
    return feedback_;
}

}  // namespace rustbrain::serve
