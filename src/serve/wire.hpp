// Wire protocol for the repair service — length-prefixed text frames.
//
// Every message on a service connection is one frame: a 4-byte big-endian
// payload length followed by that many payload bytes. Payloads are
// line-oriented text in the corpus_io idiom — variable-size fields (ticket,
// sources, the case itself) are written as byte-counted blocks, so any
// program text round-trips exactly and a parse error names the offending
// line. The case travels as a single-case gen::corpus_to_string corpus, so
// the one serializer that already round-trips every program byte-exactly is
// also the one the wire uses.
//
// Doubles (virtual times, latencies) are rendered as C99 %a hexfloats, so
// render(parse(x)) == x bit-for-bit — the property the deterministic-mode
// byte-compare (service vs serial BatchRunner, DESIGN.md §8) rests on.
// render_case_result covers every CaseResult field for the same reason:
// a field the wire dropped would be a field the comparison could not see.
#pragma once

#include <cstdint>
#include <string>

#include "core/repair_engine.hpp"
#include "serve/service.hpp"

namespace rustbrain::serve {

// v2 added the admission-control fields (shed / retry_after_ms) to
// responses.
constexpr int kWireFormatVersion = 2;

/// Maximum accepted frame payload (16 MiB) — a corrupt or hostile length
/// prefix must not size a giant allocation.
constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

/// Prepend the 4-byte big-endian length prefix. Throws std::invalid_argument
/// when payload exceeds kMaxFramePayload.
std::string frame(const std::string& payload);

/// Deterministic rendering of one CaseResult — every field, hexfloat
/// doubles. The unit of the deterministic-mode byte-compare.
std::string render_case_result(const core::CaseResult& result);
/// Inverse of render_case_result. Throws std::runtime_error on malformed
/// input, naming the offending line.
core::CaseResult parse_case_result(const std::string& text);

std::string render_request(const RepairRequest& request);
RepairRequest parse_request(const std::string& text);

std::string render_response(const RepairResponse& response);
RepairResponse parse_response(const std::string& text);

/// Blocking framed I/O over a file descriptor (sockets, pipes).
/// write_frame throws std::runtime_error on a short or failed write.
/// read_frame returns false on clean EOF at a frame boundary and throws on
/// a truncated frame, an I/O error, or a length prefix beyond
/// kMaxFramePayload.
void write_frame(int fd, const std::string& payload);
bool read_frame(int fd, std::string& payload);

/// Incremental frame decoder for nonblocking reads — the reactor's half of
/// the wire. feed() appends whatever bytes the socket produced (any split:
/// mid-prefix, mid-payload, many frames at once); next() extracts complete
/// frames in order and returns false while one is still partial. The
/// internal buffer compacts as frames are consumed, so a long-lived
/// connection's memory is bounded by its largest in-flight frame.
class FrameReader {
  public:
    /// Append `n` raw stream bytes.
    void feed(const char* data, std::size_t n);
    /// Extract the next complete frame payload into `payload`. Returns
    /// false when no complete frame is buffered yet. Throws
    /// std::runtime_error when the buffered length prefix exceeds
    /// kMaxFramePayload — the stream is unframeable from there on.
    bool next(std::string& payload);
    /// Bytes buffered but not yet consumed as frames.
    [[nodiscard]] std::size_t buffered() const {
        return buffer_.size() - pos_;
    }
    [[nodiscard]] std::uint64_t frames_decoded() const { return frames_; }

  private:
    std::string buffer_;
    std::size_t pos_ = 0;
    std::uint64_t frames_ = 0;
};

}  // namespace rustbrain::serve
