// RepairServer — the loopback socket front-end over RepairService.
//
// Binds 127.0.0.1:<port> (port 0 = ephemeral, the bound port is queryable
// for --port-file handoff) and serves framed repair requests through one
// of two frontends:
//
//   Frontend::Reactor (default) — a single-threaded epoll loop
//   (serve/reactor.hpp): nonblocking accepts, incremental per-connection
//   frame decoding, pipelining with strictly in-request-order responses,
//   and buffered writes so a slow reader never blocks anyone else.
//
//   Frontend::Threads — the original thread-per-connection path, kept as
//   the reference oracle: read one framed request, hand it to the shared
//   RepairService, write one framed response, repeat until the client
//   closes.
//
// Under either frontend a malformed frame gets an ok=0 error response
// naming the parse failure — one bad client cannot take the service
// down — and only an unframeable stream closes the connection. Transient
// accept() failures (EMFILE-class fd exhaustion) are retried with capped
// exponential backoff and counted in stats(), never treated as fatal.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/reactor.hpp"
#include "serve/service.hpp"

namespace rustbrain::serve {

enum class Frontend {
    Reactor,  // single-threaded epoll loop, pipelining-capable
    Threads,  // thread-per-connection reference oracle
};

struct ServerOptions {
    ServiceOptions service;
    /// 0 => ephemeral: bind whatever the kernel hands out, report it via
    /// port().
    std::uint16_t port = 0;
    /// Stop accepting after serving this many requests (0 => serve until
    /// stop()). The CI smoke job uses this for a clean, deterministic
    /// shutdown.
    std::uint64_t max_requests = 0;
    Frontend frontend = Frontend::Reactor;
    /// Cap on concurrently open connections (0 = uncapped). Over-cap
    /// connections are accepted, sent one framed shed response with retry
    /// advice, and closed — never silently dropped.
    std::size_t max_connections = 0;
    /// SO_SNDBUF requested for accepted connections (0 = kernel default).
    /// Reactor frontend only; tests shrink it to force partial vectored
    /// writes deterministically.
    int send_buffer_bytes = 0;
};

class RepairServer {
  public:
    /// Binds and starts accepting. Throws std::runtime_error when the
    /// socket cannot be created or bound.
    explicit RepairServer(ServerOptions options = {});
    ~RepairServer();
    RepairServer(const RepairServer&) = delete;
    RepairServer& operator=(const RepairServer&) = delete;

    [[nodiscard]] std::uint16_t port() const { return port_; }
    [[nodiscard]] RepairService& service() { return service_; }
    [[nodiscard]] std::uint64_t requests_served() const;
    /// Frontend counters: the reactor fills everything; the threads
    /// frontend reports only the accept-side fields.
    [[nodiscard]] ServerStats stats() const;

    /// Stop accepting, close the listener, drain every handler.
    /// Idempotent, including against concurrent callers.
    void stop();
    /// Block until the server stopped (stop() called, or max_requests
    /// reached and the last connection drained).
    void wait();

  private:
    void accept_loop();
    void handle_connection(int fd);
    /// Threads-frontend connection cap: send one framed shed response and
    /// close. Best effort — the refusal must not block the acceptor.
    void reject_connection(int fd, std::size_t open);

    ServerOptions options_;
    RepairService service_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    /// Declared after service_ so it destructs first: the reactor drains
    /// its outstanding service completions before the service goes away.
    std::unique_ptr<Reactor> reactor_;
    std::thread acceptor_;
    std::mutex mutex_;
    /// Serializes stop() bodies: wait() and the destructor may race, and
    /// only one of them may join the acceptor.
    std::mutex stop_mutex_;
    std::condition_variable stopped_cv_;
    /// Handlers are detached and self-reaping (a long-lived server must
    /// not accumulate one dead std::thread per finished connection); this
    /// count is how stop() knows every handler has drained.
    std::size_t active_handlers_ = 0;
    std::vector<int> open_connections_;
    bool stopping_ = false;
    bool accept_done_ = false;
    std::atomic<std::uint64_t> requests_served_{0};
    /// Threads-frontend accept-side counters (guarded by stats_mutex_).
    mutable std::mutex stats_mutex_;
    ServerStats thread_stats_;
};

}  // namespace rustbrain::serve
