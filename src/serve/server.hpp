// RepairServer — the loopback socket front-end over RepairService.
//
// Binds 127.0.0.1:<port> (port 0 = ephemeral, the bound port is queryable
// for --port-file handoff), accepts connections on a background thread,
// and serves each connection on its own handler thread: read one framed
// request, hand it to the shared RepairService, write one framed response,
// repeat until the client closes. A malformed frame gets an ok=0 error
// response naming the parse failure — one bad client cannot take the
// service down — and only an unframeable stream closes the connection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace rustbrain::serve {

struct ServerOptions {
    ServiceOptions service;
    /// 0 => ephemeral: bind whatever the kernel hands out, report it via
    /// port().
    std::uint16_t port = 0;
    /// Stop accepting after serving this many requests (0 => serve until
    /// stop()). The CI smoke job uses this for a clean, deterministic
    /// shutdown.
    std::uint64_t max_requests = 0;
};

class RepairServer {
  public:
    /// Binds and starts accepting. Throws std::runtime_error when the
    /// socket cannot be created or bound.
    explicit RepairServer(ServerOptions options = {});
    ~RepairServer();
    RepairServer(const RepairServer&) = delete;
    RepairServer& operator=(const RepairServer&) = delete;

    [[nodiscard]] std::uint16_t port() const { return port_; }
    [[nodiscard]] RepairService& service() { return service_; }
    [[nodiscard]] std::uint64_t requests_served() const {
        return requests_served_.load();
    }

    /// Stop accepting, close the listener, drain every handler.
    /// Idempotent, including against concurrent callers.
    void stop();
    /// Block until the server stopped (stop() called, or max_requests
    /// reached and the last connection drained).
    void wait();

  private:
    void accept_loop();
    void handle_connection(int fd);

    ServerOptions options_;
    RepairService service_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
    std::mutex mutex_;
    /// Serializes stop() bodies: wait() and the destructor may race, and
    /// only one of them may join the acceptor.
    std::mutex stop_mutex_;
    std::condition_variable stopped_cv_;
    /// Handlers are detached and self-reaping (a long-lived server must
    /// not accumulate one dead std::thread per finished connection); this
    /// count is how stop() knows every handler has drained.
    std::size_t active_handlers_ = 0;
    std::vector<int> open_connections_;
    bool stopping_ = false;
    bool accept_done_ = false;
    std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace rustbrain::serve
