// Generic const AST traversal with callbacks — the basis for feature
// extraction, pruning and vectorization.
#pragma once

#include <functional>

#include "lang/ast.hpp"

namespace rustbrain::analysis {

struct WalkCallbacks {
    /// Called for every statement (pre-order). `in_unsafe` is true inside
    /// unsafe blocks and unsafe fn bodies.
    std::function<void(const lang::Stmt&, bool in_unsafe)> on_stmt;
    /// Called for every expression (pre-order).
    std::function<void(const lang::Expr&, bool in_unsafe)> on_expr;
};

void walk_program(const lang::Program& program, const WalkCallbacks& callbacks);
void walk_block(const lang::Block& block, const WalkCallbacks& callbacks,
                bool in_unsafe);
void walk_expr(const lang::Expr& expr, const WalkCallbacks& callbacks,
               bool in_unsafe);

/// Names referenced anywhere inside unsafe regions of the program.
std::vector<std::string> names_used_in_unsafe(const lang::Program& program);

/// True if the statement contains (or is) an unsafe block.
bool contains_unsafe(const lang::Stmt& stmt);

}  // namespace rustbrain::analysis
