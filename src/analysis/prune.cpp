#include "analysis/prune.hpp"

#include <set>

#include "analysis/walk.hpp"

namespace rustbrain::analysis {

using namespace lang;

namespace {

/// Does the expression mention any of the given names?
bool mentions(const Expr& expr, const std::set<std::string>& names) {
    bool found = false;
    WalkCallbacks callbacks;
    callbacks.on_expr = [&](const Expr& e, bool) {
        if (e.kind == ExprKind::VarRef &&
            names.count(static_cast<const VarRefExpr&>(e).name) != 0) {
            found = true;
        }
        if (e.kind == ExprKind::Call &&
            names.count(static_cast<const CallExpr&>(e).callee) != 0) {
            found = true;
        }
    };
    walk_expr(expr, callbacks, false);
    return found;
}

bool stmt_relevant(const Stmt& stmt, const std::set<std::string>& names);

/// A block is relevant if any of its statements is.
bool block_relevant(const Block& block, const std::set<std::string>& names) {
    for (const auto& stmt : block.statements) {
        if (stmt_relevant(*stmt, names)) return true;
    }
    return false;
}

bool stmt_relevant(const Stmt& stmt, const std::set<std::string>& names) {
    switch (stmt.kind) {
        case StmtKind::Unsafe:
            return true;  // Principle 1: unsafe regions are always kept.
        case StmtKind::Let: {
            const auto& node = static_cast<const LetStmt&>(stmt);
            return names.count(node.name) != 0 || mentions(*node.init, names);
        }
        case StmtKind::Assign: {
            const auto& node = static_cast<const AssignStmt&>(stmt);
            return mentions(*node.place, names) || mentions(*node.value, names);
        }
        case StmtKind::Expr:
            return mentions(*static_cast<const ExprStmt&>(stmt).expr, names);
        case StmtKind::If: {
            const auto& node = static_cast<const IfStmt&>(stmt);
            if (mentions(*node.condition, names)) return true;
            if (block_relevant(node.then_block, names)) return true;
            return node.else_block && block_relevant(*node.else_block, names);
        }
        case StmtKind::While: {
            const auto& node = static_cast<const WhileStmt&>(stmt);
            return mentions(*node.condition, names) ||
                   block_relevant(node.body, names);
        }
        case StmtKind::Return: {
            const auto& node = static_cast<const ReturnStmt&>(stmt);
            return node.value && mentions(*node.value, names);
        }
        case StmtKind::Block:
            return block_relevant(static_cast<const BlockStmt&>(stmt).block, names);
        case StmtKind::Become: {
            const auto& node = static_cast<const BecomeStmt&>(stmt);
            if (mentions(*node.callee, names)) return true;
            for (const auto& arg : node.args) {
                if (mentions(*arg, names)) return true;
            }
            return false;
        }
    }
    return false;
}

Block prune_block(const Block& block, const std::set<std::string>& names) {
    Block out;
    for (const auto& stmt : block.statements) {
        if (!stmt_relevant(*stmt, names)) {
            continue;  // Algorithm 1: delete context irrelevant to unsafe ops.
        }
        // Recurse into structured statements to prune their bodies too.
        switch (stmt->kind) {
            case StmtKind::If: {
                const auto& node = static_cast<const IfStmt&>(*stmt);
                auto pruned = std::make_unique<IfStmt>();
                pruned->span = node.span;
                pruned->condition = node.condition->clone();
                pruned->then_block = prune_block(node.then_block, names);
                if (node.else_block) {
                    pruned->else_block = prune_block(*node.else_block, names);
                }
                out.statements.push_back(std::move(pruned));
                break;
            }
            case StmtKind::While: {
                const auto& node = static_cast<const WhileStmt&>(*stmt);
                auto pruned = std::make_unique<WhileStmt>();
                pruned->span = node.span;
                pruned->condition = node.condition->clone();
                pruned->body = prune_block(node.body, names);
                out.statements.push_back(std::move(pruned));
                break;
            }
            case StmtKind::Block: {
                const auto& node = static_cast<const BlockStmt&>(*stmt);
                auto pruned = std::make_unique<BlockStmt>();
                pruned->span = node.span;
                pruned->block = prune_block(node.block, names);
                out.statements.push_back(std::move(pruned));
                break;
            }
            default:
                out.statements.push_back(stmt->clone());
                break;
        }
    }
    return out;
}

}  // namespace

Program prune_ast(const Program& program, PruneStats* stats) {
    // Seed the relevance set with names used inside unsafe regions, then
    // close over definitions: a let whose init mentions a relevant name makes
    // the defined name relevant too (one backward pass is enough for the
    // mini-Rust shapes in the corpus; iterate to a fixpoint regardless).
    std::set<std::string> names;
    for (const auto& name : names_used_in_unsafe(program)) {
        names.insert(name);
    }
    bool changed = true;
    while (changed) {
        changed = false;
        WalkCallbacks callbacks;
        callbacks.on_stmt = [&](const Stmt& stmt, bool) {
            if (stmt.kind != StmtKind::Let) return;
            const auto& node = static_cast<const LetStmt&>(stmt);
            if (names.count(node.name) != 0 && mentions(*node.init, names)) {
                return;
            }
            if (names.count(node.name) != 0) {
                // Pull init dependencies in.
                WalkCallbacks inner;
                inner.on_expr = [&](const Expr& e, bool) {
                    if (e.kind == ExprKind::VarRef) {
                        changed |= names
                                       .insert(static_cast<const VarRefExpr&>(e).name)
                                       .second;
                    }
                };
                walk_expr(*node.init, inner, false);
            }
        };
        walk_program(program, callbacks);
    }

    Program pruned;
    // Statics touched by unsafe code stay.
    for (const auto& item : program.statics) {
        if (names.count(item.name) != 0 || item.is_mut) {
            pruned.statics.push_back(item.clone());
        }
    }
    for (const auto& fn : program.functions) {
        FnItem copy;
        copy.name = fn.name;
        copy.is_unsafe = fn.is_unsafe;
        copy.params = fn.params;
        copy.return_type = fn.return_type;
        copy.span = fn.span;
        if (fn.is_unsafe) {
            copy.body = fn.body.clone();  // whole unsafe fn is an unsafe region
        } else {
            copy.body = prune_block(fn.body, names);
        }
        const bool referenced = names.count(fn.name) != 0;
        if (!copy.body.statements.empty() || referenced || fn.name == "main") {
            pruned.functions.push_back(std::move(copy));
        }
    }
    pruned.renumber();
    if (stats != nullptr) {
        stats->original_nodes = program.node_count();
        stats->pruned_nodes = pruned.node_count();
    }
    return pruned;
}

}  // namespace rustbrain::analysis
