#include "analysis/walk.hpp"

#include <set>

#include "lang/typecheck.hpp"

namespace rustbrain::analysis {

using namespace lang;

void walk_expr(const Expr& expr, const WalkCallbacks& callbacks, bool in_unsafe) {
    if (callbacks.on_expr) callbacks.on_expr(expr, in_unsafe);
    switch (expr.kind) {
        case ExprKind::IntLit:
        case ExprKind::BoolLit:
        case ExprKind::VarRef:
            break;
        case ExprKind::Unary:
            walk_expr(*static_cast<const UnaryExpr&>(expr).operand, callbacks,
                      in_unsafe);
            break;
        case ExprKind::Binary: {
            const auto& node = static_cast<const BinaryExpr&>(expr);
            walk_expr(*node.lhs, callbacks, in_unsafe);
            walk_expr(*node.rhs, callbacks, in_unsafe);
            break;
        }
        case ExprKind::Cast:
            walk_expr(*static_cast<const CastExpr&>(expr).operand, callbacks,
                      in_unsafe);
            break;
        case ExprKind::Index: {
            const auto& node = static_cast<const IndexExpr&>(expr);
            walk_expr(*node.base, callbacks, in_unsafe);
            walk_expr(*node.index, callbacks, in_unsafe);
            break;
        }
        case ExprKind::Call:
            for (const auto& arg : static_cast<const CallExpr&>(expr).args) {
                walk_expr(*arg, callbacks, in_unsafe);
            }
            break;
        case ExprKind::CallPtr: {
            const auto& node = static_cast<const CallPtrExpr&>(expr);
            walk_expr(*node.callee, callbacks, in_unsafe);
            for (const auto& arg : node.args) {
                walk_expr(*arg, callbacks, in_unsafe);
            }
            break;
        }
        case ExprKind::ArrayLit:
            for (const auto& element :
                 static_cast<const ArrayLitExpr&>(expr).elements) {
                walk_expr(*element, callbacks, in_unsafe);
            }
            break;
        case ExprKind::ArrayRepeat:
            walk_expr(*static_cast<const ArrayRepeatExpr&>(expr).element, callbacks,
                      in_unsafe);
            break;
    }
}

namespace {
void walk_stmt(const Stmt& stmt, const WalkCallbacks& callbacks, bool in_unsafe) {
    if (callbacks.on_stmt) callbacks.on_stmt(stmt, in_unsafe);
    switch (stmt.kind) {
        case StmtKind::Let:
            walk_expr(*static_cast<const LetStmt&>(stmt).init, callbacks, in_unsafe);
            break;
        case StmtKind::Assign: {
            const auto& node = static_cast<const AssignStmt&>(stmt);
            walk_expr(*node.place, callbacks, in_unsafe);
            walk_expr(*node.value, callbacks, in_unsafe);
            break;
        }
        case StmtKind::Expr:
            walk_expr(*static_cast<const ExprStmt&>(stmt).expr, callbacks, in_unsafe);
            break;
        case StmtKind::If: {
            const auto& node = static_cast<const IfStmt&>(stmt);
            walk_expr(*node.condition, callbacks, in_unsafe);
            walk_block(node.then_block, callbacks, in_unsafe);
            if (node.else_block) walk_block(*node.else_block, callbacks, in_unsafe);
            break;
        }
        case StmtKind::While: {
            const auto& node = static_cast<const WhileStmt&>(stmt);
            walk_expr(*node.condition, callbacks, in_unsafe);
            walk_block(node.body, callbacks, in_unsafe);
            break;
        }
        case StmtKind::Return: {
            const auto& node = static_cast<const ReturnStmt&>(stmt);
            if (node.value) walk_expr(*node.value, callbacks, in_unsafe);
            break;
        }
        case StmtKind::Block:
            walk_block(static_cast<const BlockStmt&>(stmt).block, callbacks,
                       in_unsafe);
            break;
        case StmtKind::Unsafe:
            walk_block(static_cast<const UnsafeStmt&>(stmt).block, callbacks, true);
            break;
        case StmtKind::Become: {
            const auto& node = static_cast<const BecomeStmt&>(stmt);
            walk_expr(*node.callee, callbacks, in_unsafe);
            for (const auto& arg : node.args) {
                walk_expr(*arg, callbacks, in_unsafe);
            }
            break;
        }
    }
}
}  // namespace

void walk_block(const Block& block, const WalkCallbacks& callbacks, bool in_unsafe) {
    for (const auto& stmt : block.statements) {
        walk_stmt(*stmt, callbacks, in_unsafe);
    }
}

void walk_program(const Program& program, const WalkCallbacks& callbacks) {
    for (const auto& item : program.statics) {
        if (item.init) walk_expr(*item.init, callbacks, false);
    }
    for (const auto& fn : program.functions) {
        walk_block(fn.body, callbacks, fn.is_unsafe);
    }
}

std::vector<std::string> names_used_in_unsafe(const Program& program) {
    std::set<std::string> names;
    WalkCallbacks callbacks;
    callbacks.on_expr = [&](const Expr& expr, bool in_unsafe) {
        if (!in_unsafe) return;
        if (expr.kind == ExprKind::VarRef) {
            names.insert(static_cast<const VarRefExpr&>(expr).name);
        } else if (expr.kind == ExprKind::Call) {
            // Intrinsics (print_int, alloc, ...) are ambient vocabulary, not
            // program context; seeding them would make everything relevant.
            const auto& call = static_cast<const CallExpr&>(expr);
            if (!is_intrinsic(call.callee)) {
                names.insert(call.callee);
            }
        }
    };
    callbacks.on_stmt = [&](const Stmt& stmt, bool in_unsafe) {
        if (in_unsafe && stmt.kind == StmtKind::Let) {
            names.insert(static_cast<const LetStmt&>(stmt).name);
        }
    };
    walk_program(program, callbacks);
    return {names.begin(), names.end()};
}

bool contains_unsafe(const Stmt& stmt) {
    bool found = stmt.kind == StmtKind::Unsafe;
    if (found) return true;
    WalkCallbacks callbacks;
    callbacks.on_stmt = [&](const Stmt& inner, bool) {
        if (inner.kind == StmtKind::Unsafe) found = true;
    };
    switch (stmt.kind) {
        case StmtKind::If: {
            const auto& node = static_cast<const IfStmt&>(stmt);
            walk_block(node.then_block, callbacks, false);
            if (node.else_block) walk_block(*node.else_block, callbacks, false);
            break;
        }
        case StmtKind::While:
            walk_block(static_cast<const WhileStmt&>(stmt).body, callbacks, false);
            break;
        case StmtKind::Block:
            walk_block(static_cast<const BlockStmt&>(stmt).block, callbacks, false);
            break;
        default:
            break;
    }
    return found;
}

}  // namespace rustbrain::analysis
