// Error-feature extraction — the fast-thinking stage's view of the problem
// (Fig 2, F2). Combines the Miri finding with code-shape features so that
// solution generation and the feedback store can key on "what kind of
// problem is this" rather than on raw source text.
#pragma once

#include <cstdint>
#include <string>

#include "lang/ast.hpp"
#include "miri/finding.hpp"

namespace rustbrain::analysis {

/// Counts of the unsafe-operation kinds (the paper's five-way
/// classification) and repair-relevant shape features.
struct ErrorFeatures {
    miri::UbCategory category = miri::UbCategory::Panic;

    // The five unsafe-operation kinds (Section III-A1).
    int raw_ptr_derefs = 0;
    int unsafe_fn_calls = 0;
    int static_mut_accesses = 0;
    int fn_ptr_casts = 0;   // stand-in for "unsafe trait" (not in mini-Rust)
    int union_accesses = 0; // always 0 in mini-Rust; kept for the taxonomy

    // Shape features used by rule applicability & the feedback key.
    int alloc_calls = 0;
    int dealloc_calls = 0;
    int offset_calls = 0;
    int int_to_ptr_casts = 0;
    int ref_to_ptr_casts = 0;
    int spawn_calls = 0;
    int atomic_calls = 0;
    int mutex_calls = 0;
    int become_stmts = 0;
    int unsafe_blocks = 0;
    int loops = 0;
    int branches = 0;
    int index_exprs = 0;
    int div_ops = 0;
    int array_decls = 0;
    std::uint32_t node_count = 0;

    /// Stable feedback-store key: category plus the dominant shape signals.
    [[nodiscard]] std::string feedback_key() const;
    [[nodiscard]] std::string to_string() const;
};

ErrorFeatures extract_features(const lang::Program& program,
                               const miri::Finding& finding);

}  // namespace rustbrain::analysis
