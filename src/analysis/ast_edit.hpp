// AST construction & surgery toolkit used by the repair-rule library and the
// hallucination injector: concise node builders, expression rewriting, and
// block-level statement manipulation across nested blocks.
#pragma once

#include <functional>
#include <optional>

#include "lang/ast.hpp"

namespace rustbrain::analysis {

// --- node builders -----------------------------------------------------

lang::ExprPtr mk_int(std::uint64_t value);
lang::ExprPtr mk_bool(bool value);
lang::ExprPtr mk_var(const std::string& name);
lang::ExprPtr mk_unary(lang::UnaryOp op, lang::ExprPtr operand);
lang::ExprPtr mk_binary(lang::BinaryOp op, lang::ExprPtr lhs, lang::ExprPtr rhs);
lang::ExprPtr mk_cast(lang::ExprPtr operand, lang::Type target);
lang::ExprPtr mk_call(const std::string& callee, std::vector<lang::ExprPtr> args);
lang::ExprPtr mk_index(lang::ExprPtr base, lang::ExprPtr index);

lang::StmtPtr mk_let(const std::string& name, bool is_mut, lang::ExprPtr init,
                     std::optional<lang::Type> declared = std::nullopt);
lang::StmtPtr mk_assign(lang::ExprPtr place, lang::ExprPtr value);
lang::StmtPtr mk_expr_stmt(lang::ExprPtr expr);
lang::StmtPtr mk_return(lang::ExprPtr value);
/// `if cond { then } else { print_int(0 - 1); }` — the corpus's guard idiom.
lang::StmtPtr mk_guard(lang::ExprPtr cond, lang::Block then_block,
                       bool with_sentinel_else);
lang::StmtPtr mk_unsafe(lang::Block block);
/// print_int(0 - 1) — the sentinel the corpus prints on guarded paths.
lang::StmtPtr mk_print_sentinel();

// --- traversal / rewriting -------------------------------------------------

/// Apply `fn` to every block of the program (function bodies and all nested
/// blocks), pre-order. Stop after the first invocation that returns true.
/// Returns whether any invocation returned true.
bool for_each_block(lang::Program& program,
                    const std::function<bool(lang::Block&)>& fn);

/// Rewrite expressions everywhere: `fn` is offered each expression (outermost
/// first); returning a replacement substitutes that subtree and skips its
/// children. Returns the number of substitutions performed.
int rewrite_exprs(
    lang::Program& program,
    const std::function<std::optional<lang::ExprPtr>(const lang::Expr&)>& fn);
int rewrite_exprs_in_block(
    lang::Block& block,
    const std::function<std::optional<lang::ExprPtr>(const lang::Expr&)>& fn);

// --- queries -----------------------------------------------------------

/// Index of the first statement in `block` matching `pred`, or -1.
int find_stmt(const lang::Block& block,
              const std::function<bool(const lang::Stmt&)>& pred,
              int start_index = 0);

/// The LetStmt declaring `name` anywhere in the program, or nullptr.
const lang::LetStmt* find_let_by_name(const lang::Program& program,
                                      const std::string& name);

/// True if the statement mentions variable `name` anywhere.
bool stmt_mentions(const lang::Stmt& stmt, const std::string& name);

/// True if the expr (sub)tree contains a direct call to `callee`.
bool stmt_calls(const lang::Stmt& stmt, const std::string& callee);

/// Move the statement at `from` so it ends up at index `to` (indices within
/// the same block, interpreted before removal). Returns false on bad input.
bool move_stmt(lang::Block& block, std::size_t from, std::size_t to);

/// Total statement count across all (nested) blocks.
int count_statements(const lang::Program& program);

}  // namespace rustbrain::analysis
