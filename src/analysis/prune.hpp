// Algorithm 1 from the paper: prune irrelevant nodes from the Rust AST.
//
//   Input: original AST, Miri errors
//   1. keep every node containing the `unsafe` keyword (Principle 1);
//   2. for each unsafe node, keep context relevant to the unsafe operation
//      (here: statements that define or touch names used inside unsafe
//      regions, and the control-flow statements containing them);
//   3. drop everything else.
//
// Invariants (property-tested): the pruned program contains every unsafe
// statement of the original, and never more nodes than the original.
#pragma once

#include "lang/ast.hpp"

namespace rustbrain::analysis {

struct PruneStats {
    std::uint32_t original_nodes = 0;
    std::uint32_t pruned_nodes = 0;

    [[nodiscard]] double retained_fraction() const {
        return original_nodes == 0
                   ? 1.0
                   : static_cast<double>(pruned_nodes) / original_nodes;
    }
};

/// Produce a pruned clone of `program`. Functions whose bodies end up empty
/// and that are not referenced from unsafe regions are dropped entirely.
lang::Program prune_ast(const lang::Program& program, PruneStats* stats = nullptr);

}  // namespace rustbrain::analysis
