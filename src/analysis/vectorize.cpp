#include "analysis/vectorize.hpp"

#include <cmath>
#include <functional>
#include <string>

#include "analysis/walk.hpp"
#include "lang/typecheck.hpp"
#include "support/hashing.hpp"

namespace rustbrain::analysis {

using namespace lang;

namespace {

void bump(AstVector& vec, const std::string& token, float weight = 1.0F) {
    const std::uint64_t h = support::fnv1a64(token);
    vec[h % kAstVectorDim] += weight;
}

std::string type_token(const Type& type) {
    switch (type.kind()) {
        case Type::Kind::Scalar: return scalar_kind_name(type.scalar_kind());
        case Type::Kind::RawPtr: return type.is_mut() ? "*mut" : "*const";
        case Type::Kind::Ref: return type.is_mut() ? "&mut" : "&";
        case Type::Kind::Array: return "array";
        case Type::Kind::FnPtr: return "fnptr";
    }
    return "?";
}

std::string expr_token(const Expr& expr) {
    switch (expr.kind) {
        case ExprKind::Unary:
            return std::string("un:") +
                   unary_op_name(static_cast<const UnaryExpr&>(expr).op);
        case ExprKind::Binary:
            return std::string("bin:") +
                   binary_op_name(static_cast<const BinaryExpr&>(expr).op);
        case ExprKind::Cast:
            return "cast>" + type_token(static_cast<const CastExpr&>(expr).target);
        case ExprKind::Call: {
            const auto& node = static_cast<const CallExpr&>(expr);
            // Intrinsic names are structure (they name operations); user
            // function names are not.
            return lang::is_intrinsic(node.callee) ? "call:" + node.callee
                                                   : "call:user";
        }
        case ExprKind::IntLit: {
            // Coarse magnitude bucket so constants carry only a little
            // signal (variants differ in constants but not in structure).
            const auto value = static_cast<const IntLitExpr&>(expr).value;
            if (value == 0) return "int:0";
            return value < 4096 ? "int:small" : "int:large";
        }
        default:
            return expr_kind_name(expr.kind);
    }
}

}  // namespace

AstVector vectorize(const Program& program) {
    AstVector vec{};

    // Expressions contribute their own token, a parent>child bigram, and an
    // unsafe-context-tagged variant; blocks additionally contribute sliding
    // bigrams of consecutive statement kinds.
    std::function<void(const Expr&, const std::string&, bool)> visit_expr =
        [&](const Expr& expr, const std::string& parent, bool in_unsafe) {
            const std::string token = expr_token(expr);
            bump(vec, token);
            bump(vec, parent + ">" + token, 0.5F);
            if (in_unsafe) bump(vec, "unsafe~" + token, 0.5F);
            switch (expr.kind) {
                case ExprKind::Unary:
                    visit_expr(*static_cast<const UnaryExpr&>(expr).operand, token,
                               in_unsafe);
                    break;
                case ExprKind::Binary: {
                    const auto& node = static_cast<const BinaryExpr&>(expr);
                    visit_expr(*node.lhs, token, in_unsafe);
                    visit_expr(*node.rhs, token, in_unsafe);
                    break;
                }
                case ExprKind::Cast: {
                    const auto& node = static_cast<const CastExpr&>(expr);
                    visit_expr(*node.operand, token, in_unsafe);
                    break;
                }
                case ExprKind::Index: {
                    const auto& node = static_cast<const IndexExpr&>(expr);
                    visit_expr(*node.base, token, in_unsafe);
                    visit_expr(*node.index, token, in_unsafe);
                    break;
                }
                case ExprKind::Call:
                    for (const auto& arg : static_cast<const CallExpr&>(expr).args) {
                        visit_expr(*arg, token, in_unsafe);
                    }
                    break;
                case ExprKind::CallPtr: {
                    const auto& node = static_cast<const CallPtrExpr&>(expr);
                    visit_expr(*node.callee, token, in_unsafe);
                    for (const auto& arg : node.args) {
                        visit_expr(*arg, token, in_unsafe);
                    }
                    break;
                }
                case ExprKind::ArrayLit:
                    for (const auto& element :
                         static_cast<const ArrayLitExpr&>(expr).elements) {
                        visit_expr(*element, token, in_unsafe);
                    }
                    break;
                case ExprKind::ArrayRepeat:
                    visit_expr(*static_cast<const ArrayRepeatExpr&>(expr).element,
                               token, in_unsafe);
                    break;
                default:
                    break;
            }
        };

    std::function<void(const Block&, bool)> visit_block = [&](const Block& block,
                                                              bool in_unsafe) {
        std::string prev = "^";
        for (const auto& stmt : block.statements) {
            const std::string token = stmt_kind_name(stmt->kind);
            bump(vec, "stmt:" + token);
            bump(vec, "seq:" + prev + ">" + token, 0.5F);
            prev = token;
            switch (stmt->kind) {
                case StmtKind::Let:
                    visit_expr(*static_cast<const LetStmt&>(*stmt).init, token,
                               in_unsafe);
                    break;
                case StmtKind::Assign: {
                    const auto& node = static_cast<const AssignStmt&>(*stmt);
                    visit_expr(*node.place, token, in_unsafe);
                    visit_expr(*node.value, token, in_unsafe);
                    break;
                }
                case StmtKind::Expr:
                    visit_expr(*static_cast<const ExprStmt&>(*stmt).expr, token,
                               in_unsafe);
                    break;
                case StmtKind::If: {
                    const auto& node = static_cast<const IfStmt&>(*stmt);
                    visit_expr(*node.condition, token, in_unsafe);
                    visit_block(node.then_block, in_unsafe);
                    if (node.else_block) visit_block(*node.else_block, in_unsafe);
                    break;
                }
                case StmtKind::While: {
                    const auto& node = static_cast<const WhileStmt&>(*stmt);
                    visit_expr(*node.condition, token, in_unsafe);
                    visit_block(node.body, in_unsafe);
                    break;
                }
                case StmtKind::Return: {
                    const auto& node = static_cast<const ReturnStmt&>(*stmt);
                    if (node.value) visit_expr(*node.value, token, in_unsafe);
                    break;
                }
                case StmtKind::Block:
                    visit_block(static_cast<const BlockStmt&>(*stmt).block,
                                in_unsafe);
                    break;
                case StmtKind::Unsafe:
                    visit_block(static_cast<const UnsafeStmt&>(*stmt).block, true);
                    break;
                case StmtKind::Become: {
                    const auto& node = static_cast<const BecomeStmt&>(*stmt);
                    visit_expr(*node.callee, token, in_unsafe);
                    for (const auto& arg : node.args) {
                        visit_expr(*arg, token, in_unsafe);
                    }
                    break;
                }
            }
        }
    };

    for (const auto& item : program.statics) {
        bump(vec, item.is_mut ? "static-mut" : "static");
        bump(vec, "static:" + type_token(item.type), 0.5F);
    }
    for (const auto& fn : program.functions) {
        bump(vec, fn.is_unsafe ? "fn-unsafe" : "fn");
        bump(vec, "fn-arity:" + std::to_string(fn.params.size()), 0.25F);
        visit_block(fn.body, fn.is_unsafe);
    }

    // L2 normalize.
    double norm = 0.0;
    for (float v : vec) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
        for (float& v : vec) v = static_cast<float>(v / norm);
    }
    return vec;
}

double cosine_similarity(const AstVector& a, const AstVector& b) {
    double dot = 0.0;
    for (std::size_t i = 0; i < kAstVectorDim; ++i) {
        dot += static_cast<double>(a[i]) * b[i];
    }
    return dot;  // inputs are L2-normalized
}

}  // namespace rustbrain::analysis
