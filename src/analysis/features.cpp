#include "analysis/features.hpp"

#include "analysis/walk.hpp"
#include "lang/typecheck.hpp"

namespace rustbrain::analysis {

using namespace lang;

ErrorFeatures extract_features(const Program& program,
                               const miri::Finding& finding) {
    ErrorFeatures features;
    features.category = finding.category;
    features.node_count = program.node_count();

    // Type information may be absent (features run on unchecked clones), so
    // shape detection is syntactic where possible.
    WalkCallbacks callbacks;
    callbacks.on_stmt = [&](const Stmt& stmt, bool) {
        switch (stmt.kind) {
            case StmtKind::Unsafe: ++features.unsafe_blocks; break;
            case StmtKind::While: ++features.loops; break;
            case StmtKind::If: ++features.branches; break;
            case StmtKind::Become: ++features.become_stmts; break;
            default: break;
        }
    };
    callbacks.on_expr = [&](const Expr& expr, bool in_unsafe) {
        switch (expr.kind) {
            case ExprKind::Unary: {
                const auto& node = static_cast<const UnaryExpr&>(expr);
                if (node.op == UnaryOp::Deref && in_unsafe) {
                    ++features.raw_ptr_derefs;
                }
                break;
            }
            case ExprKind::Cast: {
                const auto& node = static_cast<const CastExpr&>(expr);
                if (node.target.is_raw_ptr() &&
                    node.operand->kind != ExprKind::Unary) {
                    ++features.int_to_ptr_casts;
                }
                if (node.target.is_raw_ptr() &&
                    node.operand->kind == ExprKind::Unary) {
                    const auto& inner = static_cast<const UnaryExpr&>(*node.operand);
                    if (inner.op == UnaryOp::AddrOf ||
                        inner.op == UnaryOp::AddrOfMut) {
                        ++features.ref_to_ptr_casts;
                    }
                }
                if (node.target.is_fn_ptr()) {
                    ++features.fn_ptr_casts;
                }
                break;
            }
            case ExprKind::Call: {
                const auto& node = static_cast<const CallExpr&>(expr);
                if (node.callee == "alloc") ++features.alloc_calls;
                if (node.callee == "dealloc") ++features.dealloc_calls;
                if (node.callee == "offset") ++features.offset_calls;
                if (node.callee == "spawn") ++features.spawn_calls;
                if (node.callee == "atomic_load" || node.callee == "atomic_store" ||
                    node.callee == "atomic_fetch_add") {
                    ++features.atomic_calls;
                }
                if (node.callee == "mutex_new" || node.callee == "mutex_lock" ||
                    node.callee == "mutex_unlock") {
                    ++features.mutex_calls;
                }
                if (!is_intrinsic(node.callee)) {
                    const FnItem* fn = program.find_function(node.callee);
                    if (fn != nullptr && fn->is_unsafe) {
                        ++features.unsafe_fn_calls;
                    }
                }
                break;
            }
            case ExprKind::VarRef: {
                const auto& node = static_cast<const VarRefExpr&>(expr);
                const StaticItem* item = program.find_static(node.name);
                if (item != nullptr && item->is_mut) {
                    ++features.static_mut_accesses;
                }
                break;
            }
            case ExprKind::Index:
                ++features.index_exprs;
                break;
            case ExprKind::Binary: {
                const auto& node = static_cast<const BinaryExpr&>(expr);
                if (node.op == BinaryOp::Div || node.op == BinaryOp::Rem) {
                    ++features.div_ops;
                }
                break;
            }
            case ExprKind::ArrayLit:
            case ExprKind::ArrayRepeat:
                ++features.array_decls;
                break;
            default:
                break;
        }
    };
    walk_program(program, callbacks);
    return features;
}

std::string ErrorFeatures::feedback_key() const {
    std::string key = miri::ub_category_label(category);
    key += '|';
    // Dominant shape bits, in a fixed order so keys are stable.
    if (alloc_calls > 0) key += 'A';
    if (dealloc_calls > 1) key += 'D';
    if (offset_calls > 0) key += 'O';
    if (int_to_ptr_casts > 0) key += 'I';
    if (spawn_calls > 0) key += 'S';
    if (become_stmts > 0) key += 'B';
    if (fn_ptr_casts > 0) key += 'F';
    if (loops > 0) key += 'L';
    if (branches > 0) key += 'C';
    if (index_exprs > 0) key += 'X';
    if (div_ops > 0) key += 'V';
    if (array_decls > 0) key += 'R';
    return key;
}

std::string ErrorFeatures::to_string() const {
    std::string out = "features{";
    out += miri::ub_category_label(category);
    out += ", derefs=" + std::to_string(raw_ptr_derefs);
    out += ", allocs=" + std::to_string(alloc_calls);
    out += ", deallocs=" + std::to_string(dealloc_calls);
    out += ", offsets=" + std::to_string(offset_calls);
    out += ", int2ptr=" + std::to_string(int_to_ptr_casts);
    out += ", spawns=" + std::to_string(spawn_calls);
    out += ", becomes=" + std::to_string(become_stmts);
    out += ", unsafe_blocks=" + std::to_string(unsafe_blocks);
    out += ", nodes=" + std::to_string(node_count);
    out += "}";
    return out;
}

}  // namespace rustbrain::analysis
