// AST vectorization for the knowledge base (Fig 6: "Vector Error AST",
// "Compare similarities").
//
// Feature hashing of structural n-grams: node kinds, parent-child kind
// pairs, operators, cast source/target kinds, intrinsic names. Identifier
// spellings are deliberately excluded so that corpus variants that differ
// only in names land close together, while constants are bucketed coarsely.
#pragma once

#include <array>
#include <cstdint>

#include "lang/ast.hpp"

namespace rustbrain::analysis {

constexpr std::size_t kAstVectorDim = 64;

using AstVector = std::array<float, kAstVectorDim>;

/// L2-normalized structural feature vector of the program.
AstVector vectorize(const lang::Program& program);

/// Cosine similarity in [-1, 1] (vectors are non-negative pre-normalization,
/// so effectively [0, 1]).
double cosine_similarity(const AstVector& a, const AstVector& b);

}  // namespace rustbrain::analysis
