#include "analysis/ast_edit.hpp"

#include "analysis/walk.hpp"

namespace rustbrain::analysis {

using namespace lang;

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

ExprPtr mk_int(std::uint64_t value) {
    auto node = std::make_unique<IntLitExpr>();
    node->value = value;
    return node;
}

ExprPtr mk_bool(bool value) {
    auto node = std::make_unique<BoolLitExpr>();
    node->value = value;
    return node;
}

ExprPtr mk_var(const std::string& name) {
    auto node = std::make_unique<VarRefExpr>();
    node->name = name;
    return node;
}

ExprPtr mk_unary(UnaryOp op, ExprPtr operand) {
    auto node = std::make_unique<UnaryExpr>();
    node->op = op;
    node->operand = std::move(operand);
    return node;
}

ExprPtr mk_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto node = std::make_unique<BinaryExpr>();
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
}

ExprPtr mk_cast(ExprPtr operand, Type target) {
    auto node = std::make_unique<CastExpr>();
    node->operand = std::move(operand);
    node->target = std::move(target);
    return node;
}

ExprPtr mk_call(const std::string& callee, std::vector<ExprPtr> args) {
    auto node = std::make_unique<CallExpr>();
    node->callee = callee;
    node->args = std::move(args);
    return node;
}

ExprPtr mk_index(ExprPtr base, ExprPtr index) {
    auto node = std::make_unique<IndexExpr>();
    node->base = std::move(base);
    node->index = std::move(index);
    return node;
}

StmtPtr mk_let(const std::string& name, bool is_mut, ExprPtr init,
               std::optional<Type> declared) {
    auto node = std::make_unique<LetStmt>();
    node->name = name;
    node->is_mut = is_mut;
    node->init = std::move(init);
    node->declared_type = std::move(declared);
    return node;
}

StmtPtr mk_assign(ExprPtr place, ExprPtr value) {
    auto node = std::make_unique<AssignStmt>();
    node->place = std::move(place);
    node->value = std::move(value);
    return node;
}

StmtPtr mk_expr_stmt(ExprPtr expr) {
    auto node = std::make_unique<ExprStmt>();
    node->expr = std::move(expr);
    return node;
}

StmtPtr mk_return(ExprPtr value) {
    auto node = std::make_unique<ReturnStmt>();
    node->value = std::move(value);
    return node;
}

StmtPtr mk_print_sentinel() {
    return mk_expr_stmt(
        mk_call("print_int", [] {
            std::vector<ExprPtr> args;
            args.push_back(mk_binary(BinaryOp::Sub, mk_int(0), mk_int(1)));
            return args;
        }()));
}

StmtPtr mk_guard(ExprPtr cond, Block then_block, bool with_sentinel_else) {
    auto node = std::make_unique<IfStmt>();
    node->condition = std::move(cond);
    node->then_block = std::move(then_block);
    if (with_sentinel_else) {
        Block else_block;
        else_block.statements.push_back(mk_print_sentinel());
        node->else_block = std::move(else_block);
    }
    return node;
}

StmtPtr mk_unsafe(Block block) {
    auto node = std::make_unique<UnsafeStmt>();
    node->block = std::move(block);
    return node;
}

// ---------------------------------------------------------------------------
// Traversal
// ---------------------------------------------------------------------------

namespace {

bool for_each_block_in(Block& block, const std::function<bool(Block&)>& fn) {
    if (fn(block)) return true;
    for (auto& stmt : block.statements) {
        switch (stmt->kind) {
            case StmtKind::If: {
                auto& node = static_cast<IfStmt&>(*stmt);
                if (for_each_block_in(node.then_block, fn)) return true;
                if (node.else_block && for_each_block_in(*node.else_block, fn)) {
                    return true;
                }
                break;
            }
            case StmtKind::While:
                if (for_each_block_in(static_cast<WhileStmt&>(*stmt).body, fn)) {
                    return true;
                }
                break;
            case StmtKind::Block:
                if (for_each_block_in(static_cast<BlockStmt&>(*stmt).block, fn)) {
                    return true;
                }
                break;
            case StmtKind::Unsafe:
                if (for_each_block_in(static_cast<UnsafeStmt&>(*stmt).block, fn)) {
                    return true;
                }
                break;
            default:
                break;
        }
    }
    return false;
}

using Rewriter = std::function<std::optional<ExprPtr>(const Expr&)>;

int rewrite_slot(ExprPtr& slot, const Rewriter& fn);

int rewrite_children(Expr& expr, const Rewriter& fn) {
    int count = 0;
    switch (expr.kind) {
        case ExprKind::Unary:
            count += rewrite_slot(static_cast<UnaryExpr&>(expr).operand, fn);
            break;
        case ExprKind::Binary: {
            auto& node = static_cast<BinaryExpr&>(expr);
            count += rewrite_slot(node.lhs, fn);
            count += rewrite_slot(node.rhs, fn);
            break;
        }
        case ExprKind::Cast:
            count += rewrite_slot(static_cast<CastExpr&>(expr).operand, fn);
            break;
        case ExprKind::Index: {
            auto& node = static_cast<IndexExpr&>(expr);
            count += rewrite_slot(node.base, fn);
            count += rewrite_slot(node.index, fn);
            break;
        }
        case ExprKind::Call:
            for (auto& arg : static_cast<CallExpr&>(expr).args) {
                count += rewrite_slot(arg, fn);
            }
            break;
        case ExprKind::CallPtr: {
            auto& node = static_cast<CallPtrExpr&>(expr);
            count += rewrite_slot(node.callee, fn);
            for (auto& arg : node.args) {
                count += rewrite_slot(arg, fn);
            }
            break;
        }
        case ExprKind::ArrayLit:
            for (auto& element : static_cast<ArrayLitExpr&>(expr).elements) {
                count += rewrite_slot(element, fn);
            }
            break;
        case ExprKind::ArrayRepeat:
            count += rewrite_slot(static_cast<ArrayRepeatExpr&>(expr).element, fn);
            break;
        default:
            break;
    }
    return count;
}

int rewrite_slot(ExprPtr& slot, const Rewriter& fn) {
    if (!slot) return 0;
    if (auto replacement = fn(*slot)) {
        slot = std::move(*replacement);
        return 1;
    }
    return rewrite_children(*slot, fn);
}

int rewrite_stmt(Stmt& stmt, const Rewriter& fn);

int rewrite_block(Block& block, const Rewriter& fn) {
    int count = 0;
    for (auto& stmt : block.statements) {
        count += rewrite_stmt(*stmt, fn);
    }
    return count;
}

int rewrite_stmt(Stmt& stmt, const Rewriter& fn) {
    int count = 0;
    switch (stmt.kind) {
        case StmtKind::Let:
            count += rewrite_slot(static_cast<LetStmt&>(stmt).init, fn);
            break;
        case StmtKind::Assign: {
            auto& node = static_cast<AssignStmt&>(stmt);
            count += rewrite_slot(node.place, fn);
            count += rewrite_slot(node.value, fn);
            break;
        }
        case StmtKind::Expr:
            count += rewrite_slot(static_cast<ExprStmt&>(stmt).expr, fn);
            break;
        case StmtKind::If: {
            auto& node = static_cast<IfStmt&>(stmt);
            count += rewrite_slot(node.condition, fn);
            count += rewrite_block(node.then_block, fn);
            if (node.else_block) count += rewrite_block(*node.else_block, fn);
            break;
        }
        case StmtKind::While: {
            auto& node = static_cast<WhileStmt&>(stmt);
            count += rewrite_slot(node.condition, fn);
            count += rewrite_block(node.body, fn);
            break;
        }
        case StmtKind::Return: {
            auto& node = static_cast<ReturnStmt&>(stmt);
            if (node.value) count += rewrite_slot(node.value, fn);
            break;
        }
        case StmtKind::Block:
            count += rewrite_block(static_cast<BlockStmt&>(stmt).block, fn);
            break;
        case StmtKind::Unsafe:
            count += rewrite_block(static_cast<UnsafeStmt&>(stmt).block, fn);
            break;
        case StmtKind::Become: {
            auto& node = static_cast<BecomeStmt&>(stmt);
            count += rewrite_slot(node.callee, fn);
            for (auto& arg : node.args) {
                count += rewrite_slot(arg, fn);
            }
            break;
        }
    }
    return count;
}

}  // namespace

bool for_each_block(Program& program, const std::function<bool(Block&)>& fn) {
    for (auto& function : program.functions) {
        if (for_each_block_in(function.body, fn)) return true;
    }
    return false;
}

int rewrite_exprs(Program& program, const Rewriter& fn) {
    int count = 0;
    for (auto& function : program.functions) {
        count += rewrite_block(function.body, fn);
    }
    return count;
}

int rewrite_exprs_in_block(Block& block, const Rewriter& fn) {
    return rewrite_block(block, fn);
}

int find_stmt(const Block& block, const std::function<bool(const Stmt&)>& pred,
              int start_index) {
    for (std::size_t i = static_cast<std::size_t>(start_index);
         i < block.statements.size(); ++i) {
        if (pred(*block.statements[i])) return static_cast<int>(i);
    }
    return -1;
}

const LetStmt* find_let_by_name(const Program& program, const std::string& name) {
    const LetStmt* found = nullptr;
    WalkCallbacks callbacks;
    callbacks.on_stmt = [&](const Stmt& stmt, bool) {
        if (found == nullptr && stmt.kind == StmtKind::Let &&
            static_cast<const LetStmt&>(stmt).name == name) {
            found = &static_cast<const LetStmt&>(stmt);
        }
    };
    walk_program(program, callbacks);
    return found;
}

bool stmt_mentions(const Stmt& stmt, const std::string& name) {
    bool found = false;
    WalkCallbacks callbacks;
    callbacks.on_expr = [&](const Expr& expr, bool) {
        if (expr.kind == ExprKind::VarRef &&
            static_cast<const VarRefExpr&>(expr).name == name) {
            found = true;
        }
        if (expr.kind == ExprKind::Call &&
            static_cast<const CallExpr&>(expr).callee == name) {
            found = true;
        }
    };
    callbacks.on_stmt = [&](const Stmt& inner, bool) {
        if (inner.kind == StmtKind::Let &&
            static_cast<const LetStmt&>(inner).name == name) {
            found = true;
        }
    };
    // Walk just this statement by wrapping it in a fake block view.
    switch (stmt.kind) {
        case StmtKind::Let: {
            const auto& node = static_cast<const LetStmt&>(stmt);
            if (node.name == name) return true;
            walk_expr(*node.init, callbacks, false);
            break;
        }
        case StmtKind::Assign: {
            const auto& node = static_cast<const AssignStmt&>(stmt);
            walk_expr(*node.place, callbacks, false);
            walk_expr(*node.value, callbacks, false);
            break;
        }
        case StmtKind::Expr:
            walk_expr(*static_cast<const ExprStmt&>(stmt).expr, callbacks, false);
            break;
        case StmtKind::If: {
            const auto& node = static_cast<const IfStmt&>(stmt);
            walk_expr(*node.condition, callbacks, false);
            walk_block(node.then_block, callbacks, false);
            if (node.else_block) walk_block(*node.else_block, callbacks, false);
            break;
        }
        case StmtKind::While: {
            const auto& node = static_cast<const WhileStmt&>(stmt);
            walk_expr(*node.condition, callbacks, false);
            walk_block(node.body, callbacks, false);
            break;
        }
        case StmtKind::Return: {
            const auto& node = static_cast<const ReturnStmt&>(stmt);
            if (node.value) walk_expr(*node.value, callbacks, false);
            break;
        }
        case StmtKind::Block:
            walk_block(static_cast<const BlockStmt&>(stmt).block, callbacks, false);
            break;
        case StmtKind::Unsafe:
            walk_block(static_cast<const UnsafeStmt&>(stmt).block, callbacks, false);
            break;
        case StmtKind::Become: {
            const auto& node = static_cast<const BecomeStmt&>(stmt);
            walk_expr(*node.callee, callbacks, false);
            for (const auto& arg : node.args) {
                walk_expr(*arg, callbacks, false);
            }
            break;
        }
    }
    return found;
}

bool stmt_calls(const Stmt& stmt, const std::string& callee) {
    return stmt_mentions(stmt, callee);
}

bool move_stmt(Block& block, std::size_t from, std::size_t to) {
    if (from >= block.statements.size() || to >= block.statements.size()) {
        return false;
    }
    if (from == to) return true;
    StmtPtr stmt = std::move(block.statements[from]);
    block.statements.erase(block.statements.begin() +
                           static_cast<std::ptrdiff_t>(from));
    block.statements.insert(
        block.statements.begin() + static_cast<std::ptrdiff_t>(to),
        std::move(stmt));
    return true;
}

int count_statements(const Program& program) {
    int count = 0;
    WalkCallbacks callbacks;
    callbacks.on_stmt = [&](const Stmt&, bool) { ++count; };
    walk_program(program, callbacks);
    return count;
}

}  // namespace rustbrain::analysis
