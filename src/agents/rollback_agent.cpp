#include "agents/rollback_agent.hpp"

namespace rustbrain::agents {

void RollbackAgent::observe(const std::string& code, std::size_t error_count) {
    trajectory_.push_back(error_count);
    if (!observed_ || error_count < best_errors_) {
        observed_ = true;
        best_code_ = code;
        best_errors_ = error_count;
    }
}

bool RollbackAgent::should_rollback(std::size_t latest_error_count) const {
    return observed_ && latest_error_count > best_errors_;
}

const std::string& RollbackAgent::rollback(support::SimClock& clock) {
    ++rollbacks_;
    // Reverting to the best intermediate state costs replaying the thoughts
    // since that state — proportionally cheaper than a restart-from-T0.
    clock.charge("rollback", 180.0);
    return best_code_;
}

}  // namespace rustbrain::agents
