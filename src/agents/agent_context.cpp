#include "agents/agent_context.hpp"

namespace rustbrain::agents {

llm::ChatResponse AgentContext::call_llm(const llm::PromptSpec& spec) {
    llm::ChatRequest request;
    request.temperature = temperature;
    request.sequence = sequence++;
    request.messages.push_back({llm::Role::User, spec.render()});
    llm::ChatResponse response = llm.complete(request);
    clock.charge("llm", response.latency_ms);
    emit(core::TraceEventKind::LlmCall, spec.task,
         static_cast<std::uint64_t>(response.latency_ms * 1000.0));
    return response;
}

miri::MiriReport AgentContext::verify(const std::string& source) {
    static const std::vector<std::vector<std::int64_t>> kNoInputs;
    miri::MiriLite miri;
    const miri::MiriReport report =
        miri.test_source(source, inputs != nullptr ? *inputs : kNoInputs);
    // Interpretation cost: fixed setup plus per-step execution time.
    clock.charge("miri", 120.0 + static_cast<double>(report.total_steps) * 0.01);
    emit(core::TraceEventKind::Verify, "",
         static_cast<std::uint64_t>(report.error_count()));
    return report;
}

void AgentContext::emit(core::TraceEventKind kind, const std::string& label,
                        std::uint64_t value) {
    if (trace == nullptr) return;
    core::TraceEvent event;
    event.kind = kind;
    event.label = label;
    event.value = value;
    event.clock_ms = clock.now_ms();
    trace->on_event(event);
}

}  // namespace rustbrain::agents
