#include "agents/agent_context.hpp"

namespace rustbrain::agents {

llm::ChatResponse AgentContext::call_llm(const llm::PromptSpec& spec) {
    llm::ChatRequest request;
    request.temperature = temperature;
    request.sequence = sequence++;
    request.messages.push_back({llm::Role::User, spec.render()});
    llm::ChatResponse response = llm.complete(request);
    clock.charge("llm", response.latency_ms);
    emit(core::TraceEventKind::LlmCall, spec.task,
         static_cast<std::uint64_t>(response.latency_ms * 1000.0));
    return response;
}

miri::MiriReport AgentContext::verify(const std::string& source) {
    static const std::vector<std::vector<std::int64_t>> kNoInputs;
    const verify::Oracle& verifier = verify::resolve(oracle);
    verify::VerifyOutcome outcome;
    const miri::MiriReport report = verifier.test_source(
        source, inputs != nullptr ? *inputs : kNoInputs, &outcome);
    // Modelled interpretation cost: fixed setup plus per-step execution
    // time. total_steps is part of the memoized report, so the charge is
    // identical whether the report was interpreted or served from cache.
    clock.charge("miri", 120.0 + static_cast<double>(report.total_steps) * 0.01);
    emit(core::TraceEventKind::Verify, outcome.report_cached ? "cached" : "",
         static_cast<std::uint64_t>(report.error_count()));
    if (outcome.screened) {
        // Most-recent-wins: policies read the verdict of the latest
        // verification (the candidate they are deciding about).
        if (signals != nullptr) {
            signals->screened = true;
            signals->screen_verdict = outcome.screen_verdict.kind;
            signals->screen_confidence = outcome.screen_verdict.confidence;
            signals->screen_category = outcome.screen_verdict.category;
        }
        emit(core::TraceEventKind::Screen,
             screen::verdict_kind_name(outcome.screen_verdict.kind),
             outcome.screen_verdict.ops);
    }
    return report;
}

void AgentContext::emit(core::TraceEventKind kind, const std::string& label,
                        std::uint64_t value) {
    if (trace == nullptr) return;
    core::TraceEvent event;
    event.kind = kind;
    event.label = label;
    event.value = value;
    event.clock_ms = clock.now_ms();
    trace->on_event(event);
}

}  // namespace rustbrain::agents
