#include "agents/agent_context.hpp"

namespace rustbrain::agents {

llm::ChatResponse AgentContext::call_llm(const llm::PromptSpec& spec) {
    ++llm_calls;
    llm::ChatRequest request;
    request.temperature = temperature;
    request.messages.push_back({llm::Role::User, spec.render()});
    llm::ChatResponse response = llm.complete(request);
    clock.charge("llm", response.latency_ms);
    return response;
}

miri::MiriReport AgentContext::verify(const std::string& source) {
    static const std::vector<std::vector<std::int64_t>> kNoInputs;
    miri::MiriLite miri;
    const miri::MiriReport report =
        miri.test_source(source, inputs != nullptr ? *inputs : kNoInputs);
    // Interpretation cost: fixed setup plus per-step execution time.
    clock.charge("miri", 120.0 + static_cast<double>(report.total_steps) * 0.01);
    return report;
}

}  // namespace rustbrain::agents
