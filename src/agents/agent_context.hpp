// Shared execution context for the slow-thinking agents: the model, the
// virtual clock, the verifier and the (optional) knowledge base.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kb/knowledge_base.hpp"
#include "llm/simllm.hpp"
#include "miri/mirilite.hpp"
#include "support/sim_clock.hpp"

namespace rustbrain::agents {

struct AgentContext {
    AgentContext(llm::SimLLM& model, support::SimClock& sim_clock)
        : llm(model), clock(sim_clock) {}

    llm::SimLLM& llm;
    support::SimClock& clock;
    double temperature = 0.5;
    /// Inputs of the case's semantic benchmark (for verification runs).
    const std::vector<std::vector<std::int64_t>>* inputs = nullptr;
    /// Optional knowledge base (Fig 6); nullptr disables it.
    const kb::KnowledgeBase* knowledge_base = nullptr;
    /// Identity of the problem being repaired — excluded from KB retrieval
    /// so a case never retrieves itself.
    std::string case_hint;
    /// Few-shot exemplar rules gathered by the abstract reasoning agent;
    /// fix agents attach these to their prompts.
    std::vector<std::string> exemplar_rules;
    /// Feedback-store hints from fast thinking.
    std::vector<std::string> preferred_rules;
    /// Extracted feature summary (empty when the feature stage is off).
    std::string feature_key;

    std::uint64_t llm_calls = 0;

    /// Send one chat request, charging the clock with the model's latency.
    llm::ChatResponse call_llm(const llm::PromptSpec& spec);

    /// Verify code with MiriLite, charging verification time.
    miri::MiriReport verify(const std::string& source);
};

}  // namespace rustbrain::agents
