// Shared execution context for the slow-thinking agents: the model
// backend, the virtual clock, the trace sink, the verifier and the
// (optional) knowledge base.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/thinking_policy.hpp"
#include "core/trace.hpp"
#include "kb/knowledge_base.hpp"
#include "llm/backend.hpp"
#include "miri/mirilite.hpp"
#include "support/sim_clock.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::agents {

struct AgentContext {
    AgentContext(llm::LlmBackend& model, support::SimClock& sim_clock)
        : llm(model), clock(sim_clock) {}

    llm::LlmBackend& llm;
    support::SimClock& clock;
    /// Event sink for this repair (may be null). Stages and agents report
    /// everything countable through it — see core/trace.hpp.
    core::TraceSink* trace = nullptr;
    double temperature = 0.5;
    /// Inputs of the case's semantic benchmark (for verification runs).
    const std::vector<std::vector<std::int64_t>>* inputs = nullptr;
    /// Verification oracle shared by every stage of this repair (and, via
    /// EngineBuildContext, by every worker of a sweep). Null falls back to
    /// verify::Oracle::shared_default().
    const verify::Oracle* oracle = nullptr;
    /// Optional knowledge base (Fig 6); nullptr disables it.
    const kb::KnowledgeBase* knowledge_base = nullptr;
    /// Identity of the problem being repaired — excluded from KB retrieval
    /// so a case never retrieves itself.
    std::string case_hint;
    /// Few-shot exemplar rules gathered by the abstract reasoning agent;
    /// fix agents attach these to their prompts.
    std::vector<std::string> exemplar_rules;
    /// Feedback-store hints from fast thinking.
    std::vector<std::string> preferred_rules;
    /// Extracted feature summary (empty when the feature stage is off).
    std::string feature_key;
    /// Live per-case signal block the engine's ThinkingPolicy reads (owned
    /// by the engine; may be null). The stages keep it current: fast
    /// thinking fills the ranking/feature fields, slow thinking the
    /// attempt-loop and trajectory fields.
    core::PolicySignals* signals = nullptr;

    /// Calls issued so far in this backend session; stamped into each
    /// request as its sequence number (part of the call's deterministic
    /// identity — see llm/backend.hpp).
    std::uint64_t sequence = 0;

    /// Send one chat request, charging the clock with the model's latency
    /// and emitting an LlmCall trace event.
    llm::ChatResponse call_llm(const llm::PromptSpec& spec);

    /// Verify code through the Oracle, charging verification time and
    /// emitting a Verify trace event with the error count. Virtual time is
    /// derived from the report (which is memoized bit-identically), so a
    /// cache hit charges exactly what the uncached run would have — the
    /// cache can never perturb results. The event label records where the
    /// answer came from ("" = interpreted, "cached" = report cache).
    miri::MiriReport verify(const std::string& source);

    /// Emit one trace event stamped with the current virtual time (no-op
    /// without a sink; never charges the clock).
    void emit(core::TraceEventKind kind, const std::string& label = "",
              std::uint64_t value = 0);
};

}  // namespace rustbrain::agents
