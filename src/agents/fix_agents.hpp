// The three error-fixing agents (paper §III-B1, prompts in Fig 4):
//   * safe-replacement agent — "Find Safe API with same functionality";
//   * assertion agent — "Pre-assertion added before UB is possible";
//   * modification agent — "Keep functionality and semantics, avoid UBs by
//     modification".
//
// Each agent executes one SolutionStep (a named rule of its family) by
// prompting the LLM to apply it; the returned code is whatever the model
// produced — possibly corrupted, possibly unchanged.
#pragma once

#include <optional>
#include <string>

#include "agents/agent_context.hpp"
#include "llm/rules.hpp"
#include "miri/finding.hpp"

namespace rustbrain::agents {

struct FixOutcome {
    std::string code;        // candidate program source after the step
    bool model_changed_code = false;
    std::string note;        // model-reported note (diagnostic only)
};

class FixAgent {
  public:
    explicit FixAgent(llm::RuleFamily family);

    [[nodiscard]] llm::RuleFamily family() const { return family_; }
    [[nodiscard]] const char* name() const;

    /// Execute one step: ask the model to apply `rule_id` to `code` given
    /// the finding. Never fails — a confused model returns the input.
    FixOutcome run(const std::string& code, const miri::Finding& finding,
                   const std::string& rule_id, AgentContext& context) const;

  private:
    llm::RuleFamily family_;
};

/// The agent responsible for a rule (by its family); falls back to the
/// modification agent for unknown rules.
const FixAgent& agent_for_rule(const std::string& rule_id);
const FixAgent& safe_replacement_agent();
const FixAgent& assertion_agent();
const FixAgent& modification_agent();

}  // namespace rustbrain::agents
