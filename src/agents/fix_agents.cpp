#include "agents/fix_agents.hpp"

#include "llm/simllm.hpp"

namespace rustbrain::agents {

FixAgent::FixAgent(llm::RuleFamily family) : family_(family) {}

const char* FixAgent::name() const {
    switch (family_) {
        case llm::RuleFamily::SafeReplacement: return "safe-replacement-agent";
        case llm::RuleFamily::Assertion: return "assertion-agent";
        case llm::RuleFamily::Modification: return "modification-agent";
    }
    return "?";
}

FixOutcome FixAgent::run(const std::string& code, const miri::Finding& finding,
                         const std::string& rule_id, AgentContext& context) const {
    llm::PromptSpec spec;
    spec.task = "apply_rule";
    spec.fields["agent"] = name();
    spec.fields["rule"] = rule_id;
    spec.fields["error_category"] = miri::ub_category_label(finding.category);
    spec.fields["error_message"] = finding.message;
    if (!context.feature_key.empty()) {
        spec.fields["feature_key"] = context.feature_key;
    }
    spec.exemplar_rules = context.exemplar_rules;
    spec.preferred_rules = context.preferred_rules;
    spec.code = code;

    const llm::ChatResponse response = context.call_llm(spec);

    FixOutcome outcome;
    outcome.code = llm::parse_code_block(response.content);
    const std::size_t note_end = response.content.find('\n');
    outcome.note = note_end == std::string::npos
                       ? response.content
                       : response.content.substr(0, note_end);
    outcome.model_changed_code = outcome.code != code;
    if (outcome.code.empty()) {
        outcome.code = code;  // defensive: a silent model changes nothing
        outcome.model_changed_code = false;
    }
    return outcome;
}

const FixAgent& safe_replacement_agent() {
    static const FixAgent agent(llm::RuleFamily::SafeReplacement);
    return agent;
}

const FixAgent& assertion_agent() {
    static const FixAgent agent(llm::RuleFamily::Assertion);
    return agent;
}

const FixAgent& modification_agent() {
    static const FixAgent agent(llm::RuleFamily::Modification);
    return agent;
}

const FixAgent& agent_for_rule(const std::string& rule_id) {
    const llm::RepairRule* rule = llm::find_rule(rule_id);
    if (rule == nullptr) {
        return modification_agent();
    }
    switch (rule->family) {
        case llm::RuleFamily::SafeReplacement: return safe_replacement_agent();
        case llm::RuleFamily::Assertion: return assertion_agent();
        case llm::RuleFamily::Modification: return modification_agent();
    }
    return modification_agent();
}

}  // namespace rustbrain::agents
