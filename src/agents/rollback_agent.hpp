// Adaptive rollback agent (paper §III-B2, Fig 5b).
//
// Tracks the best (fewest-findings) program state seen during slow-thinking
// iteration. When a step regresses — hallucination increasing the error
// count — the process rolls back to the *best intermediate* state instead of
// the initial one, keeping valuable partial corrections at lower cost
// (c * T_{n-a} instead of c * T_n).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/sim_clock.hpp"

namespace rustbrain::agents {

class RollbackAgent {
  public:
    /// Record a new state and its MiriLite error count. The first observed
    /// state becomes the initial baseline.
    void observe(const std::string& code, std::size_t error_count);

    /// Adaptive policy: roll back iff the latest count exceeds the best seen.
    [[nodiscard]] bool should_rollback(std::size_t latest_error_count) const;

    /// Revert to the best state, charging the rollback's thought-replay
    /// cost to the clock. Returns the best code.
    const std::string& rollback(support::SimClock& clock);

    [[nodiscard]] const std::string& best_code() const { return best_code_; }
    [[nodiscard]] std::size_t best_errors() const { return best_errors_; }
    [[nodiscard]] int rollbacks_performed() const { return rollbacks_; }
    [[nodiscard]] const std::vector<std::size_t>& trajectory() const {
        return trajectory_;
    }
    [[nodiscard]] bool has_observation() const { return observed_; }

  private:
    bool observed_ = false;
    std::string best_code_;
    std::size_t best_errors_ = 0;
    std::vector<std::size_t> trajectory_;
    int rollbacks_ = 0;
};

}  // namespace rustbrain::agents
