#include "agents/abstract_reasoning_agent.hpp"

#include <algorithm>

#include "analysis/prune.hpp"
#include "analysis/vectorize.hpp"
#include "kb/seed.hpp"
#include "llm/simllm.hpp"
#include "lang/parser.hpp"

namespace rustbrain::agents {

ReasoningResult AbstractReasoningAgent::consult(const std::string& code,
                                                miri::UbCategory category,
                                                AgentContext& context) const {
    ReasoningResult result;
    if (context.knowledge_base == nullptr || context.knowledge_base->empty()) {
        return result;
    }

    // 1. LLM-based AST extraction (the paper argues syn's tree is too noisy
    //    and semantically flat; the model's reconstruction is the input).
    llm::PromptSpec spec;
    spec.task = "extract_ast";
    spec.code = code;
    const llm::ChatResponse response = context.call_llm(spec);
    const std::string ast_source = llm::parse_code_block(response.content);
    auto program = lang::try_parse(ast_source);
    if (!program) {
        // Extraction noise produced garbage — fall back to the raw code.
        program = lang::try_parse(code);
        if (!program) return result;
    }

    // 2. Algorithm 1 pruning + vectorization (whole-AST fallback when the
    //    program has little unsafe code to anchor the pruning).
    analysis::PruneStats stats;
    analysis::prune_ast(*program, &stats);
    result.retained_fraction = stats.retained_fraction();
    const analysis::AstVector probe =
        analysis::vectorize(kb::prune_or_whole(*program));

    // 3. Similarity search scoped to the error category; the clock pays per
    //    entry scanned.
    context.clock.charge(
        "kb", 2200.0 + 24.0 * static_cast<double>(context.knowledge_base->size()));
    const auto hits = context.knowledge_base->query(probe, 3, min_similarity_,
                                                    context.case_hint, category);
    result.hits = hits.size();
    for (const kb::KbHit& hit : hits) {
        result.best_similarity = std::max(result.best_similarity, hit.similarity);
        for (const std::string& rule : hit.entry->rule_ids) {
            if (std::find(result.exemplar_rules.begin(), result.exemplar_rules.end(),
                          rule) == result.exemplar_rules.end()) {
                result.exemplar_rules.push_back(rule);
            }
        }
    }
    return result;
}

}  // namespace rustbrain::agents
