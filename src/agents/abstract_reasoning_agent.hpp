// Abstract reasoning agent (paper §III-B3, Fig 6).
//
// Pipeline: ask the LLM to extract the AST (instead of a syn-style parser) →
// prune irrelevant nodes with Algorithm 1 → vectorize → query the knowledge
// base by cosine similarity → return the retrieved exemplar rules, which the
// fix agents splice into their prompts as few-shot guidance.
#pragma once

#include <string>
#include <vector>

#include "agents/agent_context.hpp"

namespace rustbrain::agents {

struct ReasoningResult {
    std::vector<std::string> exemplar_rules;  // best-first, deduplicated
    double best_similarity = 0.0;
    std::size_t hits = 0;
    /// Fraction of AST nodes kept by Algorithm 1 (diagnostic).
    double retained_fraction = 1.0;
};

class AbstractReasoningAgent {
  public:
    /// Minimum cosine similarity for a KB hit to count as an exemplar.
    explicit AbstractReasoningAgent(double min_similarity = 0.60)
        : min_similarity_(min_similarity) {}

    /// `category` scopes retrieval to entries for the same error class.
    ReasoningResult consult(const std::string& code, miri::UbCategory category,
                            AgentContext& context) const;

  private:
    double min_similarity_;
};

}  // namespace rustbrain::agents
