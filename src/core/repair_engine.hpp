// RepairEngine — the uniform interface every repair strategy implements.
//
// The paper's evaluation is "run N repair strategies over one corpus and
// compare"; this is the seam that makes a strategy a value. RustBrain and
// the three baselines (StandaloneLlmRepair, FixedPipelineRepair,
// ExpertModelRepair) all implement repair()/name()/config_summary(), are
// constructible by string id through core::EngineRegistry, talk to the
// model exclusively through an injected llm::LlmBackend, and report their
// statistics through core::TraceSink events.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "dataset/case.hpp"

namespace rustbrain::core {

struct CaseResult {
    std::string case_id;
    bool pass = false;   // repaired code passes MiriLite
    bool exec = false;   // ... and matches the reference semantics
    double time_ms = 0.0;  // virtual repair time
    /// Per-category virtual-time charges (the case's SimClock breakdown);
    /// BatchRunner folds these into an aggregate clock in case-index order.
    std::map<std::string, double> time_breakdown;
    int solutions_generated = 0;
    int steps_executed = 0;
    int rollbacks = 0;
    std::uint64_t llm_calls = 0;
    bool kb_consulted = false;
    bool kb_skipped_by_feedback = false;
    /// ThinkingPolicy decision tallies (core/thinking_policy.hpp): every
    /// switch decision, plus the escalation / early-stop / skipped-attempt
    /// subsets. Under the default `paper` policy each UB case records
    /// exactly one escalation and nothing else.
    int thinking_switches = 0;
    int escalations = 0;
    int early_stops = 0;
    int attempts_skipped = 0;
    /// Static pre-screening tallies (screen/screen.hpp). Observability
    /// only: these are the one set of CaseResult fields that legitimately
    /// differ screen-on vs screen-off, so bit-identity comparisons must
    /// (and do) exclude them.
    int screens = 0;
    int screen_proven_safe = 0;
    int screen_likely_ub = 0;
    int screen_unknown = 0;
    std::vector<std::size_t> error_trajectory;
    std::string winning_rule;
    std::string final_source;
};

class RepairEngine {
  public:
    virtual ~RepairEngine() = default;

    /// Repair one corpus case end to end. Deterministic: the result is a
    /// pure function of (engine configuration, case) — never of prior
    /// repairs, scheduling, or wall-clock (engines with a FeedbackStore
    /// additionally depend on the store's state at call time).
    virtual CaseResult repair(const dataset::UbCase& ub_case) = 0;

    /// The engine's registry id ("rustbrain", "standalone", ...).
    [[nodiscard]] virtual std::string name() const = 0;

    /// One-line description of the live configuration, e.g.
    /// "model=gpt-4 temperature=0.5 knowledge=on seed=42".
    [[nodiscard]] virtual std::string config_summary() const = 0;

    /// Attach an observer for per-case trace events (may be null). The
    /// engine always keeps its own TraceStats; the sink sees the same
    /// event stream. Attaching a sink never changes results.
    void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }
    [[nodiscard]] TraceSink* trace_sink() const { return trace_sink_; }

  protected:
    TraceSink* trace_sink_ = nullptr;
};

}  // namespace rustbrain::core
