// Fast thinking (paper Fig 2, stages F1-F2): Miri detection, intuitive
// feature extraction, and rapid multi-solution generation driven by pattern
// recognition plus feedback hints.
#pragma once

#include <string>
#include <vector>

#include "agents/agent_context.hpp"
#include "core/feedback.hpp"
#include "miri/finding.hpp"

namespace rustbrain::core {

/// One candidate repair solution: an ordered list of rule steps. (Slow
/// thinking decomposes, executes and verifies them.)
struct Solution {
    std::vector<std::string> rule_ids;
};

struct FastThinkingResult {
    bool already_clean = false;          // F1 said "pass"
    miri::Finding finding;               // primary finding driving the repair
    std::string feature_key;             // extracted feature signature
    std::vector<Solution> solutions;     // generation order = model ranking
    std::size_t initial_error_count = 0;
};

class FastThinking {
  public:
    FastThinking(bool use_feature_extraction, int max_solutions)
        : use_feature_extraction_(use_feature_extraction),
          max_solutions_(max_solutions) {}

    /// Run F1 (detection) + F2 (feature extraction, solution generation).
    /// `difficulty` calibrates competence penalties; `feedback` may be null.
    FastThinkingResult run(const std::string& source, int difficulty,
                           const FeedbackStore* feedback,
                           agents::AgentContext& context) const;

  private:
    bool use_feature_extraction_;
    int max_solutions_;
};

}  // namespace rustbrain::core
