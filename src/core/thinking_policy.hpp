// ThinkingPolicy — the fast↔slow switch as a pluggable strategy.
//
// The paper's core contribution is the *orchestration* of fast and slow
// thinking; this seam extracts that orchestration out of RustBrain::repair
// into a value the registry can build by string id, exactly the way
// core::EngineRegistry builds engines and gen::GeneratorRegistry builds
// case generators. A policy observes per-attempt signals (the fast-thinking
// solution ranking, FeedbackStore confidence for the extracted feature key,
// the per-step verification error trajectory, the accumulated overhead
// triplets) and answers the orchestrator's questions: run fast only or
// escalate to slow thinking, which solutions to attempt in what order,
// whether to skip or stop before an attempt, how many refinement steps to
// grant, and whether to keep executing after a success (ablation).
//
// Every decision hook defaults to the paper's fixed behavior, so the
// `paper` policy (the default everywhere) is bit-identical to the
// pre-policy orchestrator — asserted against pre-refactor goldens in
// tests/core_policy_test.cpp. Policies are stateless and const: every
// signal they act on arrives through PolicySignals, so one policy instance
// can serve any number of cases (and BatchRunner workers) without
// perturbing determinism.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/feedback.hpp"
#include "miri/finding.hpp"
#include "screen/screen.hpp"
#include "support/options.hpp"

namespace rustbrain::core {

/// The orchestrator's first question once fast thinking has produced a
/// ranking: trust the intuition (apply the top solution once, no
/// refinement loop, no knowledge-base consultation) or escalate into the
/// full slow-thinking loop.
enum class ThinkingMode {
    FastOnly,
    Escalate,
};

/// Per-attempt gate, asked before each planned solution attempt.
enum class AttemptAction {
    Proceed,  // execute this attempt
    Skip,     // drop this attempt, move to the next planned one
    Stop,     // abandon the remaining attempts entirely
};

/// Everything a policy may observe, kept current by the stages as the
/// repair progresses (agents::AgentContext::signals points here).
struct PolicySignals {
    // Fast-thinking output (F1 + F2).
    std::size_t solution_count = 0;       // size of the fast ranking
    std::size_t initial_error_count = 0;  // F1's error count
    std::string feature_key;              // extracted feature signature

    // Feedback-store signals for feature_key (false/0 without a store).
    bool feedback_confident = false;  // FeedbackStore::is_confident
    double feedback_score = 0.0;      // best rule score for the key

    // Static pre-screening verdict from the Oracle's screening tier,
    // stamped by AgentContext::verify on every verification (most recent
    // wins; screened stays false when screening is off or the source never
    // reached the screener).
    bool screened = false;
    screen::VerdictKind screen_verdict = screen::VerdictKind::Unknown;
    double screen_confidence = 0.0;
    // Pinned category; meaningful only when screen_verdict == LikelyUB.
    miri::UbCategory screen_category = miri::UbCategory::Panic;

    // UB categories each fast-thinking solution repairs, parallel to the
    // ranking (filled from the rule library by fast thinking; empty inner
    // vectors for rules without category tags).
    std::vector<std::vector<miri::UbCategory>> solution_categories;

    // Attempt-loop position.
    std::size_t attempt_index = 0;    // 0-based position in the plan
    std::size_t attempts_planned = 0;

    // Trajectories accumulated so far (may be null before slow thinking).
    const std::vector<std::size_t>* error_trajectory = nullptr;
    const std::vector<EvalTriplet>* attempt_triplets = nullptr;

    bool success_found = false;    // an acceptable repair already exists
    bool regression_seen = false;  // any step verified worse than initial
    double elapsed_ms = 0.0;       // virtual clock at the decision point
};

/// A switch strategy. All hooks are const (policies are stateless) and
/// every default reproduces the paper's fixed order, so subclasses only
/// override the decisions they actually change.
class ThinkingPolicy {
  public:
    virtual ~ThinkingPolicy() = default;

    /// Registry id ("paper", "feedback-guided", ...).
    [[nodiscard]] virtual std::string id() const = 0;

    /// Live knob values as "k=v k=v" ("" when the policy has none).
    [[nodiscard]] virtual std::string summary() const { return ""; }

    /// "id" or "id(k=v ...)" — what config_summary prints.
    [[nodiscard]] std::string descriptor() const;

    /// Asked once per case, after fast thinking found UB.
    [[nodiscard]] virtual ThinkingMode choose_mode(
        const PolicySignals& signals) const {
        (void)signals;
        return ThinkingMode::Escalate;
    }

    /// Asked after a FastOnly pass failed to produce an acceptable repair:
    /// escalate into the full slow loop after all? (signals.regression_seen
    /// reports whether the fast attempt made the error count worse.)
    [[nodiscard]] virtual bool escalate_on_failure(
        const PolicySignals& signals) const {
        (void)signals;
        return false;
    }

    /// Order in which to attempt the fast-thinking solutions, as indices
    /// into the ranking. Returning fewer indices skips the rest; the
    /// default is the model's ranking order, unabridged.
    [[nodiscard]] virtual std::vector<std::size_t> plan_attempts(
        const PolicySignals& signals) const;

    /// Asked before each planned attempt (Escalate mode only).
    [[nodiscard]] virtual AttemptAction gate_attempt(
        const PolicySignals& signals) const {
        (void)signals;
        return AttemptAction::Proceed;
    }

    /// Refinement steps granted for the next attempt. `configured_max` is
    /// the engine's max_steps_per_solution; the default grants exactly that.
    [[nodiscard]] virtual int refinement_steps(const PolicySignals& signals,
                                               int configured_max) const {
        (void)signals;
        return configured_max;
    }

    /// After an acceptable repair was found: keep executing the remaining
    /// attempts anyway? (The slow-all ablation measures what stopping
    /// early saves; the winner stays the first acceptable repair.)
    [[nodiscard]] virtual bool continue_after_success(
        const PolicySignals& signals) const {
        (void)signals;
        return false;
    }
};

/// The paper's fixed switch, shared: fast always generates, slow executes
/// every solution in ranking order, first acceptable repair wins.
const ThinkingPolicy& paper_thinking_policy();

/// PolicyRegistry — build any switch strategy from a string id + option
/// map, mirroring core::EngineRegistry. Unknown ids and unknown option
/// keys both throw std::invalid_argument with a message listing what IS
/// available, so a typo in a sweep config fails loudly instead of
/// silently running the default switch.
class PolicyRegistry {
  public:
    using Builder = std::function<std::shared_ptr<const ThinkingPolicy>(
        const support::OptionMap& options)>;

    struct Entry {
        std::string id;
        std::string description;
        Builder build;
    };

    /// Register a policy; throws std::invalid_argument on a duplicate id.
    void add(Entry entry);

    [[nodiscard]] bool contains(const std::string& id) const;
    [[nodiscard]] const Entry* find(const std::string& id) const;
    [[nodiscard]] std::vector<std::string> ids() const;  // sorted
    /// "id — description" lines, one per policy (for --policy usage text).
    [[nodiscard]] std::string help() const;

    /// Build a policy by id. Throws std::invalid_argument listing the
    /// available ids when `id` is unknown, or naming the offending key when
    /// `options` contains one the policy does not understand.
    [[nodiscard]] std::shared_ptr<const ThinkingPolicy> build(
        const std::string& id, const support::OptionMap& options = {}) const;

    /// The six built-in strategies: paper (default), feedback-guided,
    /// screened, budget, fast-only, slow-all.
    static const PolicyRegistry& builtin();

  private:
    std::map<std::string, Entry> entries_;
};

/// Parse a policy spec — "id", "id,k=v,...", or "id;k=v;..." (';' lets the
/// spec travel inside an engine option map, whose entries are themselves
/// comma-separated: "policy=budget;ms=1500"). Empty spec means "paper".
/// Throws std::invalid_argument on unknown ids, unknown knobs, or junk.
std::shared_ptr<const ThinkingPolicy> parse_policy_spec(const std::string& spec);

/// Store a CLI policy spec ("id" or "id,k=v,...") as the single `policy`
/// entry of an engine option map: the spec's own commas become ';' so it
/// survives the map's comma-separated syntax (the --policy flag the
/// examples share). Validation happens when the engine is built.
void set_policy_option(support::OptionMap& options, const std::string& spec);

}  // namespace rustbrain::core
