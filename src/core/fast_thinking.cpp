#include "core/fast_thinking.hpp"

#include "llm/rules.hpp"
#include "llm/simllm.hpp"
#include "support/strings.hpp"

namespace rustbrain::core {

FastThinkingResult FastThinking::run(const std::string& source, int difficulty,
                                     const FeedbackStore* feedback,
                                     agents::AgentContext& context) const {
    FastThinkingResult result;
    context.emit(TraceEventKind::StageEnter, "fast_thinking");

    // F1: Miri detection. Clean programs terminate the pipeline.
    const miri::MiriReport report = context.verify(source);
    if (report.passed()) {
        result.already_clean = true;
        context.emit(TraceEventKind::StageExit, "fast_thinking");
        return result;
    }
    result.finding = report.findings.front();
    result.initial_error_count = report.error_count();

    // F2a: feature extraction through the model (broad-knowledge pass).
    if (use_feature_extraction_) {
        llm::PromptSpec spec;
        spec.task = "extract_features";
        spec.fields["error_category"] =
            miri::ub_category_label(result.finding.category);
        spec.fields["error_message"] = result.finding.message;
        spec.code = source;
        const llm::ChatResponse response = context.call_llm(spec);
        for (const auto& line : support::split(response.content, '\n')) {
            if (support::starts_with(line, "feature_key: ")) {
                result.feature_key = line.substr(13);
            }
        }
        context.feature_key = result.feature_key;
    }

    // F2b: feedback hints — previously validated solutions for this error
    // signature are handed to the model as preferred rules.
    if (feedback != nullptr && !result.feature_key.empty()) {
        context.preferred_rules =
            feedback->preferred_rules(result.feature_key);
    }

    // F2c: rapid multi-solution generation.
    llm::PromptSpec spec;
    spec.task = "generate_solutions";
    spec.fields["error_category"] =
        miri::ub_category_label(result.finding.category);
    spec.fields["error_message"] = result.finding.message;
    spec.fields["count"] = std::to_string(max_solutions_);
    spec.fields["difficulty"] = std::to_string(difficulty);
    if (!result.feature_key.empty()) {
        spec.fields["feature_key"] = result.feature_key;
    }
    spec.exemplar_rules = context.exemplar_rules;
    spec.preferred_rules = context.preferred_rules;
    spec.code = source;
    const llm::ChatResponse response = context.call_llm(spec);

    // Distinct rules become separate solutions (generation order preserved);
    // repeats of an earlier rule are dropped.
    std::vector<std::string> seen;
    for (const std::string& rule_id :
         llm::parse_solution_lines(response.content)) {
        bool duplicate = false;
        for (const auto& prior : seen) {
            if (prior == rule_id) duplicate = true;
        }
        if (duplicate) continue;
        seen.push_back(rule_id);
        Solution solution;
        solution.rule_ids.push_back(rule_id);
        result.solutions.push_back(std::move(solution));
    }
    context.emit(TraceEventKind::SolutionsGenerated, "",
                 static_cast<std::uint64_t>(result.solutions.size()));
    context.emit(TraceEventKind::StageExit, "fast_thinking");

    // Expose the ranking to the thinking policy (a KB-sharpened
    // regeneration overwrites the first pass, like the reported count).
    if (context.signals != nullptr) {
        context.signals->solution_count = result.solutions.size();
        context.signals->initial_error_count = result.initial_error_count;
        context.signals->feature_key = result.feature_key;
        // Category affinity of each ranked solution, for policies that
        // reorder attempts when a screening verdict pins the category.
        context.signals->solution_categories.clear();
        for (const Solution& solution : result.solutions) {
            std::vector<miri::UbCategory> categories;
            for (const std::string& rule_id : solution.rule_ids) {
                if (const llm::RepairRule* rule = llm::find_rule(rule_id)) {
                    categories.insert(categories.end(),
                                      rule->categories.begin(),
                                      rule->categories.end());
                }
            }
            context.signals->solution_categories.push_back(
                std::move(categories));
        }
    }
    return result;
}

}  // namespace rustbrain::core
