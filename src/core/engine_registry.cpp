#include "core/engine_registry.hpp"

#include <stdexcept>
#include <utility>

#include "baselines/expert_model.hpp"
#include "baselines/fixed_pipeline.hpp"
#include "baselines/standalone_llm.hpp"
#include "core/rustbrain.hpp"

namespace rustbrain::core {

// ---------------------------------------------------------------------------
// EngineOptions
// ---------------------------------------------------------------------------

EngineOptions EngineOptions::parse(const std::string& spec) {
    EngineOptions options;
    options.values = support::OptionMap::parse(spec).values;
    return options;
}

// ---------------------------------------------------------------------------
// EngineRegistry
// ---------------------------------------------------------------------------

void EngineRegistry::add(Entry entry) {
    if (entries_.count(entry.id) != 0) {
        throw std::invalid_argument("duplicate engine id: " + entry.id);
    }
    entries_.emplace(entry.id, std::move(entry));
}

bool EngineRegistry::contains(const std::string& id) const {
    return entries_.count(id) != 0;
}

const EngineRegistry::Entry* EngineRegistry::find(const std::string& id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> EngineRegistry::ids() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) out.push_back(id);
    return out;
}

std::string EngineRegistry::help() const {
    std::string out;
    for (const auto& [id, entry] : entries_) {
        out += "  " + id + " — " + entry.description + "\n";
    }
    return out;
}

std::unique_ptr<RepairEngine> EngineRegistry::build(
    const std::string& id, const EngineOptions& options,
    const EngineBuildContext& context) const {
    const Entry* entry = find(id);
    if (entry == nullptr) {
        std::string message = "unknown engine id '" + id + "'; available:";
        for (const std::string& known : ids()) message += ' ' + known;
        throw std::invalid_argument(message);
    }
    std::unique_ptr<RepairEngine> engine = entry->build(options, context);
    engine->set_trace_sink(context.trace);
    return engine;
}

namespace {

std::unique_ptr<RepairEngine> build_rustbrain(const EngineOptions& options,
                                              const EngineBuildContext& context) {
    options.check_known({"model", "temperature", "seed", "knowledge", "feedback",
                         "rollback", "features", "max_solutions", "max_steps",
                         "judge_error", "policy"});
    RustBrainConfig config;
    config.model = options.get("model", config.model);
    config.temperature = options.get_double("temperature", config.temperature);
    config.seed = options.get_u64("seed", config.seed);
    config.use_knowledge_base =
        options.get_bool("knowledge", config.use_knowledge_base);
    config.use_feedback = options.get_bool("feedback", config.use_feedback);
    config.use_adaptive_rollback =
        options.get_bool("rollback", config.use_adaptive_rollback);
    config.use_feature_extraction =
        options.get_bool("features", config.use_feature_extraction);
    config.max_solutions = options.get_int("max_solutions", config.max_solutions);
    config.max_steps_per_solution =
        options.get_int("max_steps", config.max_steps_per_solution);
    config.internal_judge_error =
        options.get_double("judge_error", config.internal_judge_error);
    config.policy = options.get("policy", config.policy);
    return std::make_unique<RustBrain>(
        config, config.use_knowledge_base ? context.knowledge_base : nullptr,
        config.use_feedback ? context.feedback : nullptr,
        context.backend_factory, context.oracle);
}

std::unique_ptr<RepairEngine> build_standalone(const EngineOptions& options,
                                               const EngineBuildContext& context) {
    options.check_known({"model", "temperature", "seed", "attempts", "policy"});
    baselines::StandaloneConfig config;
    config.model = options.get("model", config.model);
    config.temperature = options.get_double("temperature", config.temperature);
    config.attempts = options.get_int("attempts", config.attempts);
    config.seed = options.get_u64("seed", config.seed);
    config.policy = options.get("policy", config.policy);
    return std::make_unique<baselines::StandaloneLlmRepair>(
        config, context.backend_factory, context.oracle);
}

std::unique_ptr<RepairEngine> build_fixed_pipeline(
    const EngineOptions& options, const EngineBuildContext& context) {
    options.check_known({"model", "temperature", "seed", "max_iterations",
                         "policy"});
    baselines::FixedPipelineConfig config;
    config.model = options.get("model", config.model);
    config.temperature = options.get_double("temperature", config.temperature);
    config.max_iterations =
        options.get_int("max_iterations", config.max_iterations);
    config.seed = options.get_u64("seed", config.seed);
    config.policy = options.get("policy", config.policy);
    return std::make_unique<baselines::FixedPipelineRepair>(
        config, context.backend_factory, context.oracle);
}

std::unique_ptr<RepairEngine> build_expert(const EngineOptions& options,
                                           const EngineBuildContext& context) {
    (void)context;
    options.check_known({"seed", "policy"});
    return std::make_unique<baselines::ExpertModelRepair>(
        options.get_u64("seed", 42), options.get("policy", "paper"));
}

}  // namespace

const EngineRegistry& EngineRegistry::builtin() {
    static const EngineRegistry registry = [] {
        EngineRegistry r;
        r.add({"rustbrain",
               "fast/slow thinking with agents, knowledge base and feedback "
               "(the paper's framework)",
               build_rustbrain});
        r.add({"standalone",
               "bare model, one candidate per attempt, no scaffolding "
               "(Figs 8/9 base columns)",
               build_standalone});
        r.add({"fixed-pipeline",
               "RustAssistant-style fixed step sequence with restart-from-T0 "
               "rollback (Fig 12)",
               build_fixed_pipeline});
        r.add({"expert",
               "calibrated human-expert repair times, always correct "
               "(Table I)",
               build_expert});
        return r;
    }();
    return registry;
}

}  // namespace rustbrain::core
