// RustBrain — the paper's primary contribution, assembled.
//
// Orchestrates one repair: fast thinking (detect, extract features,
// generate candidate solutions), the abstract reasoning agent's
// knowledge-base consultation, slow thinking (decompose, execute with fix
// agents, verify, adaptively roll back), and the feedback loop that feeds
// evaluation triplets back into future fast-thinking runs.
//
// Every stochastic choice derives from `config.seed` + the case id, so whole
// experiment sweeps are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/fast_thinking.hpp"
#include "core/feedback.hpp"
#include "core/slow_thinking.hpp"
#include "dataset/case.hpp"
#include "kb/knowledge_base.hpp"

namespace rustbrain::core {

struct RustBrainConfig {
    std::string model = "gpt-4";
    double temperature = 0.5;
    bool use_knowledge_base = true;
    bool use_feedback = true;
    bool use_adaptive_rollback = true;
    bool use_feature_extraction = true;
    int max_solutions = 6;
    int max_steps_per_solution = 3;
    /// Probability that RustBrain's *internal* acceptability judgment
    /// wrongly approves a semantically-divergent fix (the paper's §II-A
    /// benchmark-subjectivity caveat: the framework cannot check semantics
    /// perfectly mid-loop). The harness's exec metric is always exact —
    /// this only controls when the pipeline stops refining.
    double internal_judge_error = 0.70;
    std::uint64_t seed = 42;
};

struct CaseResult {
    std::string case_id;
    bool pass = false;   // repaired code passes MiriLite
    bool exec = false;   // ... and matches the reference semantics
    double time_ms = 0.0;  // virtual repair time
    /// Per-category virtual-time charges (the case's SimClock breakdown);
    /// BatchRunner folds these into an aggregate clock in case-index order.
    std::map<std::string, double> time_breakdown;
    int solutions_generated = 0;
    int steps_executed = 0;
    int rollbacks = 0;
    std::uint64_t llm_calls = 0;
    bool kb_consulted = false;
    bool kb_skipped_by_feedback = false;
    std::vector<std::size_t> error_trajectory;
    std::string winning_rule;
    std::string final_source;
};

class RustBrain {
  public:
    /// `knowledge_base` may be null (disables KB regardless of config);
    /// `feedback` may be null (disables the self-learning loop).
    RustBrain(RustBrainConfig config, const kb::KnowledgeBase* knowledge_base,
              FeedbackStore* feedback);

    /// Repair one corpus case end to end.
    CaseResult repair(const dataset::UbCase& ub_case);

    [[nodiscard]] const RustBrainConfig& config() const { return config_; }

  private:
    RustBrainConfig config_;
    const kb::KnowledgeBase* knowledge_base_;
    FeedbackStore* feedback_;
};

}  // namespace rustbrain::core
