// RustBrain — the paper's primary contribution, assembled.
//
// Orchestrates one repair: fast thinking (detect, extract features,
// generate candidate solutions), the abstract reasoning agent's
// knowledge-base consultation, slow thinking (decompose, execute with fix
// agents, verify, adaptively roll back), and the feedback loop that feeds
// evaluation triplets back into future fast-thinking runs.
//
// Implements core::RepairEngine; all model traffic flows through an
// injected llm::BackendFactory (default: SimLLM), and per-case statistics
// are tallied from core::TraceSink events.
//
// Every stochastic choice derives from `config.seed` + the case id, so whole
// experiment sweeps are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/fast_thinking.hpp"
#include "core/feedback.hpp"
#include "core/repair_engine.hpp"
#include "core/slow_thinking.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/case.hpp"
#include "kb/knowledge_base.hpp"
#include "llm/backend.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::core {

struct RustBrainConfig {
    std::string model = "gpt-4";
    double temperature = 0.5;
    bool use_knowledge_base = true;
    bool use_feedback = true;
    bool use_adaptive_rollback = true;
    bool use_feature_extraction = true;
    int max_solutions = 6;
    int max_steps_per_solution = 3;
    /// Probability that RustBrain's *internal* acceptability judgment
    /// wrongly approves a semantically-divergent fix (the paper's §II-A
    /// benchmark-subjectivity caveat: the framework cannot check semantics
    /// perfectly mid-loop). The harness's exec metric is always exact —
    /// this only controls when the pipeline stops refining.
    double internal_judge_error = 0.70;
    std::uint64_t seed = 42;
    /// Thinking-policy spec ("paper", "budget;ms=1500", ...) resolved
    /// through core::PolicyRegistry at construction; unknown ids and knobs
    /// throw listing what exists. "paper" reproduces the pre-policy
    /// orchestrator bit for bit.
    std::string policy = "paper";
};

class RustBrain final : public RepairEngine {
  public:
    /// `knowledge_base` may be null (disables KB regardless of config);
    /// `feedback` may be null (disables the self-learning loop);
    /// `backend_factory` may be empty (uses SimLLM); `oracle` may be null
    /// (uses verify::Oracle::shared_default()).
    RustBrain(RustBrainConfig config, const kb::KnowledgeBase* knowledge_base,
              FeedbackStore* feedback, llm::BackendFactory backend_factory = {},
              std::shared_ptr<const verify::Oracle> oracle = nullptr);

    /// Repair one corpus case end to end.
    CaseResult repair(const dataset::UbCase& ub_case) override;

    [[nodiscard]] std::string name() const override { return "rustbrain"; }
    [[nodiscard]] std::string config_summary() const override;

    [[nodiscard]] const RustBrainConfig& config() const { return config_; }
    [[nodiscard]] const ThinkingPolicy& policy() const { return *policy_; }

  private:
    [[nodiscard]] const verify::Oracle& oracle() const {
        return verify::resolve(oracle_.get());
    }

    RustBrainConfig config_;
    const kb::KnowledgeBase* knowledge_base_;
    FeedbackStore* feedback_;
    llm::BackendFactory backend_factory_;
    std::shared_ptr<const verify::Oracle> oracle_;
    std::shared_ptr<const ThinkingPolicy> policy_;
};

}  // namespace rustbrain::core
