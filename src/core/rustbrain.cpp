#include "core/rustbrain.hpp"

#include <stdexcept>

#include "agents/abstract_reasoning_agent.hpp"
#include "dataset/semantic.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace rustbrain::core {

RustBrain::RustBrain(RustBrainConfig config, const kb::KnowledgeBase* knowledge_base,
                     FeedbackStore* feedback, llm::BackendFactory backend_factory,
                     std::shared_ptr<const verify::Oracle> oracle)
    : config_(std::move(config)),
      knowledge_base_(knowledge_base),
      feedback_(feedback),
      backend_factory_(std::move(backend_factory)),
      oracle_(std::move(oracle)),
      policy_(parse_policy_spec(config_.policy)) {
    if (llm::find_profile(config_.model) == nullptr) {
        throw std::invalid_argument("unknown model profile: " + config_.model);
    }
    if (!backend_factory_) backend_factory_ = llm::sim_backend_factory();
}

std::string RustBrain::config_summary() const {
    std::string summary = "model=" + config_.model;
    summary += " temperature=" + support::format_double(config_.temperature, 2);
    summary += std::string(" knowledge=") +
               (config_.use_knowledge_base && knowledge_base_ != nullptr ? "on"
                                                                         : "off");
    summary += std::string(" feedback=") +
               (config_.use_feedback && feedback_ != nullptr ? "on" : "off");
    summary +=
        std::string(" rollback=") + (config_.use_adaptive_rollback ? "on" : "off");
    summary +=
        std::string(" features=") + (config_.use_feature_extraction ? "on" : "off");
    summary += " max_solutions=" + std::to_string(config_.max_solutions);
    summary += " policy=" + policy_->descriptor();
    summary += " seed=" + std::to_string(config_.seed);
    return summary;
}

CaseResult RustBrain::repair(const dataset::UbCase& ub_case) {
    CaseResult result;
    result.case_id = ub_case.id;

    // A fresh backend session per case, deterministically seeded.
    const auto backend =
        backend_factory_(*llm::find_profile(config_.model),
                         support::derive_seed(config_.seed, ub_case.id));
    support::SimClock clock;
    TraceStats stats;
    TraceTee tee(&stats, trace_sink_);

    const verify::Oracle& verifier = this->oracle();
    PolicySignals signals;
    agents::AgentContext context{*backend, clock};
    context.trace = &tee;
    context.temperature = config_.temperature;
    context.inputs = &ub_case.inputs;
    context.oracle = &verifier;
    context.knowledge_base =
        config_.use_knowledge_base ? knowledge_base_ : nullptr;
    context.case_hint = ub_case.id;
    context.signals = &signals;

    FastThinking fast_stage(config_.use_feature_extraction, config_.max_solutions);
    SlowThinkingOptions slow_options;
    slow_options.use_adaptive_rollback = config_.use_adaptive_rollback;
    slow_options.max_steps_per_solution = config_.max_steps_per_solution;
    slow_options.policy = policy_.get();
    SlowThinking slow_stage(slow_options);

    // --- Fast thinking (F1 + features) -------------------------------------
    FastThinkingResult fast = fast_stage.run(
        ub_case.buggy_source, ub_case.difficulty,
        config_.use_feedback ? feedback_ : nullptr, context);
    if (fast.already_clean) {
        result.pass = true;
        result.exec = true;
        result.final_source = ub_case.buggy_source;
        result.screens = stats.screens();
        result.screen_proven_safe = stats.screen_proven_safe();
        result.screen_likely_ub = stats.screen_likely_ub();
        result.screen_unknown = stats.screen_unknown();
        result.time_ms = clock.now_ms();
        result.time_breakdown = clock.breakdown();
        return result;
    }

    // --- The thinking switch ------------------------------------------------
    // Self-learning shortcut: once feedback is confident about this error
    // signature, skip the (expensive) KB lookup — the paper's reduced-KB-
    // dependence effect. The confidence also feeds the policy's signals.
    const bool feedback_confident =
        config_.use_feedback && feedback_ != nullptr &&
        !fast.feature_key.empty() && feedback_->is_confident(fast.feature_key);
    signals.feedback_confident = feedback_confident;
    signals.feedback_score =
        (config_.use_feedback && feedback_ != nullptr && !fast.feature_key.empty())
            ? feedback_->best_score(fast.feature_key)
            : 0.0;
    signals.elapsed_ms = clock.now_ms();

    const ThinkingMode mode = policy_->choose_mode(signals);
    context.emit(TraceEventKind::ThinkingSwitch,
                 mode == ThinkingMode::FastOnly ? "fast-only" : "escalate");

    // --- Abstract reasoning: knowledge-base consultation --------------------
    bool kb_skip_emitted = false;
    const auto consult_knowledge_base = [&] {
        if (context.knowledge_base != nullptr && !feedback_confident) {
            agents::AbstractReasoningAgent reasoning;
            const agents::ReasoningResult consult = reasoning.consult(
                ub_case.buggy_source, fast.finding.category, context);
            context.exemplar_rules = consult.exemplar_rules;
            context.emit(TraceEventKind::KbConsult, "",
                         static_cast<std::uint64_t>(consult.exemplar_rules.size()));
            if (!consult.exemplar_rules.empty()) {
                // Exemplars sharpen generation: regenerate solutions with them.
                fast = fast_stage.run(ub_case.buggy_source, ub_case.difficulty,
                                      config_.use_feedback ? feedback_ : nullptr,
                                      context);
            }
        } else if (feedback_confident && !kb_skip_emitted) {
            kb_skip_emitted = true;
            context.emit(TraceEventKind::KbSkip);
        }
    };

    // --- Slow thinking --------------------------------------------------
    support::Rng judge_rng(
        support::derive_seed(config_.seed, "judge:" + ub_case.id));
    const SemanticOracle oracle = [&](const std::string& candidate) {
        // Judging against the acceptability benchmark costs evaluation time.
        clock.charge("eval", 60.0);
        if (dataset::judge_semantics(candidate, ub_case, verifier)
                .acceptable()) {
            return true;
        }
        // The internal judgment is imperfect: with some probability a
        // divergent fix is approved and refinement stops (the harness still
        // scores it exec=false). Retrieved exemplars sharpen the judgment —
        // similar verified fixes give the comparison a concrete reference.
        const double error = context.exemplar_rules.empty()
                                 ? config_.internal_judge_error
                                 : config_.internal_judge_error * 0.85;
        return judge_rng.chance(error);
    };

    SlowThinkingResult slow;
    if (mode == ThinkingMode::Escalate) {
        consult_knowledge_base();
        slow = slow_stage.run(ub_case.buggy_source, fast, oracle,
                              config_.use_feedback ? feedback_ : nullptr, context,
                              ThinkingMode::Escalate);
    } else {
        // Trust the intuition: apply the top-ranked solution once. The
        // intuition arm skips abstract reasoning entirely; when feedback
        // confidence is what bought the shortcut, the skipped lookup is
        // still recorded (the paper's reduced-KB-dependence stat).
        if (feedback_confident) {
            kb_skip_emitted = true;
            context.emit(TraceEventKind::KbSkip);
        }
        // If the shortcut fails, the policy may escalate into the full
        // loop after all (the guarded fast path of feedback-guided
        // switching).
        slow = slow_stage.run(ub_case.buggy_source, fast, oracle,
                              config_.use_feedback ? feedback_ : nullptr, context,
                              ThinkingMode::FastOnly);
        if (!(slow.pass && slow.acceptable)) {
            // The stage's result was moved into `slow`; repoint the
            // trajectory signals at the live vectors before the policy
            // reads them.
            signals.error_trajectory = &slow.error_trajectory;
            signals.attempt_triplets = &slow.attempt_triplets;
            signals.elapsed_ms = clock.now_ms();
            if (policy_->escalate_on_failure(signals)) {
                context.emit(TraceEventKind::ThinkingSwitch, "escalate");
                consult_knowledge_base();
                const SlowThinkingResult full = slow_stage.run(
                    ub_case.buggy_source, fast, oracle,
                    config_.use_feedback ? feedback_ : nullptr, context,
                    ThinkingMode::Escalate);
                // Prefer the escalated outcome unless the probe already
                // found a Miri-clean fallback the full loop could not.
                if (full.pass || !slow.pass) slow = full;
            }
        }
    }

    result.pass = slow.pass;
    // The harness's exact semantic verdict (the paper's exec metric).
    result.exec =
        slow.pass && !slow.final_source.empty() &&
        dataset::judge_semantics(slow.final_source, ub_case, verifier)
            .acceptable();
    result.winning_rule = slow.winning_rule;
    result.final_source = slow.final_source;
    // Statistics come from the trace — the single source (the stages emit,
    // TraceStats tallies).
    result.solutions_generated = stats.solutions_generated();
    result.steps_executed = stats.steps_executed();
    result.rollbacks = stats.rollbacks();
    result.error_trajectory = stats.error_trajectory();
    result.llm_calls = stats.llm_calls();
    result.kb_consulted = stats.kb_consulted();
    result.kb_skipped_by_feedback = stats.kb_skipped();
    result.thinking_switches = stats.thinking_switches();
    result.escalations = stats.escalations();
    result.early_stops = stats.early_stops();
    result.attempts_skipped = stats.attempts_skipped();
    result.screens = stats.screens();
    result.screen_proven_safe = stats.screen_proven_safe();
    result.screen_likely_ub = stats.screen_likely_ub();
    result.screen_unknown = stats.screen_unknown();
    result.time_ms = clock.now_ms();
    result.time_breakdown = clock.breakdown();
    return result;
}

}  // namespace rustbrain::core
