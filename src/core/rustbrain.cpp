#include "core/rustbrain.hpp"

#include <stdexcept>

#include "agents/abstract_reasoning_agent.hpp"
#include "dataset/semantic.hpp"
#include "support/hashing.hpp"

namespace rustbrain::core {

RustBrain::RustBrain(RustBrainConfig config, const kb::KnowledgeBase* knowledge_base,
                     FeedbackStore* feedback)
    : config_(std::move(config)),
      knowledge_base_(knowledge_base),
      feedback_(feedback) {
    if (llm::find_profile(config_.model) == nullptr) {
        throw std::invalid_argument("unknown model profile: " + config_.model);
    }
}

CaseResult RustBrain::repair(const dataset::UbCase& ub_case) {
    CaseResult result;
    result.case_id = ub_case.id;

    // A fresh model conversation per case, deterministically seeded.
    llm::SimLLM sim(*llm::find_profile(config_.model),
                    support::derive_seed(config_.seed, ub_case.id));
    support::SimClock clock;

    agents::AgentContext context{sim, clock};
    context.temperature = config_.temperature;
    context.inputs = &ub_case.inputs;
    context.knowledge_base =
        config_.use_knowledge_base ? knowledge_base_ : nullptr;
    context.case_hint = ub_case.id;

    FastThinking fast_stage(config_.use_feature_extraction, config_.max_solutions);
    SlowThinkingOptions slow_options;
    slow_options.use_adaptive_rollback = config_.use_adaptive_rollback;
    slow_options.max_steps_per_solution = config_.max_steps_per_solution;
    SlowThinking slow_stage(slow_options);

    // --- Fast thinking (F1 + features) -------------------------------------
    FastThinkingResult fast = fast_stage.run(
        ub_case.buggy_source, ub_case.difficulty,
        config_.use_feedback ? feedback_ : nullptr, context);
    if (fast.already_clean) {
        result.pass = true;
        result.exec = true;
        result.final_source = ub_case.buggy_source;
        result.time_ms = clock.now_ms();
        result.time_breakdown = clock.breakdown();
        return result;
    }

    // --- Abstract reasoning: knowledge-base consultation --------------------
    // Self-learning shortcut: once feedback is confident about this error
    // signature, skip the (expensive) KB lookup — the paper's reduced-KB-
    // dependence effect.
    const bool feedback_confident =
        config_.use_feedback && feedback_ != nullptr &&
        !fast.feature_key.empty() && feedback_->is_confident(fast.feature_key);
    if (context.knowledge_base != nullptr && !feedback_confident) {
        agents::AbstractReasoningAgent reasoning;
        const agents::ReasoningResult consult = reasoning.consult(
            ub_case.buggy_source, fast.finding.category, context);
        context.exemplar_rules = consult.exemplar_rules;
        result.kb_consulted = true;
        if (!consult.exemplar_rules.empty()) {
            // Exemplars sharpen generation: regenerate solutions with them.
            fast = fast_stage.run(ub_case.buggy_source, ub_case.difficulty,
                                  config_.use_feedback ? feedback_ : nullptr,
                                  context);
        }
    } else if (feedback_confident) {
        result.kb_skipped_by_feedback = true;
    }
    result.solutions_generated = static_cast<int>(fast.solutions.size());

    // --- Slow thinking --------------------------------------------------
    support::Rng judge_rng(
        support::derive_seed(config_.seed, "judge:" + ub_case.id));
    const SemanticOracle oracle = [&](const std::string& candidate) {
        // Judging against the acceptability benchmark costs evaluation time.
        clock.charge("eval", 60.0);
        if (dataset::judge_semantics(candidate, ub_case).acceptable()) {
            return true;
        }
        // The internal judgment is imperfect: with some probability a
        // divergent fix is approved and refinement stops (the harness still
        // scores it exec=false). Retrieved exemplars sharpen the judgment —
        // similar verified fixes give the comparison a concrete reference.
        const double error = context.exemplar_rules.empty()
                                 ? config_.internal_judge_error
                                 : config_.internal_judge_error * 0.85;
        return judge_rng.chance(error);
    };
    const SlowThinkingResult slow =
        slow_stage.run(ub_case.buggy_source, fast, oracle,
                       config_.use_feedback ? feedback_ : nullptr, context);

    result.pass = slow.pass;
    // The harness's exact semantic verdict (the paper's exec metric).
    result.exec = slow.pass && !slow.final_source.empty() &&
                  dataset::judge_semantics(slow.final_source, ub_case).acceptable();
    result.steps_executed = slow.steps_executed;
    result.rollbacks = slow.rollbacks;
    result.error_trajectory = slow.error_trajectory;
    result.winning_rule = slow.winning_rule;
    result.final_source = slow.final_source;
    result.llm_calls = context.llm_calls;
    result.time_ms = clock.now_ms();
    result.time_breakdown = clock.breakdown();
    return result;
}

}  // namespace rustbrain::core
