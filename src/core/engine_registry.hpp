// EngineRegistry — build any repair engine from a string id + option map.
//
// The seam that lets BatchRunner, the benches and the examples select
// strategies declaratively: "rustbrain" / "standalone" / "fixed-pipeline" /
// "expert" plus options like "model=gpt-4,temperature=0.7,knowledge=off".
// Unknown ids and unknown option keys both throw std::invalid_argument with
// a message listing what IS available, so a typo in a sweep config fails
// loudly instead of silently running the default.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/feedback.hpp"
#include "core/repair_engine.hpp"
#include "kb/knowledge_base.hpp"
#include "llm/backend.hpp"
#include "support/options.hpp"

namespace rustbrain::verify {
class Oracle;
}  // namespace rustbrain::verify

namespace rustbrain::core {

/// String-keyed engine options ("model=gpt-4,seed=7"). The parsing and typed
/// getters live in support::OptionMap, shared with gen::GeneratorRegistry.
struct EngineOptions : support::OptionMap {
    /// Parse a "key=value,key=value" spec (empty string => no options).
    /// Throws std::invalid_argument on a malformed entry.
    static EngineOptions parse(const std::string& spec);
};

/// Everything an engine may be wired to at build time. All members are
/// optional; engines ignore what they do not use.
struct EngineBuildContext {
    const kb::KnowledgeBase* knowledge_base = nullptr;
    FeedbackStore* feedback = nullptr;
    llm::BackendFactory backend_factory;  // empty => SimLLM
    TraceSink* trace = nullptr;
    /// Verification oracle shared by every engine built from this context
    /// (BatchRunner workers included — it is thread-safe). Null =>
    /// verify::Oracle::shared_default(). Caching on or off never changes
    /// results; it is a pure performance knob.
    std::shared_ptr<const verify::Oracle> oracle;
};

class EngineRegistry {
  public:
    using Builder = std::function<std::unique_ptr<RepairEngine>(
        const EngineOptions& options, const EngineBuildContext& context)>;

    struct Entry {
        std::string id;
        std::string description;
        Builder build;
    };

    /// Register an engine; throws std::invalid_argument on a duplicate id.
    void add(Entry entry);

    [[nodiscard]] bool contains(const std::string& id) const;
    [[nodiscard]] const Entry* find(const std::string& id) const;
    [[nodiscard]] std::vector<std::string> ids() const;  // sorted
    /// "id — description" lines, one per engine (for --engine usage text).
    [[nodiscard]] std::string help() const;

    /// Build an engine by id. Throws std::invalid_argument listing the
    /// available ids when `id` is unknown, or naming the offending key when
    /// `options` contains one the engine does not understand.
    [[nodiscard]] std::unique_ptr<RepairEngine> build(
        const std::string& id, const EngineOptions& options = {},
        const EngineBuildContext& context = {}) const;

    /// The four paper engines: rustbrain, standalone, fixed-pipeline,
    /// expert. Registered eagerly (no static-initialization-order games).
    static const EngineRegistry& builtin();

  private:
    std::map<std::string, Entry> entries_;
};

}  // namespace rustbrain::core
