#include "core/slow_thinking.hpp"

#include "agents/fix_agents.hpp"
#include "agents/rollback_agent.hpp"

namespace rustbrain::core {

SlowThinkingResult SlowThinking::run(const std::string& buggy_source,
                                     const FastThinkingResult& fast,
                                     const SemanticOracle& oracle,
                                     FeedbackStore* feedback,
                                     agents::AgentContext& context) const {
    SlowThinkingResult result;
    context.emit(TraceEventKind::StageEnter, "slow_thinking");
    // Fallback candidate: passes Miri but failed the semantic benchmark.
    std::optional<std::pair<std::string, std::string>> pass_only;  // source, rule

    for (const Solution& solution : fast.solutions) {
        const double attempt_start_ms = context.clock.now_ms();
        agents::RollbackAgent rollback;
        rollback.observe(buggy_source, fast.initial_error_count);

        std::string current = buggy_source;
        bool solution_passed = false;
        bool solution_acceptable = false;

        // S1: decomposition — the solution's rules form the step sequence;
        // reasoning grants extra iterations up to the configured bound.
        std::vector<std::string> steps = solution.rule_ids;
        while (static_cast<int>(steps.size()) < options_.max_steps_per_solution &&
               !solution.rule_ids.empty()) {
            steps.push_back(solution.rule_ids.front());  // retry the strategy
        }

        for (const std::string& rule_id : steps) {
            // S2: the matching agent executes the step...
            const agents::FixAgent& agent = agents::agent_for_rule(rule_id);
            const agents::FixOutcome outcome =
                agent.run(current, fast.finding, rule_id, context);
            ++result.steps_executed;
            context.emit(TraceEventKind::StepExecuted, rule_id);

            // ...and verification measures it.
            const miri::MiriReport report = context.verify(outcome.code);
            const std::size_t errors = report.error_count();
            result.error_trajectory.push_back(errors);
            context.emit(TraceEventKind::StepVerified, rule_id, errors);
            rollback.observe(outcome.code, errors);

            if (errors == 0) {
                solution_passed = true;
                solution_acceptable = oracle(outcome.code);
                current = outcome.code;
                if (solution_acceptable) break;
                // Passes Miri but semantics diverge (often a corrupted
                // application of the right strategy). Keep it as a fallback
                // and spend the remaining iterations re-attempting the
                // strategy from the original code — the paper's "fine-tune
                // through reasoning" loop.
                if (!pass_only) {
                    pass_only = {outcome.code, rule_id};
                }
                current = buggy_source;
                continue;
            }
            if (options_.use_adaptive_rollback) {
                // "Before proceeding to the next stage, the process rolls
                // back to the optimal code state (the fewest detected
                // errors)" — strict improvements advance the baseline;
                // regressions and sideways corruption are both discarded
                // (Fig 5b). Only true regressions charge rollback cost.
                if (rollback.should_rollback(errors)) {
                    current = rollback.rollback(context.clock);
                    context.emit(TraceEventKind::Rollback, rule_id,
                                 rollback.best_errors());
                } else {
                    current = rollback.best_code();
                }
            } else {
                // Fig 5a: no rollback — hallucinated states propagate.
                current = outcome.code;
            }
        }
        result.rollbacks += rollback.rollbacks_performed();

        // S2 evaluation: the triplet for this attempt feeds back into fast
        // thinking (S3's self-learning edge).
        EvalTriplet triplet;
        triplet.accuracy = solution_passed;
        triplet.acceptability = solution_acceptable;
        triplet.overhead_ms = context.clock.now_ms() - attempt_start_ms;
        result.attempt_triplets.push_back(triplet);
        if (feedback != nullptr && !fast.feature_key.empty() &&
            !solution.rule_ids.empty()) {
            feedback->record(fast.feature_key, solution.rule_ids.front(), triplet);
        }

        if (solution_passed && solution_acceptable) {
            result.pass = true;
            result.acceptable = true;
            result.final_source = current;
            result.winning_rule = solution.rule_ids.empty()
                                      ? ""
                                      : solution.rule_ids.front();
            context.emit(TraceEventKind::StageExit, "slow_thinking");
            return result;
        }
    }

    if (pass_only) {
        result.pass = true;
        result.acceptable = false;
        result.final_source = pass_only->first;
        result.winning_rule = pass_only->second;
    } else {
        result.final_source = buggy_source;
    }
    context.emit(TraceEventKind::StageExit, "slow_thinking");
    return result;
}

}  // namespace rustbrain::core
