#include "core/slow_thinking.hpp"

#include "agents/fix_agents.hpp"
#include "agents/rollback_agent.hpp"

namespace rustbrain::core {

SlowThinkingResult SlowThinking::run(const std::string& buggy_source,
                                     const FastThinkingResult& fast,
                                     const SemanticOracle& oracle,
                                     FeedbackStore* feedback,
                                     agents::AgentContext& context,
                                     ThinkingMode mode) const {
    SlowThinkingResult result;
    context.emit(TraceEventKind::StageEnter, "slow_thinking");
    // Fallback candidate: passes Miri but failed the semantic benchmark.
    std::optional<std::pair<std::string, std::string>> pass_only;  // source, rule

    const ThinkingPolicy& policy =
        options_.policy != nullptr ? *options_.policy : paper_thinking_policy();
    // The engine owns the signal block; direct stage calls (tests) get a
    // local one seeded from the fast result.
    PolicySignals local_signals;
    PolicySignals& signals =
        context.signals != nullptr ? *context.signals : local_signals;
    if (context.signals == nullptr) {
        signals.solution_count = fast.solutions.size();
        signals.initial_error_count = fast.initial_error_count;
        signals.feature_key = fast.feature_key;
    }
    signals.error_trajectory = &result.error_trajectory;
    signals.attempt_triplets = &result.attempt_triplets;

    // The attempt plan: FastOnly trusts the intuition (top solution only);
    // Escalate asks the policy, which defaults to the full ranking order.
    std::vector<std::size_t> plan;
    if (mode == ThinkingMode::FastOnly) {
        if (!fast.solutions.empty()) plan.push_back(0);
    } else {
        signals.elapsed_ms = context.clock.now_ms();
        for (std::size_t index : policy.plan_attempts(signals)) {
            if (index < fast.solutions.size()) plan.push_back(index);
        }
    }
    signals.attempts_planned = plan.size();

    for (std::size_t k = 0; k < plan.size(); ++k) {
        signals.attempt_index = k;
        signals.elapsed_ms = context.clock.now_ms();
        int max_steps = options_.max_steps_per_solution;
        if (mode == ThinkingMode::FastOnly) {
            // The intuition arm still honors the policy's refinement grant
            // (fast-only pins it to one application; feedback-guided keeps
            // the full grant so its shortcut matches the deliberate loop's
            // first attempt).
            max_steps = policy.refinement_steps(signals, max_steps);
        } else {
            const AttemptAction action = policy.gate_attempt(signals);
            if (action == AttemptAction::Skip) {
                context.emit(TraceEventKind::ThinkingSwitch, "skip", plan[k]);
                continue;
            }
            if (action == AttemptAction::Stop) {
                context.emit(TraceEventKind::ThinkingSwitch, "stop", plan[k]);
                break;
            }
            const int granted =
                policy.refinement_steps(signals, options_.max_steps_per_solution);
            if (granted != options_.max_steps_per_solution) {
                context.emit(TraceEventKind::ThinkingSwitch, "steps",
                             static_cast<std::uint64_t>(granted < 0 ? 0 : granted));
            }
            max_steps = granted;
        }

        const Solution& solution = fast.solutions[plan[k]];
        const double attempt_start_ms = context.clock.now_ms();
        agents::RollbackAgent rollback;
        rollback.observe(buggy_source, fast.initial_error_count);

        std::string current = buggy_source;
        bool solution_passed = false;
        bool solution_acceptable = false;

        // S1: decomposition — the solution's rules form the step sequence;
        // the policy's refinement grant bounds the extra iterations.
        std::vector<std::string> steps = solution.rule_ids;
        while (static_cast<int>(steps.size()) < max_steps &&
               !solution.rule_ids.empty()) {
            steps.push_back(solution.rule_ids.front());  // retry the strategy
        }
        // Truncation below the solution's own rule count only ever comes
        // from a policy that deviated from the configured grant; when the
        // grant IS the configured maximum (the paper behavior), the step
        // list is pad-only, whatever the configured value.
        if (max_steps != options_.max_steps_per_solution &&
            static_cast<int>(steps.size()) > max_steps) {
            steps.resize(static_cast<std::size_t>(max_steps < 0 ? 0 : max_steps));
        }

        for (const std::string& rule_id : steps) {
            // S2: the matching agent executes the step...
            const agents::FixAgent& agent = agents::agent_for_rule(rule_id);
            const agents::FixOutcome outcome =
                agent.run(current, fast.finding, rule_id, context);
            ++result.steps_executed;
            context.emit(TraceEventKind::StepExecuted, rule_id);

            // ...and verification measures it.
            const miri::MiriReport report = context.verify(outcome.code);
            const std::size_t errors = report.error_count();
            result.error_trajectory.push_back(errors);
            context.emit(TraceEventKind::StepVerified, rule_id, errors);
            rollback.observe(outcome.code, errors);
            if (errors > fast.initial_error_count) signals.regression_seen = true;

            if (errors == 0) {
                solution_passed = true;
                solution_acceptable = oracle(outcome.code);
                current = outcome.code;
                if (solution_acceptable) break;
                // Passes Miri but semantics diverge (often a corrupted
                // application of the right strategy). Keep it as a fallback
                // and spend the remaining iterations re-attempting the
                // strategy from the original code — the paper's "fine-tune
                // through reasoning" loop.
                if (!pass_only) {
                    pass_only = {outcome.code, rule_id};
                }
                current = buggy_source;
                continue;
            }
            if (options_.use_adaptive_rollback) {
                // "Before proceeding to the next stage, the process rolls
                // back to the optimal code state (the fewest detected
                // errors)" — strict improvements advance the baseline;
                // regressions and sideways corruption are both discarded
                // (Fig 5b). Only true regressions charge rollback cost.
                if (rollback.should_rollback(errors)) {
                    current = rollback.rollback(context.clock);
                    context.emit(TraceEventKind::Rollback, rule_id,
                                 rollback.best_errors());
                } else {
                    current = rollback.best_code();
                }
            } else {
                // Fig 5a: no rollback — hallucinated states propagate.
                current = outcome.code;
            }
        }
        result.rollbacks += rollback.rollbacks_performed();

        // S2 evaluation: the triplet for this attempt feeds back into fast
        // thinking (S3's self-learning edge).
        EvalTriplet triplet;
        triplet.accuracy = solution_passed;
        triplet.acceptability = solution_acceptable;
        triplet.overhead_ms = context.clock.now_ms() - attempt_start_ms;
        result.attempt_triplets.push_back(triplet);
        if (feedback != nullptr && !fast.feature_key.empty() &&
            !solution.rule_ids.empty()) {
            feedback->record(fast.feature_key, solution.rule_ids.front(), triplet);
        }

        if (solution_passed && solution_acceptable) {
            if (!result.pass) {
                result.pass = true;
                result.acceptable = true;
                result.final_source = current;
                result.winning_rule = solution.rule_ids.empty()
                                          ? ""
                                          : solution.rule_ids.front();
            }
            signals.success_found = true;
            signals.elapsed_ms = context.clock.now_ms();
            if (!policy.continue_after_success(signals)) {
                context.emit(TraceEventKind::StageExit, "slow_thinking");
                // `result` is about to be moved out; the engine repoints
                // the trajectory signals at the returned object if a later
                // hook needs them.
                signals.error_trajectory = nullptr;
                signals.attempt_triplets = nullptr;
                return result;
            }
            // The slow-all ablation: deliberate on anyway (the winner above
            // is already locked in).
            context.emit(TraceEventKind::ThinkingSwitch, "continue", plan[k]);
        }
    }

    if (!result.pass) {
        if (pass_only) {
            result.pass = true;
            result.acceptable = false;
            result.final_source = pass_only->first;
            result.winning_rule = pass_only->second;
        } else {
            result.final_source = buggy_source;
        }
    }
    context.emit(TraceEventKind::StageExit, "slow_thinking");
    signals.error_trajectory = nullptr;
    signals.attempt_triplets = nullptr;
    return result;
}

}  // namespace rustbrain::core
