// Slow thinking (paper Fig 2, stages S1-S3): decompose each fast-thinking
// solution into steps, execute them with the matching fix agents, verify
// after every step, contain hallucination with the adaptive rollback agent,
// and evaluate each attempt on the (accuracy, acceptability, overhead)
// triplet.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "agents/agent_context.hpp"
#include "core/fast_thinking.hpp"
#include "core/feedback.hpp"
#include "core/thinking_policy.hpp"

namespace rustbrain::core {

/// Acceptability oracle: the evaluation harness's semantic benchmark
/// (developer-repaired code). Maps candidate source -> acceptable?
using SemanticOracle = std::function<bool(const std::string&)>;

struct SlowThinkingResult {
    bool pass = false;                    // a Miri-clean candidate was found
    bool acceptable = false;              // ... that also matched semantics
    std::string final_source;             // best candidate produced
    std::string winning_rule;             // rule credited with the repair
    int steps_executed = 0;
    int rollbacks = 0;
    std::vector<std::size_t> error_trajectory;  // N = {n_0, n_1, ...}
    std::vector<EvalTriplet> attempt_triplets;  // one per solution tried
};

struct SlowThinkingOptions {
    bool use_adaptive_rollback = true;
    /// Extra repair iterations granted per solution when verification shows
    /// progress (the paper's "fine-tune through reasoning": adjust iteration
    /// count / execution path).
    int max_steps_per_solution = 3;
    /// Decision seam for the attempt loop (ordering, gating, refinement
    /// budget, early stop). Null falls back to paper_thinking_policy() —
    /// the paper's fixed order.
    const ThinkingPolicy* policy = nullptr;
};

class SlowThinking {
  public:
    explicit SlowThinking(SlowThinkingOptions options) : options_(options) {}

    /// Execute & verify the candidate solutions against the buggy source.
    /// Records every attempt into `feedback` (when non-null) keyed by
    /// `feature_key`. In FastOnly mode only the top-ranked solution is
    /// attempted — the policy's refinement grant still applies, but there
    /// is no per-attempt gating and no further solutions — the "trust the
    /// intuition" arm of the thinking switch.
    SlowThinkingResult run(const std::string& buggy_source,
                           const FastThinkingResult& fast,
                           const SemanticOracle& oracle,
                           FeedbackStore* feedback,
                           agents::AgentContext& context,
                           ThinkingMode mode = ThinkingMode::Escalate) const;

  private:
    SlowThinkingOptions options_;
};

}  // namespace rustbrain::core
