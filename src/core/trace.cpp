#include "core/trace.hpp"

namespace rustbrain::core {

const char* trace_event_kind_name(TraceEventKind kind) {
    switch (kind) {
        case TraceEventKind::StageEnter: return "stage_enter";
        case TraceEventKind::StageExit: return "stage_exit";
        case TraceEventKind::LlmCall: return "llm_call";
        case TraceEventKind::Verify: return "verify";
        case TraceEventKind::StepExecuted: return "step_executed";
        case TraceEventKind::StepVerified: return "step_verified";
        case TraceEventKind::KbConsult: return "kb_consult";
        case TraceEventKind::KbSkip: return "kb_skip";
        case TraceEventKind::Rollback: return "rollback";
        case TraceEventKind::SolutionsGenerated: return "solutions_generated";
        case TraceEventKind::ThinkingSwitch: return "thinking_switch";
        case TraceEventKind::Screen: return "screen";
        case TraceEventKind::ServiceQueue: return "service_queue";
        case TraceEventKind::ServiceComplete: return "service_complete";
    }
    return "?";
}

void TraceStats::on_event(const TraceEvent& event) {
    switch (event.kind) {
        case TraceEventKind::LlmCall:
            ++llm_calls_;
            break;
        case TraceEventKind::StepExecuted:
            ++steps_executed_;
            break;
        case TraceEventKind::StepVerified:
            trajectory_.push_back(static_cast<std::size_t>(event.value));
            break;
        case TraceEventKind::KbConsult:
            kb_consulted_ = true;
            break;
        case TraceEventKind::KbSkip:
            kb_skipped_ = true;
            break;
        case TraceEventKind::Rollback:
            ++rollbacks_;
            break;
        case TraceEventKind::SolutionsGenerated:
            solutions_ = static_cast<int>(event.value);
            break;
        case TraceEventKind::ThinkingSwitch:
            ++thinking_switches_;
            if (event.label == "escalate") ++escalations_;
            if (event.label == "stop") ++early_stops_;
            if (event.label == "skip") ++attempts_skipped_;
            break;
        case TraceEventKind::Screen:
            ++screens_;
            if (event.label == "proven-safe") ++screen_proven_safe_;
            if (event.label == "likely-ub") ++screen_likely_ub_;
            if (event.label == "unknown") ++screen_unknown_;
            break;
        case TraceEventKind::StageEnter:
        case TraceEventKind::StageExit:
        case TraceEventKind::Verify:
        case TraceEventKind::ServiceQueue:
        case TraceEventKind::ServiceComplete:
            break;
    }
}

std::size_t TraceRecorder::count(TraceEventKind kind) const {
    std::size_t total = 0;
    for (const TraceEvent& event : events_) {
        if (event.kind == kind) ++total;
    }
    return total;
}

}  // namespace rustbrain::core
