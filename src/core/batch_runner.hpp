// Parallel batch evaluation over a UB corpus.
//
// The paper's whole evaluation (Figs 7-12, Table I) is "sweep every corpus
// case under one configuration and aggregate" — repeated dozens of times
// across configurations. BatchRunner shards those cases across a
// support::ThreadPool: one repair engine per worker over a shared const
// KnowledgeBase, per-case deterministic seeding untouched (every engine
// derives its RNG streams from config.seed + case id), and both the
// CaseResult sequence and the aggregate SimClock merged in case-index
// order. Because every case is independent of scheduling, a run with N
// workers is bit-identical to a serial run — parallelism is purely a
// wall-clock optimization.
//
// Cross-case *feedback accumulation* (the self-learning campaigns of
// fig07/repair_campaign and Table I's knowledge+feedback column) is
// order-dependent by design; run_sequential covers that shape with the
// same report format. A read-only warm feedback snapshot can instead be
// applied per-case (copied), which keeps scheduling out of the results.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include <string>

#include "core/engine_registry.hpp"
#include "core/feedback.hpp"
#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "kb/knowledge_base.hpp"
#include "support/sim_clock.hpp"

namespace rustbrain::core {

using RepairFn = std::function<CaseResult(const dataset::UbCase&)>;

/// Invoked once per worker before the sweep starts; the returned functor is
/// only ever called from that worker's thread.
using EngineFactory = std::function<RepairFn(std::size_t worker)>;

struct BatchOptions {
    std::size_t workers = 0;  // 0 => support::ThreadPool::hardware_threads()
};

struct BatchReport {
    std::vector<CaseResult> results;  // same order as the input cases
    support::SimClock clock;          // per-case charges, merged in case order
    double wall_ms = 0.0;             // real elapsed time of the batch
    std::size_t workers_used = 1;

    [[nodiscard]] int pass_total() const;
    [[nodiscard]] int exec_total() const;
    [[nodiscard]] double virtual_ms_total() const;
};

class BatchRunner {
  public:
    /// Generic engine (baselines, ablated configurations, ...).
    explicit BatchRunner(EngineFactory factory, BatchOptions options = {});

    /// RustBrain sweep: one instance per worker over the shared const
    /// `knowledge_base` (may be null). When `warm_feedback` is non-null,
    /// every case starts from a private copy of that snapshot, so the
    /// feedback effect depends only on (snapshot, case) — never on worker
    /// count or scheduling.
    BatchRunner(RustBrainConfig config, const kb::KnowledgeBase* knowledge_base,
                BatchOptions options = {},
                const FeedbackStore* warm_feedback = nullptr);

    /// Registry-driven sweep: build `engine_id` from EngineRegistry::builtin()
    /// with `engine_options`, one engine per worker. `context.feedback` and
    /// `context.trace` are both ignored: a shared mutable feedback store
    /// would make results scheduling-dependent, and a single TraceSink
    /// written from every worker would race. To sweep from learned feedback
    /// pass `warm_feedback`, which gives every case a private copy of the
    /// snapshot exactly like the RustBrain constructor above; to trace,
    /// build one engine from the registry and run it directly (or via
    /// run_sequential).
    BatchRunner(const std::string& engine_id, EngineOptions engine_options,
                EngineBuildContext context, BatchOptions options = {},
                const FeedbackStore* warm_feedback = nullptr);

    [[nodiscard]] BatchReport run(
        const std::vector<const dataset::UbCase*>& cases) const;
    [[nodiscard]] BatchReport run(const dataset::Corpus& corpus) const;

    /// Ordered single-engine sweep: case i sees whatever state case i-1 left
    /// in `engine` (e.g. a shared FeedbackStore). Same report shape as run().
    static BatchReport run_sequential(
        const std::vector<const dataset::UbCase*>& cases, const RepairFn& engine);

  private:
    EngineFactory factory_;
    BatchOptions options_;
};

}  // namespace rustbrain::core
