// Feedback mechanism between slow and fast thinking (paper §III-C).
//
// Slow thinking evaluates every attempted solution on the triplet
// (accuracy, acceptability, overhead) and records the outcome against the
// error-feature key. Fast thinking consults the store when generating
// solutions: rules that already repaired similar errors are emitted as
// "preferred" hints, raising the model's effective competence — the
// self-learning loop that reduces knowledge-base dependence over time
// (Table I's red cells).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rustbrain::core {

/// The paper's evaluation triplet for one attempted solution.
struct EvalTriplet {
    bool accuracy = false;       // passes MiriLite
    bool acceptability = false;  // semantics match the reference benchmark
    double overhead_ms = 0.0;    // virtual time spent on the attempt
};

struct RuleOutcome {
    std::uint32_t successes = 0;  // accurate AND acceptable
    std::uint32_t partial = 0;    // accurate only
    std::uint32_t failures = 0;
    double total_overhead_ms = 0.0;

    [[nodiscard]] double score() const;
};

/// One journaled record() call — enough to replay the outcome into
/// another store.
struct FeedbackRecord {
    std::string feature_key;
    std::string rule_id;
    EvalTriplet triplet;
};

class FeedbackStore {
  public:
    void record(const std::string& feature_key, const std::string& rule_id,
                const EvalTriplet& triplet);

    /// Rules ranked by outcome score for this feature key (best first);
    /// rules with non-positive score are omitted.
    [[nodiscard]] std::vector<std::string> preferred_rules(
        const std::string& feature_key, std::size_t max_rules = 3) const;

    /// True once this key has enough successful history that fast thinking
    /// can skip the knowledge-base consultation entirely (the paper's
    /// reduced-KB-dependence effect).
    [[nodiscard]] bool is_confident(const std::string& feature_key) const;

    /// Best RuleOutcome score recorded for this key (0.0 when the key is
    /// unknown or every rule scores non-positive). The confidence signal
    /// thinking policies threshold on.
    [[nodiscard]] double best_score(const std::string& feature_key) const;

    [[nodiscard]] std::size_t key_count() const { return outcomes_.size(); }
    [[nodiscard]] std::uint64_t records() const { return records_; }

    /// Every record() call in order — `records() == journal().size()`.
    /// Copying a store copies its journal, so a snapshot handed to a
    /// request can later be merged back via absorb() without double
    /// counting the shared prefix.
    [[nodiscard]] const std::vector<FeedbackRecord>& journal() const {
        return journal_;
    }

    /// Replays `other`'s journal entries starting at index `from_record`
    /// into this store. The serve layer hands each request a snapshot copy
    /// of the warm store, then absorbs only the delta the request added
    /// (`from_record` = the snapshot's records()) — replay through
    /// record() keeps outcomes_ and journal_ consistent.
    void absorb(const FeedbackStore& other, std::uint64_t from_record = 0);

  private:
    std::map<std::string, std::map<std::string, RuleOutcome>> outcomes_;
    std::vector<FeedbackRecord> journal_;
    std::uint64_t records_ = 0;
};

}  // namespace rustbrain::core
