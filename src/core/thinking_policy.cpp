#include "core/thinking_policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "support/strings.hpp"

namespace rustbrain::core {

std::string ThinkingPolicy::descriptor() const {
    const std::string knobs = summary();
    return knobs.empty() ? id() : id() + "(" + knobs + ")";
}

std::vector<std::size_t> ThinkingPolicy::plan_attempts(
    const PolicySignals& signals) const {
    std::vector<std::size_t> order;
    order.reserve(signals.solution_count);
    for (std::size_t i = 0; i < signals.solution_count; ++i) order.push_back(i);
    return order;
}

namespace {

// ---------------------------------------------------------------------------
// The five built-in strategies
// ---------------------------------------------------------------------------

/// The paper's fixed switch: every default hook, verbatim.
class PaperPolicy final : public ThinkingPolicy {
  public:
    [[nodiscard]] std::string id() const override { return "paper"; }
};

/// AkiraRust-style feedback-guided switch: once the feedback store's best
/// rule for the extracted feature key clears the confidence threshold,
/// trust the intuition — run fast only (no KB consult, no deliberation
/// over the lower-ranked solutions; the top-ranked one keeps its full
/// refinement grant). The shortcut escalates into the full slow loop on
/// the first verify regression — evidence the intuition is actively
/// corrupting the code — while plain failures stay cheap, which is where
/// the confident repeats shed their overhead.
class FeedbackGuidedPolicy final : public ThinkingPolicy {
  public:
    explicit FeedbackGuidedPolicy(double threshold) : threshold_(threshold) {}

    [[nodiscard]] std::string id() const override { return "feedback-guided"; }
    [[nodiscard]] std::string summary() const override {
        return "threshold=" + support::format_double(threshold_, 1);
    }

    [[nodiscard]] ThinkingMode choose_mode(
        const PolicySignals& signals) const override {
        const bool confident =
            signals.feedback_confident && signals.feedback_score >= threshold_;
        return confident ? ThinkingMode::FastOnly : ThinkingMode::Escalate;
    }

    [[nodiscard]] bool escalate_on_failure(
        const PolicySignals& signals) const override {
        return signals.regression_seen;
    }

  private:
    double threshold_;
};

/// Screener-guided switch: the static pre-screener's verdict plays the
/// role the feedback store plays for feedback-guided, with one key
/// difference — it needs no warm-up, the signal exists from the very first
/// verification. A confident non-Unknown verdict means the case is
/// routine: ProvenSafe (the fix already verifies clean statically) and
/// LikelyUB (the category is statically pinned, so the top-ranked rule for
/// it is a strong bet) both shortcut to FastOnly. A static pin is weaker
/// evidence than a learned confident rule, though, so *any* fast-only
/// failure escalates into the full slow loop, not just regressions. When
/// LikelyUB pins the category, the attempt plan is stably reordered to put
/// solutions whose rules repair that category first.
class ScreenedPolicy final : public ThinkingPolicy {
  public:
    explicit ScreenedPolicy(double threshold) : threshold_(threshold) {}

    [[nodiscard]] std::string id() const override { return "screened"; }
    [[nodiscard]] std::string summary() const override {
        return "threshold=" + support::format_double(threshold_, 2);
    }

    [[nodiscard]] ThinkingMode choose_mode(
        const PolicySignals& signals) const override {
        const bool confident =
            signals.screened &&
            signals.screen_verdict != screen::VerdictKind::Unknown &&
            signals.screen_confidence >= threshold_;
        return confident ? ThinkingMode::FastOnly : ThinkingMode::Escalate;
    }

    [[nodiscard]] bool escalate_on_failure(
        const PolicySignals& signals) const override {
        (void)signals;
        return true;
    }

    [[nodiscard]] std::vector<std::size_t> plan_attempts(
        const PolicySignals& signals) const override {
        std::vector<std::size_t> order = ThinkingPolicy::plan_attempts(signals);
        if (!signals.screened ||
            signals.screen_verdict != screen::VerdictKind::LikelyUB) {
            return order;
        }
        const auto repairs_pinned_category = [&](std::size_t index) {
            if (index >= signals.solution_categories.size()) return false;
            const auto& categories = signals.solution_categories[index];
            return std::find(categories.begin(), categories.end(),
                             signals.screen_category) != categories.end();
        };
        // Stable: within each half the model's ranking order is preserved.
        std::stable_partition(order.begin(), order.end(),
                              repairs_pinned_category);
        return order;
    }

  private:
    double threshold_;
};

/// Overhead budget per case, in virtual ms: attempts stop once the case's
/// clock crosses the budget. The first attempt always runs (a budget that
/// forbids any repair at all measures nothing), so easy repairs land and
/// only the long refinement tails are cut.
class BudgetPolicy final : public ThinkingPolicy {
  public:
    explicit BudgetPolicy(double budget_ms) : budget_ms_(budget_ms) {}

    [[nodiscard]] std::string id() const override { return "budget"; }
    [[nodiscard]] std::string summary() const override {
        return "ms=" + support::format_double(budget_ms_, 0);
    }

    [[nodiscard]] AttemptAction gate_attempt(
        const PolicySignals& signals) const override {
        if (signals.attempt_index == 0) return AttemptAction::Proceed;
        return signals.elapsed_ms >= budget_ms_ ? AttemptAction::Stop
                                                : AttemptAction::Proceed;
    }

  private:
    double budget_ms_;
};

/// Ablation endpoint: pure intuition. The top-ranked solution is applied
/// exactly once; failures are final (no escalation, no refinement loop).
class FastOnlyPolicy final : public ThinkingPolicy {
  public:
    [[nodiscard]] std::string id() const override { return "fast-only"; }

    [[nodiscard]] ThinkingMode choose_mode(
        const PolicySignals& signals) const override {
        (void)signals;
        return ThinkingMode::FastOnly;
    }

    [[nodiscard]] int refinement_steps(const PolicySignals& signals,
                                       int configured_max) const override {
        (void)signals;
        return configured_max < 1 ? configured_max : 1;
    }
};

/// Ablation endpoint: exhaustive deliberation. Every generated solution is
/// executed in full even after an acceptable repair was found (the winner
/// stays the first success) — measures what early stopping saves.
class SlowAllPolicy final : public ThinkingPolicy {
  public:
    [[nodiscard]] std::string id() const override { return "slow-all"; }

    [[nodiscard]] bool continue_after_success(
        const PolicySignals& signals) const override {
        (void)signals;
        return true;
    }
};

}  // namespace

const ThinkingPolicy& paper_thinking_policy() {
    static const PaperPolicy policy;
    return policy;
}

// ---------------------------------------------------------------------------
// PolicyRegistry
// ---------------------------------------------------------------------------

void PolicyRegistry::add(Entry entry) {
    if (entries_.count(entry.id) != 0) {
        throw std::invalid_argument("duplicate policy id: " + entry.id);
    }
    entries_.emplace(entry.id, std::move(entry));
}

bool PolicyRegistry::contains(const std::string& id) const {
    return entries_.count(id) != 0;
}

const PolicyRegistry::Entry* PolicyRegistry::find(const std::string& id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> PolicyRegistry::ids() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) out.push_back(id);
    return out;
}

std::string PolicyRegistry::help() const {
    std::string out;
    for (const auto& [id, entry] : entries_) {
        out += "  " + id + " — " + entry.description + "\n";
    }
    return out;
}

std::shared_ptr<const ThinkingPolicy> PolicyRegistry::build(
    const std::string& id, const support::OptionMap& options) const {
    const Entry* entry = find(id);
    if (entry == nullptr) {
        std::string message = "unknown policy id '" + id + "'; available:";
        for (const std::string& known : ids()) message += ' ' + known;
        throw std::invalid_argument(message);
    }
    return entry->build(options);
}

const PolicyRegistry& PolicyRegistry::builtin() {
    static const PolicyRegistry registry = [] {
        PolicyRegistry r;
        r.add({"paper",
               "the paper's fixed switch: fast generates, slow executes every "
               "solution in order (the default; bit-identical to the "
               "pre-policy orchestrator)",
               [](const support::OptionMap& options) {
                   options.check_known({});
                   return std::make_shared<const PaperPolicy>();
               }});
        r.add({"feedback-guided",
               "skip slow thinking when the feedback store's best rule for "
               "the feature key clears the confidence threshold; escalate on "
               "the first verify regression (knob: threshold)",
               [](const support::OptionMap& options) {
                   options.check_known({"threshold"});
                   return std::make_shared<const FeedbackGuidedPolicy>(
                       options.get_double("threshold", 4.0));
               }});
        r.add({"screened",
               "trust the static pre-screener: fast-only when the screening "
               "verdict clears the confidence threshold; a LikelyUB verdict "
               "reorders attempts to category-matching rules first; any "
               "fast-only failure escalates (knob: threshold)",
               [](const support::OptionMap& options) {
                   options.check_known({"threshold"});
                   return std::make_shared<const ScreenedPolicy>(
                       options.get_double("threshold", 0.75));
               }});
        r.add({"budget",
               "per-case overhead budget in virtual ms; after the first "
               "attempt, further attempts stop once the budget is exhausted "
               "(knob: ms)",
               [](const support::OptionMap& options) {
                   options.check_known({"ms"});
                   return std::make_shared<const BudgetPolicy>(
                       options.get_double("ms", 30000.0));
               }});
        r.add({"fast-only",
               "ablation endpoint: apply the top fast-thinking solution once, "
               "never escalate",
               [](const support::OptionMap& options) {
                   options.check_known({});
                   return std::make_shared<const FastOnlyPolicy>();
               }});
        r.add({"slow-all",
               "ablation endpoint: execute every solution in full even after "
               "a success (first success still wins)",
               [](const support::OptionMap& options) {
                   options.check_known({});
                   return std::make_shared<const SlowAllPolicy>();
               }});
        return r;
    }();
    return registry;
}

std::shared_ptr<const ThinkingPolicy> parse_policy_spec(
    const std::string& spec) {
    // ';' is an alias for ',' so a knobbed spec can ride inside an engine
    // option map ("policy=budget;ms=1500").
    const std::string normalized = support::replace_all(spec, ";", ",");
    std::string id = normalized;
    std::string knob_spec;
    const std::size_t comma = normalized.find(',');
    if (comma != std::string::npos) {
        id = normalized.substr(0, comma);
        knob_spec = normalized.substr(comma + 1);
    }
    id = std::string(support::trim(id));
    if (id.empty()) id = "paper";
    return PolicyRegistry::builtin().build(id,
                                           support::OptionMap::parse(knob_spec));
}

void set_policy_option(support::OptionMap& options, const std::string& spec) {
    options.values["policy"] = support::replace_all(spec, ",", ";");
}

}  // namespace rustbrain::core
