// TraceSink — structured per-case repair telemetry.
//
// Fast/slow thinking, the agents and the baselines emit typed events
// (stage enter/exit, LLM calls, verification runs, KB consultations,
// rollbacks) instead of bumping ad-hoc counters. Engines tally the events
// with a TraceStats sink, which is the single source for every statistic
// in CaseResult; callers can attach their own sink (via
// RepairEngine::set_trace_sink or EngineBuildContext::trace) to observe a
// repair live or record it for inspection. Emission never consumes
// randomness or virtual time, so tracing cannot perturb results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rustbrain::core {

enum class TraceEventKind {
    StageEnter,          // label = stage name
    StageExit,           // label = stage name
    LlmCall,             // label = prompt task, value = latency charged (us)
    Verify,              // any MiriLite run; value = error count
    StepExecuted,        // one slow-thinking/baseline repair step; label = rule
    StepVerified,        // post-step verification; value = error count
    KbConsult,           // knowledge base consulted; value = exemplar count
    KbSkip,              // consultation skipped (feedback confidence)
    Rollback,            // a rollback was performed
    SolutionsGenerated,  // value = candidate solution count
    ThinkingSwitch,      // a ThinkingPolicy decision; label = decision
                         // ("fast-only", "escalate", "skip", "stop",
                         // "continue", "steps"), value = attempt index or
                         // granted steps
    Screen,              // a static pre-screening verdict; label = verdict
                         // ("proven-safe", "likely-ub", "unknown"),
                         // value = abstract ops spent
    ServiceQueue,        // serve::RepairService dequeued a request;
                         // label = engine id, value = queue wait (us)
    ServiceComplete,     // serve::RepairService finished a request;
                         // label = case id, value = total service time (us)
};

const char* trace_event_kind_name(TraceEventKind kind);

struct TraceEvent {
    TraceEventKind kind = TraceEventKind::StageEnter;
    std::string label;
    std::uint64_t value = 0;
    double clock_ms = 0.0;  // virtual timestamp at emission
};

class TraceSink {
  public:
    virtual ~TraceSink() = default;
    virtual void on_event(const TraceEvent& event) = 0;
};

/// Tallies events into the counters CaseResult reports. One per repair.
class TraceStats final : public TraceSink {
  public:
    void on_event(const TraceEvent& event) override;

    [[nodiscard]] std::uint64_t llm_calls() const { return llm_calls_; }
    [[nodiscard]] int steps_executed() const { return steps_executed_; }
    [[nodiscard]] int rollbacks() const { return rollbacks_; }
    [[nodiscard]] bool kb_consulted() const { return kb_consulted_; }
    [[nodiscard]] bool kb_skipped() const { return kb_skipped_; }
    /// Most recent SolutionsGenerated value (a KB-sharpened regeneration
    /// supersedes the first pass, matching the reported count).
    [[nodiscard]] int solutions_generated() const { return solutions_; }
    /// Error counts of every StepVerified event, in emission order.
    [[nodiscard]] const std::vector<std::size_t>& error_trajectory() const {
        return trajectory_;
    }
    /// ThinkingSwitch tallies: every policy decision, plus the escalation /
    /// early-stop / skipped-attempt subsets (by event label).
    [[nodiscard]] int thinking_switches() const { return thinking_switches_; }
    [[nodiscard]] int escalations() const { return escalations_; }
    [[nodiscard]] int early_stops() const { return early_stops_; }
    [[nodiscard]] int attempts_skipped() const { return attempts_skipped_; }
    /// Screen tallies: every screening verdict observed, split by kind
    /// (event labels "proven-safe" / "likely-ub" / "unknown").
    [[nodiscard]] int screens() const { return screens_; }
    [[nodiscard]] int screen_proven_safe() const { return screen_proven_safe_; }
    [[nodiscard]] int screen_likely_ub() const { return screen_likely_ub_; }
    [[nodiscard]] int screen_unknown() const { return screen_unknown_; }

  private:
    std::uint64_t llm_calls_ = 0;
    int steps_executed_ = 0;
    int rollbacks_ = 0;
    bool kb_consulted_ = false;
    bool kb_skipped_ = false;
    int solutions_ = 0;
    int thinking_switches_ = 0;
    int escalations_ = 0;
    int early_stops_ = 0;
    int attempts_skipped_ = 0;
    int screens_ = 0;
    int screen_proven_safe_ = 0;
    int screen_likely_ub_ = 0;
    int screen_unknown_ = 0;
    std::vector<std::size_t> trajectory_;
};

/// Stores every event verbatim (tests, inspection tools).
class TraceRecorder final : public TraceSink {
  public:
    void on_event(const TraceEvent& event) override { events_.push_back(event); }
    [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t count(TraceEventKind kind) const;

  private:
    std::vector<TraceEvent> events_;
};

/// Forwards to up to two sinks (either may be null): the engine's internal
/// TraceStats plus whatever the caller attached.
class TraceTee final : public TraceSink {
  public:
    TraceTee(TraceSink* first, TraceSink* second)
        : first_(first), second_(second) {}
    void on_event(const TraceEvent& event) override {
        if (first_ != nullptr) first_->on_event(event);
        if (second_ != nullptr) second_->on_event(event);
    }

  private:
    TraceSink* first_;
    TraceSink* second_;
};

}  // namespace rustbrain::core
