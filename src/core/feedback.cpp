#include "core/feedback.hpp"

#include <algorithm>

namespace rustbrain::core {

double RuleOutcome::score() const {
    // Full successes dominate; accurate-but-unacceptable fixes count a
    // little (they at least silenced the UB); failures push down.
    return 2.0 * successes + 0.4 * partial - 1.0 * failures;
}

void FeedbackStore::record(const std::string& feature_key,
                           const std::string& rule_id, const EvalTriplet& triplet) {
    RuleOutcome& outcome = outcomes_[feature_key][rule_id];
    if (triplet.accuracy && triplet.acceptability) {
        ++outcome.successes;
    } else if (triplet.accuracy) {
        ++outcome.partial;
    } else {
        ++outcome.failures;
    }
    outcome.total_overhead_ms += triplet.overhead_ms;
    journal_.push_back({feature_key, rule_id, triplet});
    ++records_;
}

void FeedbackStore::absorb(const FeedbackStore& other,
                           std::uint64_t from_record) {
    const std::vector<FeedbackRecord>& journal = other.journal();
    for (std::size_t i = from_record; i < journal.size(); ++i) {
        const FeedbackRecord& entry = journal[i];
        record(entry.feature_key, entry.rule_id, entry.triplet);
    }
}

std::vector<std::string> FeedbackStore::preferred_rules(
    const std::string& feature_key, std::size_t max_rules) const {
    auto it = outcomes_.find(feature_key);
    if (it == outcomes_.end()) return {};
    std::vector<std::pair<std::string, double>> scored;
    for (const auto& [rule_id, outcome] : it->second) {
        if (outcome.score() > 0.0) {
            scored.emplace_back(rule_id, outcome.score());
        }
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    std::vector<std::string> out;
    for (const auto& [rule_id, score] : scored) {
        out.push_back(rule_id);
        if (out.size() >= max_rules) break;
    }
    return out;
}

double FeedbackStore::best_score(const std::string& feature_key) const {
    auto it = outcomes_.find(feature_key);
    if (it == outcomes_.end()) return 0.0;
    double best = 0.0;
    for (const auto& [rule_id, outcome] : it->second) {
        if (outcome.score() > best) best = outcome.score();
    }
    return best;
}

bool FeedbackStore::is_confident(const std::string& feature_key) const {
    auto it = outcomes_.find(feature_key);
    if (it == outcomes_.end()) return false;
    for (const auto& [rule_id, outcome] : it->second) {
        if (outcome.successes >= 2) return true;
    }
    return false;
}

}  // namespace rustbrain::core
