#include "core/batch_runner.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "support/thread_pool.hpp"

namespace rustbrain::core {

int BatchReport::pass_total() const {
    int total = 0;
    for (const CaseResult& result : results) total += result.pass;
    return total;
}

int BatchReport::exec_total() const {
    int total = 0;
    for (const CaseResult& result : results) total += result.exec;
    return total;
}

double BatchReport::virtual_ms_total() const {
    double total = 0.0;
    for (const CaseResult& result : results) total += result.time_ms;
    return total;
}

namespace {

/// Fold per-case charges into the aggregate clock, always walking cases in
/// index order: double accumulation order is then fixed, so the aggregate
/// breakdown is bit-identical regardless of which worker ran which case.
void merge_clock(BatchReport& report) {
    for (const CaseResult& result : report.results) {
        if (result.time_breakdown.empty()) {
            // Engines that don't export a breakdown still contribute their
            // total so the aggregate clock covers the whole batch.
            if (result.time_ms > 0.0) report.clock.charge("repair", result.time_ms);
            continue;
        }
        for (const auto& [category, ms] : result.time_breakdown) {
            report.clock.charge(category, ms);
        }
    }
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

BatchRunner::BatchRunner(EngineFactory factory, BatchOptions options)
    : factory_(std::move(factory)), options_(options) {}

BatchRunner::BatchRunner(RustBrainConfig config,
                         const kb::KnowledgeBase* knowledge_base,
                         BatchOptions options, const FeedbackStore* warm_feedback)
    : options_(options) {
    if (warm_feedback == nullptr) {
        factory_ = [config, knowledge_base](std::size_t) -> RepairFn {
            auto engine =
                std::make_shared<RustBrain>(config, knowledge_base, nullptr);
            return [engine](const dataset::UbCase& ub_case) {
                return engine->repair(ub_case);
            };
        };
    } else {
        // Each case starts from its own copy of the snapshot; the engine is
        // rebuilt per case because RustBrain binds its feedback store at
        // construction (construction is a profile lookup — cheap next to a
        // repair).
        auto snapshot = std::make_shared<const FeedbackStore>(*warm_feedback);
        factory_ = [config, knowledge_base, snapshot](std::size_t) -> RepairFn {
            return [config, knowledge_base,
                    snapshot](const dataset::UbCase& ub_case) {
                FeedbackStore store = *snapshot;
                RustBrain engine(config, knowledge_base, &store);
                return engine.repair(ub_case);
            };
        };
    }
}

BatchRunner::BatchRunner(const std::string& engine_id,
                         EngineOptions engine_options,
                         EngineBuildContext context, BatchOptions options,
                         const FeedbackStore* warm_feedback)
    : options_(options) {
    // See header: parallel sweeps must not share a mutable store, and a
    // single TraceSink written from every worker would race.
    context.feedback = nullptr;
    context.trace = nullptr;
    // Fail fast on an unknown id or option, not on the first repaired case.
    (void)EngineRegistry::builtin().build(engine_id, engine_options, context);
    if (warm_feedback == nullptr) {
        factory_ = [engine_id, engine_options,
                    context](std::size_t) -> RepairFn {
            std::shared_ptr<RepairEngine> engine =
                EngineRegistry::builtin().build(engine_id, engine_options,
                                                context);
            return [engine](const dataset::UbCase& ub_case) {
                return engine->repair(ub_case);
            };
        };
    } else {
        // Each case starts from its own copy of the snapshot; the engine is
        // rebuilt per case because engines bind their feedback store at
        // construction (construction is a registry lookup plus a profile
        // lookup — cheap next to a repair).
        auto snapshot = std::make_shared<const FeedbackStore>(*warm_feedback);
        factory_ = [engine_id, engine_options, context,
                    snapshot](std::size_t) -> RepairFn {
            return [engine_id, engine_options, context,
                    snapshot](const dataset::UbCase& ub_case) {
                FeedbackStore store = *snapshot;
                EngineBuildContext case_context = context;
                case_context.feedback = &store;
                const auto engine = EngineRegistry::builtin().build(
                    engine_id, engine_options, case_context);
                return engine->repair(ub_case);
            };
        };
    }
}

BatchReport BatchRunner::run(
    const std::vector<const dataset::UbCase*>& cases) const {
    BatchReport report;
    report.results.resize(cases.size());

    std::size_t workers = options_.workers == 0
                              ? support::ThreadPool::hardware_threads()
                              : options_.workers;
    if (workers > cases.size()) workers = cases.size();
    if (workers == 0) workers = 1;
    report.workers_used = workers;

    const auto start = std::chrono::steady_clock::now();
    if (workers == 1) {
        const RepairFn engine = factory_(0);
        for (std::size_t i = 0; i < cases.size(); ++i) {
            report.results[i] = engine(*cases[i]);
        }
    } else {
        std::vector<RepairFn> engines;
        engines.reserve(workers);
        for (std::size_t worker = 0; worker < workers; ++worker) {
            engines.push_back(factory_(worker));
        }
        support::ThreadPool pool(workers);
        pool.parallel_for(cases.size(),
                          [&](std::size_t index, std::size_t worker) {
                              report.results[index] = engines[worker](*cases[index]);
                          });
    }
    report.wall_ms = elapsed_ms_since(start);
    merge_clock(report);
    return report;
}

BatchReport BatchRunner::run(const dataset::Corpus& corpus) const {
    std::vector<const dataset::UbCase*> cases;
    cases.reserve(corpus.size());
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        cases.push_back(&ub_case);
    }
    return run(cases);
}

BatchReport BatchRunner::run_sequential(
    const std::vector<const dataset::UbCase*>& cases, const RepairFn& engine) {
    BatchReport report;
    report.results.reserve(cases.size());
    const auto start = std::chrono::steady_clock::now();
    for (const dataset::UbCase* ub_case : cases) {
        report.results.push_back(engine(*ub_case));
    }
    report.wall_ms = elapsed_ms_since(start);
    merge_clock(report);
    return report;
}

}  // namespace rustbrain::core
