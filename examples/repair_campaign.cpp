// repair_campaign: the paper's motivating workflow at project scale —
// sweep a whole corpus of UB-ridden modules, repair each with RustBrain,
// and report a triage summary (what was fixed, how, and how long it took).
//
// Two phases show the two execution shapes BatchRunner supports:
//   1. a focused sequential campaign over one category, where the shared
//      feedback store makes the third sibling cheaper than the first; then
//   2. a corpus-wide parallel campaign that shards cases across every
//      hardware thread, warm-started from the snapshot phase 1 learned —
//      results are identical at any worker count.
#include <cstdio>
#include <map>

#include "core/batch_runner.hpp"
#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace rustbrain;

int main() {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    kb::KnowledgeBase kbase;
    const kb::SeedStats seeded = kb::seed_from_corpus(corpus, kbase);
    std::printf("knowledge base: %zu entries (%zu verified fixes)\n\n",
                seeded.entries_added, seeded.rules_verified);

    core::RustBrainConfig config;
    config.model = "gpt-4";
    core::FeedbackStore feedback;
    core::RustBrain rustbrain(config, &kbase, &feedback);

    // Campaign over one category to showcase self-learning: the third
    // sibling benefits from feedback recorded on the first two, so the
    // sweep is ordered (run_sequential), not parallel.
    std::printf("== focused campaign: danglingpointer ==\n");
    const std::vector<const dataset::UbCase*> focused =
        corpus.by_category(miri::UbCategory::DanglingPointer);
    const core::BatchReport focused_report = core::BatchRunner::run_sequential(
        focused, [&](const dataset::UbCase& ub_case) {
            return rustbrain.repair(ub_case);
        });
    for (std::size_t i = 0; i < focused.size(); ++i) {
        const core::CaseResult& result = focused_report.results[i];
        std::printf("  %-42s %s/%s  %5.1fs  rule=%s%s\n", focused[i]->id.c_str(),
                    result.pass ? "pass" : "FAIL", result.exec ? "exec" : "div ",
                    result.time_ms / 1000.0, result.winning_rule.c_str(),
                    result.kb_skipped_by_feedback ? "  [feedback: skipped KB]"
                                                  : "");
    }

    // Full-corpus triage, sharded across the hardware. Each case starts
    // from a private copy of the feedback snapshot learned above, so the
    // outcome does not depend on scheduling or worker count.
    const std::size_t workers = support::ThreadPool::hardware_threads();
    std::printf("\n== full campaign (%zu modules, %zu workers) ==\n",
                corpus.size(), workers);
    const core::BatchRunner runner(config, &kbase, core::BatchOptions{workers},
                                   &feedback);
    const core::BatchReport report = runner.run(corpus);

    std::map<std::string, int> by_rule;
    int kb_skips = 0;
    for (const core::CaseResult& result : report.results) {
        kb_skips += result.kb_skipped_by_feedback;
        if (result.pass && !result.winning_rule.empty()) {
            ++by_rule[result.winning_rule];
        }
    }
    std::printf("repaired %d/%zu (%d semantically verified), %.1f virtual "
                "minutes total, %d KB lookups skipped by feedback, "
                "%.0f ms wall clock\n\n",
                report.pass_total(), corpus.size(), report.exec_total(),
                report.virtual_ms_total() / 60000.0, kb_skips, report.wall_ms);

    support::TextTable table({"winning strategy", "repairs"});
    for (const auto& [rule, count] : by_rule) {
        table.add_row({rule, std::to_string(count)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
