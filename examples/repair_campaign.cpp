// repair_campaign: the paper's motivating workflow at project scale —
// sweep a whole corpus of UB-ridden modules, repair each with RustBrain,
// and report a triage summary (what was fixed, how, and how long it took),
// demonstrating the feedback loop getting faster on repeated error shapes.
#include <cstdio>
#include <map>

#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "support/table.hpp"

using namespace rustbrain;

int main() {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    kb::KnowledgeBase kbase;
    const kb::SeedStats seeded = kb::seed_from_corpus(corpus, kbase);
    std::printf("knowledge base: %zu entries (%zu verified fixes)\n\n",
                seeded.entries_added, seeded.rules_verified);

    core::RustBrainConfig config;
    config.model = "gpt-4";
    core::FeedbackStore feedback;
    core::RustBrain rustbrain(config, &kbase, &feedback);

    // Campaign over one category to showcase self-learning: the third
    // sibling benefits from feedback recorded on the first two.
    std::printf("== focused campaign: danglingpointer ==\n");
    for (const dataset::UbCase* ub_case :
         corpus.by_category(miri::UbCategory::DanglingPointer)) {
        const core::CaseResult result = rustbrain.repair(*ub_case);
        std::printf("  %-42s %s/%s  %5.1fs  rule=%s%s\n", ub_case->id.c_str(),
                    result.pass ? "pass" : "FAIL", result.exec ? "exec" : "div ",
                    result.time_ms / 1000.0, result.winning_rule.c_str(),
                    result.kb_skipped_by_feedback ? "  [feedback: skipped KB]"
                                                  : "");
    }

    // Full-corpus triage summary.
    std::printf("\n== full campaign (%zu modules) ==\n", corpus.size());
    std::map<std::string, int> by_rule;
    int pass = 0;
    int exec = 0;
    int kb_skips = 0;
    double total_time = 0.0;
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        const core::CaseResult result = rustbrain.repair(ub_case);
        pass += result.pass;
        exec += result.exec;
        kb_skips += result.kb_skipped_by_feedback;
        total_time += result.time_ms;
        if (result.pass && !result.winning_rule.empty()) {
            ++by_rule[result.winning_rule];
        }
    }
    std::printf("repaired %d/%zu (%d semantically verified), %.1f virtual "
                "minutes total, %d KB lookups skipped by feedback\n\n",
                pass, corpus.size(), exec, total_time / 60000.0, kb_skips);

    support::TextTable table({"winning strategy", "repairs"});
    for (const auto& [rule, count] : by_rule) {
        table.add_row({rule, std::to_string(count)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
