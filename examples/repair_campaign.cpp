// repair_campaign: the paper's motivating workflow at project scale —
// sweep a whole corpus of UB-ridden modules, repair each with a registry-
// selected engine, and report a triage summary (what was fixed, how, and
// how long it took).
//
//   $ ./examples/repair_campaign                        # rustbrain, full corpus
//   $ ./examples/repair_campaign --engine fixed-pipeline
//   $ ./examples/repair_campaign --engine rustbrain --limit 3   # smoke slice
//   $ ./examples/repair_campaign --policy feedback-guided       # switch strategy
//   $ ./examples/repair_campaign --screen off           # no static pre-screen
//   $ ./examples/repair_campaign --interp vm            # bytecode-VM tier
//   $ ./examples/repair_campaign --corpus forged.rbc    # saved/generated corpus
//
// Two phases show the two execution shapes BatchRunner supports:
//   1. a focused sequential campaign over one category, where the shared
//      feedback store makes the third sibling cheaper than the first; then
//   2. a corpus-wide parallel campaign that shards cases across every
//      hardware thread (RUSTBRAIN_WORKERS overrides), warm-started from
//      the snapshot phase 1 learned — results are identical at any worker
//      count. With --limit N the sweep covers only the first N cases (the
//      CI smoke slice) and the focused phase is skipped.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/corpus.hpp"
#include "gen/corpus_io.hpp"
#include "kb/seed.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "verify/oracle.hpp"

using namespace rustbrain;

namespace {

int usage(const char* argv0) {
    std::printf("usage: %s [--engine <id>] [--options k=v,...] [--limit N]\n"
                "          [--policy <id>[,k=v...]] [--screen on|off]\n"
                "          [--interp %s] [--corpus <file>]\n\n"
                "available engines:\n%s\navailable policies:\n%s",
                argv0, verify::interp_tier_names().c_str(),
                core::EngineRegistry::builtin().help().c_str(),
                core::PolicyRegistry::builtin().help().c_str());
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string engine_id = "rustbrain";
    std::string option_spec;  // engines default to model=gpt-4, seed=42
    std::string policy_spec;  // empty = whatever --options says (or paper)
    std::string corpus_path;  // empty = the standard hand-written corpus
    std::string screen_spec;  // empty = honour RUSTBRAIN_SCREEN (default on)
    std::optional<verify::InterpTier> interp;  // empty = RUSTBRAIN_INTERP
    std::size_t limit = 0;  // 0 = whole corpus
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            engine_id = argv[++i];
        } else if (arg == "--options" && i + 1 < argc) {
            option_spec = argv[++i];
        } else if (arg == "--policy" && i + 1 < argc) {
            policy_spec = argv[++i];
        } else if (arg == "--screen" && i + 1 < argc) {
            screen_spec = argv[++i];
            if (screen_spec != "on" && screen_spec != "off") {
                return usage(argv[0]);
            }
        } else if (arg == "--interp" && i + 1 < argc) {
            const std::string spec = argv[++i];
            interp = verify::parse_interp_tier(spec);
            if (!interp) {
                std::printf("error: --interp expects one of %s, got '%s'\n\n",
                            verify::interp_tier_names().c_str(), spec.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--corpus" && i + 1 < argc) {
            corpus_path = argv[++i];
        } else if (arg == "--limit" && i + 1 < argc) {
            const char* text = argv[++i];
            char* end = nullptr;
            const unsigned long value = std::strtoul(text, &end, 10);
            if (end == text || *end != '\0') {
                std::printf("error: --limit expects a number, got '%s'\n\n", text);
                return usage(argv[0]);
            }
            limit = static_cast<std::size_t>(value);
        } else {
            return usage(argv[0]);
        }
    }

    // A bad --corpus path or a malformed file prints a clear error, not a
    // stack trace.
    dataset::Corpus corpus;
    if (corpus_path.empty()) {
        corpus = dataset::Corpus::standard();
    } else {
        try {
            corpus = gen::load_corpus(corpus_path);
        } catch (const std::exception& error) {
            std::printf("error: %s\n", error.what());
            return 1;
        }
        std::printf("corpus: %zu cases from %s\n", corpus.size(),
                    corpus_path.c_str());
    }
    kb::KnowledgeBase kbase;
    const kb::SeedStats seeded = kb::seed_from_corpus(corpus, kbase);
    std::printf("knowledge base: %zu entries (%zu verified fixes)\n",
                seeded.entries_added, seeded.rules_verified);

    core::EngineBuildContext context;
    context.knowledge_base = &kbase;
    // One explicit oracle for the whole campaign so --screen can pin the
    // pre-screening tier either way (empty spec honours RUSTBRAIN_SCREEN);
    // the process-wide cache is still shared. Screening never changes
    // results, only the stats printed below.
    verify::OracleOptions oracle_options;
    if (!screen_spec.empty()) oracle_options.screening = screen_spec == "on";
    if (interp) oracle_options.interp = interp;
    const auto oracle =
        std::make_shared<verify::Oracle>(std::move(oracle_options));
    context.oracle = oracle;
    core::FeedbackStore feedback;

    // Validate the options and engine id up front so a typo prints the
    // table, not a stack trace.
    core::EngineOptions options;
    std::unique_ptr<core::RepairEngine> engine;
    try {
        options = core::EngineOptions::parse(option_spec);
        // A bad --policy id throws at build, listing the policy registry.
        if (!policy_spec.empty()) core::set_policy_option(options, policy_spec);
        core::EngineBuildContext focused_context = context;
        focused_context.feedback = &feedback;
        engine = core::EngineRegistry::builtin().build(engine_id, options,
                                                       focused_context);
    } catch (const std::invalid_argument& error) {
        std::printf("error: %s\n\n", error.what());
        return usage(argv[0]);
    }
    std::printf("engine: %s (%s)\n", engine->name().c_str(),
                engine->config_summary().c_str());
    std::printf("interpreter tier: %s\n\n",
                verify::to_string(oracle->interp_tier()));

    const std::vector<const dataset::UbCase*> focused =
        corpus.by_category(miri::UbCategory::DanglingPointer);
    if (limit == 0 && !focused.empty()) {
        // Campaign over one category to showcase self-learning: the third
        // sibling benefits from feedback recorded on the first two, so the
        // sweep is ordered (run_sequential), not parallel. Engines without
        // a feedback loop simply repair the siblings independently.
        std::printf("== focused campaign: danglingpointer ==\n");
        const core::BatchReport focused_report = core::BatchRunner::run_sequential(
            focused, [&](const dataset::UbCase& ub_case) {
                return engine->repair(ub_case);
            });
        for (std::size_t i = 0; i < focused.size(); ++i) {
            const core::CaseResult& result = focused_report.results[i];
            std::printf("  %-42s %s/%s  %5.1fs  rule=%s%s\n",
                        focused[i]->id.c_str(), result.pass ? "pass" : "FAIL",
                        result.exec ? "exec" : "div ", result.time_ms / 1000.0,
                        result.winning_rule.c_str(),
                        result.kb_skipped_by_feedback ? "  [feedback: skipped KB]"
                                                      : "");
        }
        std::printf("\n");
    }

    // Full campaign, sharded across the hardware. Each case starts from a
    // private copy of the feedback snapshot learned above (empty when the
    // focused phase was skipped), so the outcome does not depend on
    // scheduling or worker count.
    std::vector<const dataset::UbCase*> cases;
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        if (limit != 0 && cases.size() >= limit) break;
        cases.push_back(&ub_case);
    }
    const std::size_t workers = support::ThreadPool::hardware_threads();
    std::printf("== full campaign (%zu modules, %zu workers) ==\n", cases.size(),
                workers);
    const core::BatchRunner runner(engine_id, options, context,
                                   core::BatchOptions{workers}, &feedback);
    const core::BatchReport report = runner.run(cases);

    std::map<std::string, int> by_rule;
    int kb_skips = 0;
    int escalations = 0;
    int early_stops = 0;
    int screens = 0;
    int screen_proven = 0;
    int screen_likely = 0;
    int screen_unknown = 0;
    for (const core::CaseResult& result : report.results) {
        kb_skips += result.kb_skipped_by_feedback;
        escalations += result.escalations;
        early_stops += result.early_stops;
        screens += result.screens;
        screen_proven += result.screen_proven_safe;
        screen_likely += result.screen_likely_ub;
        screen_unknown += result.screen_unknown;
        if (result.pass && !result.winning_rule.empty()) {
            ++by_rule[result.winning_rule];
        }
    }
    std::printf("repaired %d/%zu (%d semantically verified), %.1f virtual "
                "minutes total, %d KB lookups skipped by feedback, "
                "%.0f ms wall clock\n",
                report.pass_total(), cases.size(), report.exec_total(),
                report.virtual_ms_total() / 60000.0, kb_skips, report.wall_ms);
    std::printf("thinking policy: %d escalations, %d early stops\n",
                escalations, early_stops);
    std::printf("static pre-screen: %d verdicts (%d proven-safe, %d likely-ub, "
                "%d unknown)\n\n",
                screens, screen_proven, screen_likely, screen_unknown);

    support::TextTable table({"winning strategy", "repairs"});
    for (const auto& [rule, count] : by_rule) {
        table.add_row({rule, std::to_string(count)});
    }
    std::printf("%s", table.render().c_str());

    // Both campaign phases and the judge verified through the one campaign
    // oracle; its repeat runs over the same programs are where the
    // memoization pays.
    std::printf("\nverification oracle: %s\n", oracle->stats_summary().c_str());
    std::printf("static pre-screen: %s\n", oracle->screen_summary().c_str());
    return 0;
}
