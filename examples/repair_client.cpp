// repair_client: send repair requests to a running repair_server.
//
//   $ ./examples/repair_client --port 7411 --case danglingpointer/use_after_free_0
//   $ ./examples/repair_client --port 7411 --engine standalone --count 3
//   $ ./examples/repair_client --port 7411 --count 8 --pipeline 4
//                                # windowed pipelining: up to 4 in flight
//   $ ./examples/repair_client --port 7411 --dump-result   # raw wire render
//   $ ./examples/repair_client --port 7411 --bad-request   # error-path probe
//
// Cases come from the standard corpus (or --corpus <file>); --case selects
// by id, default is the first case. --dump-result prints the deterministic
// serve::render_case_result rendering, which is what CI byte-compares
// against a serial BatchRunner sweep. --bad-request ships a garbage frame
// and expects a well-formed ok=0 error response back.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "core/engine_registry.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/corpus.hpp"
#include "gen/corpus_io.hpp"
#include "serve/client.hpp"
#include "serve/wire.hpp"

using namespace rustbrain;

namespace {

int usage(const char* argv0) {
    std::printf("usage: %s --port N [--case <id>] [--corpus <file>]\n"
                "          [--engine <id>] [--options k=v,...]\n"
                "          [--policy <id>[,k=v...]] [--feedback]\n"
                "          [--count N] [--pipeline N] [--dump-result]\n"
                "          [--bad-request]\n\n"
                "available engines:\n%s\navailable policies:\n%s",
                argv0, core::EngineRegistry::builtin().help().c_str(),
                core::PolicyRegistry::builtin().help().c_str());
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::uint16_t port = 0;
    bool have_port = false;
    std::string case_id;
    std::string corpus_path;
    serve::RepairRequest request;
    std::size_t count = 1;
    std::size_t pipeline = 1;
    bool dump_result = false;
    bool bad_request = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
            port = static_cast<std::uint16_t>(
                std::strtoul(argv[++i], nullptr, 10));
            have_port = true;
        } else if (arg == "--case" && i + 1 < argc) {
            case_id = argv[++i];
        } else if (arg == "--corpus" && i + 1 < argc) {
            corpus_path = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
            request.engine = argv[++i];
        } else if (arg == "--options" && i + 1 < argc) {
            request.options = argv[++i];
        } else if (arg == "--policy" && i + 1 < argc) {
            request.policy = argv[++i];
        } else if (arg == "--feedback") {
            request.use_feedback = true;
        } else if (arg == "--count" && i + 1 < argc) {
            count = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--pipeline" && i + 1 < argc) {
            pipeline = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--dump-result") {
            dump_result = true;
        } else if (arg == "--bad-request") {
            bad_request = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (!have_port) return usage(argv[0]);

    try {
        serve::RepairClient client(port);
        if (bad_request) {
            const std::string raw =
                client.roundtrip_raw("this is not a rustbrain request");
            const serve::RepairResponse response =
                serve::parse_response(raw);
            if (response.ok) {
                std::printf("error: server accepted a garbage frame\n");
                return 1;
            }
            std::printf("bad request rejected as expected: %s\n",
                        response.error.c_str());
            return 0;
        }

        dataset::Corpus corpus = corpus_path.empty()
                                     ? dataset::Corpus::standard()
                                     : gen::load_corpus(corpus_path);
        const dataset::UbCase* ub_case =
            case_id.empty() ? &corpus.cases().front() : corpus.find(case_id);
        if (ub_case == nullptr) {
            std::printf("error: no case '%s' in the corpus (%zu cases)\n",
                        case_id.c_str(), corpus.size());
            return 1;
        }
        request.ub_case = *ub_case;

        // Pipelined: keep up to `pipeline` requests outstanding. The server
        // answers in request order per connection, so response i belongs to
        // ticket cli-i regardless of the window.
        if (pipeline == 0) pipeline = 1;
        std::size_t sent = 0;
        for (std::size_t i = 0; i < count; ++i) {
            while (sent < count && sent - i < pipeline) {
                request.ticket = "cli-" + std::to_string(sent);
                client.send_async(request);
                ++sent;
            }
            const serve::RepairResponse response = client.recv_one();
            if (response.shed) {
                // Overload shedding is an expected answer under pipelined
                // load, not a client failure: report and keep reading.
                std::printf("%s: SHED retry_after %.1f ms (%s)\n",
                            response.ticket.c_str(), response.retry_after_ms,
                            response.error.c_str());
                continue;
            }
            if (!response.ok) {
                std::printf("error response: %s\n", response.error.c_str());
                return 1;
            }
            if (dump_result) {
                std::printf("%s",
                            serve::render_case_result(response.result)
                                .c_str());
            } else {
                std::printf("%s: %s/%s rule=%s %.1f virtual s "
                            "(queue %.2f ms, service %.2f ms, worker %llu)\n",
                            response.result.case_id.c_str(),
                            response.result.pass ? "pass" : "FAIL",
                            response.result.exec ? "exec" : "div ",
                            response.result.winning_rule.c_str(),
                            response.result.time_ms / 1000.0,
                            response.queue_ms, response.service_ms,
                            static_cast<unsigned long long>(response.worker));
            }
        }
    } catch (const std::exception& error) {
        std::printf("error: %s\n", error.what());
        return 1;
    }
    return 0;
}
