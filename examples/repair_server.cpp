// repair_server: stand up the persistent repair service on a loopback
// socket and serve framed repair requests until stopped.
//
//   $ ./examples/repair_server --port 7411
//   $ ./examples/repair_server --port 0 --port-file /tmp/port --serve-once 40
//                                # CI shape: ephemeral port, bounded run
//   $ ./examples/repair_server --engine fixed-pipeline --workers 4
//
// --engine/--policy set the defaults applied to requests that leave those
// fields empty; both are validated against the registries at startup, so a
// typo prints the help tables instead of failing every request later. The
// knowledge base is seeded from the standard corpus (or --corpus <file>).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>

#include "core/engine_registry.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/corpus.hpp"
#include "gen/corpus_io.hpp"
#include "kb/seed.hpp"
#include "serve/server.hpp"

using namespace rustbrain;

namespace {

int usage(const char* argv0) {
    std::printf("usage: %s [--port N] [--port-file <path>] [--workers N]\n"
                "          [--engine <id>] [--policy <id>[,k=v...]]\n"
                "          [--serve-once N] [--corpus <file>]\n"
                "          [--frontend reactor|threads] [--max-inflight N]\n"
                "          [--max-queue-ms X] [--max-connections N]\n"
                "          [--stats]\n\n"
                "available engines:\n%s\navailable policies:\n%s",
                argv0, core::EngineRegistry::builtin().help().c_str(),
                core::PolicyRegistry::builtin().help().c_str());
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    serve::ServerOptions options;
    std::string port_file;
    std::string corpus_path;
    bool print_stats = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
            options.port = static_cast<std::uint16_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--port-file" && i + 1 < argc) {
            port_file = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            options.service.workers = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--engine" && i + 1 < argc) {
            options.service.default_engine = argv[++i];
        } else if (arg == "--policy" && i + 1 < argc) {
            options.service.default_policy = argv[++i];
        } else if (arg == "--serve-once" && i + 1 < argc) {
            options.max_requests = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--corpus" && i + 1 < argc) {
            corpus_path = argv[++i];
        } else if (arg == "--frontend" && i + 1 < argc) {
            const std::string name = argv[++i];
            if (name == "reactor") {
                options.frontend = serve::Frontend::Reactor;
            } else if (name == "threads") {
                options.frontend = serve::Frontend::Threads;
            } else {
                return usage(argv[0]);
            }
        } else if (arg == "--max-inflight" && i + 1 < argc) {
            options.service.max_inflight = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--max-queue-ms" && i + 1 < argc) {
            options.service.max_queue_ms = std::strtod(argv[++i], nullptr);
        } else if (arg == "--max-connections" && i + 1 < argc) {
            options.max_connections = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--stats") {
            print_stats = true;
        } else {
            return usage(argv[0]);
        }
    }

    dataset::Corpus corpus;
    try {
        corpus = corpus_path.empty() ? dataset::Corpus::standard()
                                     : gen::load_corpus(corpus_path);
    } catch (const std::exception& error) {
        std::printf("error: %s\n", error.what());
        return 1;
    }
    kb::KnowledgeBase kbase;
    const kb::SeedStats seeded = kb::seed_from_corpus(corpus, kbase);
    options.service.knowledge_base = &kbase;

    try {
        serve::RepairServer server(options);
        std::printf("repair_server: listening on 127.0.0.1:%u (%zu workers, "
                    "default engine %s, kb %zu entries)\n",
                    server.port(), server.service().workers(),
                    options.service.default_engine.c_str(),
                    seeded.entries_added);
        std::fflush(stdout);
        if (!port_file.empty()) {
            std::ofstream out(port_file);
            out << server.port() << "\n";
            if (!out) {
                std::printf("error: cannot write port file %s\n",
                            port_file.c_str());
                return 1;
            }
        }
        server.wait();
        const serve::ServiceStats stats = server.service().stats();
        std::printf("repair_server: served %llu requests (%llu repaired, "
                    "%llu failed), prompt cache %.1f%% hits, "
                    "%llu scheduler steals\n",
                    static_cast<unsigned long long>(server.requests_served()),
                    static_cast<unsigned long long>(stats.completed -
                                                    stats.failed),
                    static_cast<unsigned long long>(stats.failed),
                    100.0 * stats.prompt_cache.hit_rate(),
                    static_cast<unsigned long long>(stats.scheduler.steals));
        if (print_stats) {
            const serve::ServerStats frontend = server.stats();
            std::printf(
                "repair_server: queue_ms p50 %.3f p95 %.3f p99 %.3f, "
                "shed %llu\n"
                "repair_server: frontend accepted %llu rejected %llu "
                "accept_retries %llu loop_wakeups %llu frames %llu/%llu "
                "epollout_arms %llu max_pipeline_depth %llu\n",
                stats.queue_ms_p50, stats.queue_ms_p95, stats.queue_ms_p99,
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(frontend.connections_accepted),
                static_cast<unsigned long long>(frontend.connections_rejected),
                static_cast<unsigned long long>(frontend.accept_retries),
                static_cast<unsigned long long>(frontend.loop_wakeups),
                static_cast<unsigned long long>(frontend.frames_read),
                static_cast<unsigned long long>(frontend.frames_written),
                static_cast<unsigned long long>(frontend.epollout_arms),
                static_cast<unsigned long long>(
                    frontend.max_pipeline_depth));
        }
    } catch (const std::invalid_argument& error) {
        // A bad --engine/--policy default: print the registry tables.
        std::printf("error: %s\n\n", error.what());
        return usage(argv[0]);
    } catch (const std::exception& error) {
        std::printf("error: %s\n", error.what());
        return 1;
    }
    return 0;
}
