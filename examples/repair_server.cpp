// repair_server: stand up the persistent repair service on a loopback
// socket and serve framed repair requests until stopped.
//
//   $ ./examples/repair_server --port 7411
//   $ ./examples/repair_server --port 0 --port-file /tmp/port --serve-once 40
//                                # CI shape: ephemeral port, bounded run
//   $ ./examples/repair_server --engine fixed-pipeline --workers 4
//
// --engine/--policy set the defaults applied to requests that leave those
// fields empty; both are validated against the registries at startup, so a
// typo prints the help tables instead of failing every request later. The
// knowledge base is seeded from the standard corpus (or --corpus <file>).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>

#include "core/engine_registry.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/corpus.hpp"
#include "gen/corpus_io.hpp"
#include "kb/seed.hpp"
#include "serve/server.hpp"

using namespace rustbrain;

namespace {

int usage(const char* argv0) {
    std::printf("usage: %s [--port N] [--port-file <path>] [--workers N]\n"
                "          [--engine <id>] [--policy <id>[,k=v...]]\n"
                "          [--serve-once N] [--corpus <file>]\n\n"
                "available engines:\n%s\navailable policies:\n%s",
                argv0, core::EngineRegistry::builtin().help().c_str(),
                core::PolicyRegistry::builtin().help().c_str());
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    serve::ServerOptions options;
    std::string port_file;
    std::string corpus_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
            options.port = static_cast<std::uint16_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--port-file" && i + 1 < argc) {
            port_file = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            options.service.workers = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--engine" && i + 1 < argc) {
            options.service.default_engine = argv[++i];
        } else if (arg == "--policy" && i + 1 < argc) {
            options.service.default_policy = argv[++i];
        } else if (arg == "--serve-once" && i + 1 < argc) {
            options.max_requests = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--corpus" && i + 1 < argc) {
            corpus_path = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }

    dataset::Corpus corpus;
    try {
        corpus = corpus_path.empty() ? dataset::Corpus::standard()
                                     : gen::load_corpus(corpus_path);
    } catch (const std::exception& error) {
        std::printf("error: %s\n", error.what());
        return 1;
    }
    kb::KnowledgeBase kbase;
    const kb::SeedStats seeded = kb::seed_from_corpus(corpus, kbase);
    options.service.knowledge_base = &kbase;

    try {
        serve::RepairServer server(options);
        std::printf("repair_server: listening on 127.0.0.1:%u (%zu workers, "
                    "default engine %s, kb %zu entries)\n",
                    server.port(), server.service().workers(),
                    options.service.default_engine.c_str(),
                    seeded.entries_added);
        std::fflush(stdout);
        if (!port_file.empty()) {
            std::ofstream out(port_file);
            out << server.port() << "\n";
            if (!out) {
                std::printf("error: cannot write port file %s\n",
                            port_file.c_str());
                return 1;
            }
        }
        server.wait();
        const serve::ServiceStats stats = server.service().stats();
        std::printf("repair_server: served %llu requests (%llu repaired, "
                    "%llu failed), prompt cache %.1f%% hits, "
                    "%llu scheduler steals\n",
                    static_cast<unsigned long long>(server.requests_served()),
                    static_cast<unsigned long long>(stats.completed -
                                                    stats.failed),
                    static_cast<unsigned long long>(stats.failed),
                    100.0 * stats.prompt_cache.hit_rate(),
                    static_cast<unsigned long long>(stats.scheduler.steals));
    } catch (const std::invalid_argument& error) {
        // A bad --engine/--policy default: print the registry tables.
        std::printf("error: %s\n\n", error.what());
        return usage(argv[0]);
    } catch (const std::exception& error) {
        std::printf("error: %s\n", error.what());
        return 1;
    }
    return 0;
}
