// Quickstart: detect UB in a mini-Rust program with MiriLite, then repair
// it end to end with any registered engine.
//
//   $ ./examples/quickstart                       # rustbrain (default)
//   $ ./examples/quickstart --engine standalone
//   $ ./examples/quickstart --engine rustbrain --options model=gpt-3.5
//
// Walks through the exact pipeline of the paper's Fig. 2 on a classic
// use-after-free and prints every stage's result. Engines come from
// core::EngineRegistry — a bad --engine id prints the available table.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/engine_registry.hpp"
#include "dataset/case.hpp"
#include "miri/mirilite.hpp"

using namespace rustbrain;

namespace {

int usage(const char* argv0) {
    std::printf("usage: %s [--engine <id>] [--options k=v,k=v...]\n\n"
                "available engines:\n%s",
                argv0, core::EngineRegistry::builtin().help().c_str());
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string engine_id = "rustbrain";
    std::string option_spec;  // engines default to model=gpt-4, seed=42
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            engine_id = argv[++i];
        } else if (arg == "--options" && i + 1 < argc) {
            option_spec = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }

    // A mini-Rust program with a seeded use-after-free: the buffer is
    // deallocated before the last read.
    const std::string buggy = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        dealloc(buf, 8, 8);
        print_int(*slot + 1);
    }
}
)";

    // Stage F1: run the Miri-style detector.
    std::printf("=== MiriLite detection ===\n");
    miri::MiriLite miri;
    const miri::MiriReport report = miri.test_source(buggy, {{}});
    std::printf("%s\n", report.summary().c_str());

    // Package the problem as a corpus-style case. The reference fix defines
    // the expected semantics ("print 42, then free the buffer").
    dataset::UbCase ub_case;
    ub_case.id = "quickstart/use_after_free";
    ub_case.category = miri::UbCategory::DanglingPointer;
    ub_case.buggy_source = buggy;
    ub_case.reference_fix = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        print_int(*slot + 1);
        dealloc(buf, 8, 8);
    }
}
)";
    ub_case.inputs = {{}};
    ub_case.difficulty = 1;

    // Build the selected engine from the registry (no knowledge base is
    // needed for a routine shape like this) and repair.
    core::FeedbackStore feedback;
    core::EngineBuildContext context;
    context.feedback = &feedback;
    std::unique_ptr<core::RepairEngine> engine;
    try {
        engine = core::EngineRegistry::builtin().build(
            engine_id, core::EngineOptions::parse(option_spec), context);
    } catch (const std::invalid_argument& error) {
        std::printf("error: %s\n\n", error.what());
        return usage(argv[0]);
    }

    std::printf("=== %s repair (%s) ===\n", engine->name().c_str(),
                engine->config_summary().c_str());
    const core::CaseResult result = engine->repair(ub_case);

    std::printf("pass (Miri clean): %s\n", result.pass ? "yes" : "no");
    std::printf("exec (semantics match): %s\n", result.exec ? "yes" : "no");
    std::printf("winning strategy: %s\n", result.winning_rule.c_str());
    std::printf("virtual repair time: %.1fs over %llu model calls\n",
                result.time_ms / 1000.0,
                static_cast<unsigned long long>(result.llm_calls));
    std::printf("error trajectory:");
    for (std::size_t n : result.error_trajectory) {
        std::printf(" %zu", n);
    }
    std::printf("\n\n=== repaired program ===\n%s", result.final_source.c_str());

    // Confirm the repair independently.
    const miri::MiriReport verify = miri.test_source(result.final_source, {{}});
    std::printf("\nindependent MiriLite verdict: %s\n",
                verify.passed() ? "pass" : verify.summary().c_str());
    return result.pass ? 0 : 1;
}
