// Quickstart: detect UB in a mini-Rust program with MiriLite, then repair
// it end to end with any registered engine.
//
//   $ ./examples/quickstart                       # rustbrain (default)
//   $ ./examples/quickstart --engine standalone
//   $ ./examples/quickstart --engine rustbrain --options model=gpt-3.5
//   $ ./examples/quickstart --policy budget,ms=1500
//   $ ./examples/quickstart --screen off
//   $ ./examples/quickstart --interp vm              # bytecode-VM tier
//   $ ./examples/quickstart --corpus forged.rbc --case gen/alloc/leak_s42_0000
//
// Walks through the exact pipeline of the paper's Fig. 2 on a classic
// use-after-free and prints every stage's result. Engines come from
// core::EngineRegistry and thinking policies from core::PolicyRegistry —
// a bad --engine or --policy id prints the matching table. With --corpus
// the case comes from a saved corpus file (gen::load_corpus) instead of
// the built-in example; --case picks an id from that file (default: its
// first case).
#include <cstdio>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/engine_registry.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/case.hpp"
#include "gen/corpus_io.hpp"
#include "verify/oracle.hpp"

using namespace rustbrain;

namespace {

int usage(const char* argv0) {
    std::printf("usage: %s [--engine <id>] [--options k=v,k=v...]\n"
                "          [--policy <id>[,k=v...]] [--screen on|off]\n"
                "          [--interp %s]\n"
                "          [--corpus <file>] [--case <id>]\n\n"
                "available engines:\n%s\navailable policies:\n%s",
                argv0, verify::interp_tier_names().c_str(),
                core::EngineRegistry::builtin().help().c_str(),
                core::PolicyRegistry::builtin().help().c_str());
    return 2;
}

/// The built-in demo: a mini-Rust program with a seeded use-after-free (the
/// buffer is deallocated before the last read).
dataset::UbCase builtin_case() {
    dataset::UbCase ub_case;
    ub_case.id = "quickstart/use_after_free";
    ub_case.category = miri::UbCategory::DanglingPointer;
    ub_case.buggy_source = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        dealloc(buf, 8, 8);
        print_int(*slot + 1);
    }
}
)";
    // The reference fix defines the expected semantics ("print 42, then
    // free the buffer").
    ub_case.reference_fix = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        print_int(*slot + 1);
        dealloc(buf, 8, 8);
    }
}
)";
    ub_case.inputs = {{}};
    ub_case.difficulty = 1;
    return ub_case;
}

}  // namespace

int main(int argc, char** argv) {
    std::string engine_id = "rustbrain";
    std::string option_spec;  // engines default to model=gpt-4, seed=42
    std::string policy_spec;  // empty = whatever --options says (or paper)
    std::string corpus_path;
    std::string case_id;
    std::string screen_spec;  // empty = honour RUSTBRAIN_SCREEN (default on)
    std::optional<verify::InterpTier> interp;  // empty = RUSTBRAIN_INTERP
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            engine_id = argv[++i];
        } else if (arg == "--options" && i + 1 < argc) {
            option_spec = argv[++i];
        } else if (arg == "--policy" && i + 1 < argc) {
            policy_spec = argv[++i];
        } else if (arg == "--screen" && i + 1 < argc) {
            screen_spec = argv[++i];
            if (screen_spec != "on" && screen_spec != "off") {
                return usage(argv[0]);
            }
        } else if (arg == "--interp" && i + 1 < argc) {
            const std::string spec = argv[++i];
            interp = verify::parse_interp_tier(spec);
            if (!interp) {
                std::printf("error: --interp expects one of %s, got '%s'\n\n",
                            verify::interp_tier_names().c_str(), spec.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--corpus" && i + 1 < argc) {
            corpus_path = argv[++i];
        } else if (arg == "--case" && i + 1 < argc) {
            case_id = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }
    if (!case_id.empty() && corpus_path.empty()) {
        std::printf("error: --case requires --corpus\n\n");
        return usage(argv[0]);
    }

    dataset::UbCase ub_case;
    if (corpus_path.empty()) {
        ub_case = builtin_case();
    } else {
        // A bad path or malformed file must print a clear error, not a
        // stack trace.
        try {
            const dataset::Corpus corpus = gen::load_corpus(corpus_path);
            if (corpus.size() == 0) {
                std::printf("error: corpus %s contains no cases\n",
                            corpus_path.c_str());
                return 1;
            }
            const dataset::UbCase* chosen =
                case_id.empty() ? &corpus.cases().front()
                                : corpus.find(case_id);
            if (chosen == nullptr) {
                std::printf("error: corpus %s has no case '%s'\n",
                            corpus_path.c_str(), case_id.c_str());
                return 1;
            }
            ub_case = *chosen;
        } catch (const std::exception& error) {
            std::printf("error: %s\n", error.what());
            return 1;
        }
        std::printf("loaded case %s from %s\n\n", ub_case.id.c_str(),
                    corpus_path.c_str());
    }

    // Stage F1: run the Miri-style detector through the verification
    // oracle (the single entry point the whole repair stack shares — the
    // engine's own verifications below reuse this compile).
    std::printf("=== MiriLite detection ===\n");
    // An explicit oracle so --screen can pin the pre-screening tier either
    // way (empty spec honours RUSTBRAIN_SCREEN); the process-wide cache is
    // still shared. Screening never changes results, only the stats below.
    verify::OracleOptions oracle_options;
    if (!screen_spec.empty()) oracle_options.screening = screen_spec == "on";
    if (interp) oracle_options.interp = interp;
    const auto shared_oracle =
        std::make_shared<verify::Oracle>(std::move(oracle_options));
    const verify::Oracle& oracle = *shared_oracle;
    std::printf("interpreter tier: %s\n",
                verify::to_string(oracle.interp_tier()));
    const miri::MiriReport report =
        oracle.test_source(ub_case.buggy_source, ub_case.inputs);
    std::printf("%s\n", report.summary().c_str());

    // Build the selected engine from the registry (no knowledge base is
    // needed for a routine shape like this) and repair.
    core::FeedbackStore feedback;
    core::EngineBuildContext context;
    context.feedback = &feedback;
    context.oracle = shared_oracle;
    std::unique_ptr<core::RepairEngine> engine;
    try {
        core::EngineOptions options = core::EngineOptions::parse(option_spec);
        // A bad --policy id throws at build, listing the policy registry.
        if (!policy_spec.empty()) core::set_policy_option(options, policy_spec);
        engine = core::EngineRegistry::builtin().build(engine_id, options,
                                                       context);
    } catch (const std::invalid_argument& error) {
        std::printf("error: %s\n\n", error.what());
        return usage(argv[0]);
    }

    std::printf("=== %s repair (%s) ===\n", engine->name().c_str(),
                engine->config_summary().c_str());
    const core::CaseResult result = engine->repair(ub_case);

    std::printf("pass (Miri clean): %s\n", result.pass ? "yes" : "no");
    std::printf("exec (semantics match): %s\n", result.exec ? "yes" : "no");
    std::printf("winning strategy: %s\n", result.winning_rule.c_str());
    std::printf("virtual repair time: %.1fs over %llu model calls\n",
                result.time_ms / 1000.0,
                static_cast<unsigned long long>(result.llm_calls));
    std::printf("thinking switches: %d (%d escalations, %d early stops, "
                "%d skipped attempts)\n",
                result.thinking_switches, result.escalations,
                result.early_stops, result.attempts_skipped);
    std::printf("error trajectory:");
    for (std::size_t n : result.error_trajectory) {
        std::printf(" %zu", n);
    }
    std::printf("\n\n=== repaired program ===\n%s", result.final_source.c_str());

    // Confirm the repair independently.
    const miri::MiriReport verdict =
        oracle.test_source(result.final_source, ub_case.inputs);
    std::printf("\nindependent MiriLite verdict: %s\n",
                verdict.passed() ? "pass" : verdict.summary().c_str());

    std::printf("verification oracle: %s\n", oracle.stats_summary().c_str());
    std::printf("static pre-screen (%d verdicts this case: %d proven-safe, "
                "%d likely-ub, %d unknown): %s\n",
                result.screens, result.screen_proven_safe,
                result.screen_likely_ub, result.screen_unknown,
                oracle.screen_summary().c_str());
    return result.pass ? 0 : 1;
}
