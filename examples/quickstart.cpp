// Quickstart: detect UB in a mini-Rust program with MiriLite, then repair
// it with RustBrain end to end.
//
//   $ ./examples/quickstart
//
// Walks through the exact pipeline of the paper's Fig. 2 on a classic
// use-after-free and prints every stage's result.
#include <cstdio>

#include "core/rustbrain.hpp"
#include "dataset/case.hpp"
#include "miri/mirilite.hpp"

using namespace rustbrain;

int main() {
    // A mini-Rust program with a seeded use-after-free: the buffer is
    // deallocated before the last read.
    const std::string buggy = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        dealloc(buf, 8, 8);
        print_int(*slot + 1);
    }
}
)";

    // Stage F1: run the Miri-style detector.
    std::printf("=== MiriLite detection ===\n");
    miri::MiriLite miri;
    const miri::MiriReport report = miri.test_source(buggy, {{}});
    std::printf("%s\n", report.summary().c_str());

    // Package the problem as a corpus-style case. The reference fix defines
    // the expected semantics ("print 42, then free the buffer").
    dataset::UbCase ub_case;
    ub_case.id = "quickstart/use_after_free";
    ub_case.category = miri::UbCategory::DanglingPointer;
    ub_case.buggy_source = buggy;
    ub_case.reference_fix = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        print_int(*slot + 1);
        dealloc(buf, 8, 8);
    }
}
)";
    ub_case.inputs = {{}};
    ub_case.difficulty = 1;

    // Repair with RustBrain (GPT-4 profile, no knowledge base needed for a
    // routine shape like this).
    std::printf("=== RustBrain repair ===\n");
    core::RustBrainConfig config;
    config.model = "gpt-4";
    config.use_knowledge_base = false;
    core::FeedbackStore feedback;
    core::RustBrain rustbrain(config, nullptr, &feedback);
    const core::CaseResult result = rustbrain.repair(ub_case);

    std::printf("pass (Miri clean): %s\n", result.pass ? "yes" : "no");
    std::printf("exec (semantics match): %s\n", result.exec ? "yes" : "no");
    std::printf("winning strategy: %s\n", result.winning_rule.c_str());
    std::printf("virtual repair time: %.1fs over %llu model calls\n",
                result.time_ms / 1000.0,
                static_cast<unsigned long long>(result.llm_calls));
    std::printf("error trajectory:");
    for (std::size_t n : result.error_trajectory) {
        std::printf(" %zu", n);
    }
    std::printf("\n\n=== repaired program ===\n%s", result.final_source.c_str());

    // Confirm the repair independently.
    const miri::MiriReport verify = miri.test_source(result.final_source, {{}});
    std::printf("\nindependent MiriLite verdict: %s\n",
                verify.passed() ? "pass" : verify.summary().c_str());
    return result.pass ? 0 : 1;
}
