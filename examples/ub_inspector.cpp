// ub_inspector: a Miri-style command-line checker built on the public
// MiriLite API. Feeds every corpus category's buggy and fixed variants
// through the detector and prints a diagnosis matrix — the scenario from
// the paper's introduction: "how unsafe is this unsafe code?"
#include <cstdio>

#include "dataset/corpus.hpp"
#include "miri/mirilite.hpp"
#include "support/table.hpp"

using namespace rustbrain;

int main() {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    miri::MiriLite miri;

    support::TextTable table(
        {"case", "buggy verdict", "fixed verdict", "finding"});
    int shown = 0;
    // First variant of every shape: a representative tour of all fourteen
    // UB categories.
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        if (ub_case.id.back() != '0') continue;
        const miri::MiriReport buggy = miri.test_source(ub_case.buggy_source,
                                                        ub_case.inputs);
        const miri::MiriReport fixed = miri.test_source(ub_case.reference_fix,
                                                        ub_case.inputs);
        std::string finding = "-";
        if (!buggy.findings.empty()) {
            finding = buggy.findings.front().message.substr(0, 60);
        }
        table.add_row({ub_case.id,
                       buggy.passed() ? "pass" : "UB:" + std::string(miri::ub_category_label(
                                                     buggy.findings.front().category)),
                       fixed.passed() ? "pass" : "STILL FAILING",
                       finding});
        ++shown;
    }
    std::printf("== MiriLite diagnosis across %d representative cases ==\n\n%s\n",
                shown, table.render().c_str());
    std::printf("every buggy variant is flagged with its category; every "
                "developer fix is clean.\n");
    return 0;
}
