// corpus_forge: the Corpus Forge CLI — procedurally generate a validated UB
// corpus at a fixed seed, report what was built, and optionally persist it.
//
//   $ ./examples/corpus_forge --seed 42 --count 200
//   $ ./examples/corpus_forge --count 64 --generators panic,datarace --out c.rbc
//   $ ./examples/corpus_forge --count 32 --gen-options depth=4,padding=5 --sweep
//
// Every emitted case is rejection-sampled until it parses, typechecks,
// fails MiriLite with its declared category, and its reference fix passes —
// then the whole corpus is re-validated through dataset::validate_corpus as
// an independent check. Same seed + options => byte-identical output (the
// printed fingerprint makes that visible; --out makes it a file you can
// cmp). With --out the saved file is immediately re-loaded and compared
// byte-for-byte against the in-memory serialization. With --sweep the
// forged corpus is run end to end through core::BatchRunner under every
// engine in core::EngineRegistry.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "gen/corpus_io.hpp"
#include "gen/forge.hpp"
#include "gen/registry.hpp"
#include "kb/seed.hpp"
#include "support/hashing.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace rustbrain;

namespace {

int usage(const char* argv0) {
    std::printf(
        "usage: %s [--seed S] [--count N] [--generators id,id,...]\n"
        "          [--gen-options k=v,...] [--out FILE] [--sweep]\n\n"
        "available generators:\n%s\n"
        "generator options: depth (max block nesting), padding (max dead-code\n"
        "statements), helpers (on/off — never-called helper functions)\n",
        argv0, gen::GeneratorRegistry::builtin().help().c_str());
    return 2;
}

bool parse_u64_arg(const char* text, std::uint64_t& out) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') return false;
    out = value;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    gen::ForgeOptions options;
    options.count = 100;
    std::string out_path;
    std::string option_spec;
    bool sweep = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::uint64_t value = 0;
        if (arg == "--seed" && i + 1 < argc) {
            if (!parse_u64_arg(argv[++i], options.seed)) {
                std::printf("error: --seed expects a number, got '%s'\n\n",
                            argv[i]);
                return usage(argv[0]);
            }
        } else if (arg == "--count" && i + 1 < argc) {
            if (!parse_u64_arg(argv[++i], value)) {
                std::printf("error: --count expects a number, got '%s'\n\n",
                            argv[i]);
                return usage(argv[0]);
            }
            options.count = static_cast<std::size_t>(value);
        } else if (arg == "--generators" && i + 1 < argc) {
            options.generators = support::split(argv[++i], ',');
        } else if (arg == "--gen-options" && i + 1 < argc) {
            option_spec = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--sweep") {
            sweep = true;
        } else {
            return usage(argv[0]);
        }
    }

    // Forge. Bad generator ids/options print the table, not a stack trace.
    gen::ForgeStats stats;
    dataset::Corpus corpus;
    try {
        options.generator_options = support::OptionMap::parse(option_spec);
        corpus = gen::forge_corpus(options, &stats);
    } catch (const std::invalid_argument& error) {
        std::printf("error: %s\n\n", error.what());
        return usage(argv[0]);
    } catch (const std::exception& error) {
        std::printf("error: %s\n", error.what());
        return 1;
    }

    std::printf("forged %zu cases at seed %llu (%zu attempts: %zu rejected by "
                "parse, %zu by typecheck, %zu by validation)\n",
                corpus.size(),
                static_cast<unsigned long long>(options.seed), stats.attempts,
                stats.rejected_parse, stats.rejected_typecheck,
                stats.rejected_validation);

    // Independent full-corpus validation (the same bar the standard corpus
    // is held to by the integration tests).
    const std::vector<dataset::CaseValidation> validations =
        dataset::validate_corpus(corpus);
    std::size_t ok = 0;
    for (const dataset::CaseValidation& v : validations) {
        if (v.ok()) {
            ++ok;
        } else {
            std::printf("INVALID %s: %s\n", v.id.c_str(), v.detail.c_str());
        }
    }
    std::printf("validate_corpus: %zu/%zu ok\n", ok, validations.size());

    // Category table.
    std::map<miri::UbCategory, std::size_t> counts;
    std::map<miri::UbCategory, int> difficulty_sum;
    for (const dataset::UbCase& c : corpus.cases()) {
        ++counts[c.category];
        difficulty_sum[c.category] += c.difficulty;
    }
    support::TextTable table({"category", "cases", "avg difficulty"});
    for (miri::UbCategory category : corpus.categories()) {
        const std::size_t n = counts[category];
        table.add_row({miri::ub_category_label(category), std::to_string(n),
                       support::format_double(
                           n == 0 ? 0.0
                                  : static_cast<double>(difficulty_sum[category]) /
                                        static_cast<double>(n),
                           2)});
    }
    std::printf("%s", table.render().c_str());

    const std::string serialized = gen::corpus_to_string(corpus);
    std::printf("corpus fingerprint: %016llx (%zu bytes serialized)\n",
                static_cast<unsigned long long>(support::fnv1a64(serialized)),
                serialized.size());

    if (!out_path.empty()) {
        try {
            gen::save_corpus(corpus, out_path);
            const dataset::Corpus reloaded = gen::load_corpus(out_path);
            if (gen::corpus_to_string(reloaded) != serialized) {
                std::printf("BUG: reloaded corpus differs from the saved "
                            "one\n");
                return 1;
            }
            std::printf("saved %zu cases to %s (reload verified "
                        "byte-identical)\n",
                        reloaded.size(), out_path.c_str());
        } catch (const std::exception& error) {
            std::printf("error: %s\n", error.what());
            return 1;
        }
    }

    if (sweep) {
        // The forged corpus must be a drop-in workload for the whole engine
        // stack: knowledge base seeding + a BatchRunner sweep per engine.
        kb::KnowledgeBase kbase;
        const kb::SeedStats seeded = kb::seed_from_corpus(corpus, kbase);
        std::printf("\nknowledge base from forged corpus: %zu entries "
                    "(%zu verified fixes)\n",
                    seeded.entries_added, seeded.rules_verified);
        core::EngineBuildContext context;
        context.knowledge_base = &kbase;
        support::TextTable sweep_table(
            {"engine", "pass", "exec", "virtual minutes"});
        for (const std::string& id : core::EngineRegistry::builtin().ids()) {
            const core::BatchRunner runner(id, core::EngineOptions{}, context);
            const core::BatchReport report = runner.run(corpus);
            sweep_table.add_row(
                {id,
                 std::to_string(report.pass_total()) + "/" +
                     std::to_string(corpus.size()),
                 std::to_string(report.exec_total()),
                 support::format_double(report.virtual_ms_total() / 60000.0,
                                        1)});
        }
        std::printf("%s", sweep_table.render().c_str());
    }

    return ok == validations.size() ? 0 : 1;
}
