#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace rustbrain::support {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVariance) {
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats.add(x);
    }
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleVarianceZero) {
    RunningStats stats;
    stats.add(3.5);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
}

TEST(ZCriticalTest, KnownValues) {
    EXPECT_NEAR(z_critical(0.95), 1.96, 0.001);
    EXPECT_NEAR(z_critical(0.99), 2.576, 0.001);
    EXPECT_NEAR(z_critical(0.90), 1.645, 0.001);
}

TEST(ZCriticalTest, BisectionPath) {
    // 0.80 is not a table entry; check against the known value 1.2816.
    EXPECT_NEAR(z_critical(0.80), 1.2816, 0.001);
}

TEST(ZCriticalTest, RejectsOutOfRange) {
    EXPECT_THROW(z_critical(0.0), std::invalid_argument);
    EXPECT_THROW(z_critical(1.0), std::invalid_argument);
}

TEST(NormalCdfTest, Symmetry) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.96) + normal_cdf(-1.96), 1.0, 1e-12);
}

TEST(WilsonTest, ContainsPointEstimate) {
    const auto ci = wilson_interval(80, 100);
    EXPECT_TRUE(ci.contains(0.8));
    EXPECT_GT(ci.lower, 0.7);
    EXPECT_LT(ci.upper, 0.9);
}

TEST(WilsonTest, ZeroTrialsIsFullInterval) {
    const auto ci = wilson_interval(0, 0);
    EXPECT_DOUBLE_EQ(ci.lower, 0.0);
    EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(WilsonTest, BoundaryRates) {
    const auto none = wilson_interval(0, 50);
    EXPECT_DOUBLE_EQ(none.lower, 0.0);
    EXPECT_GT(none.upper, 0.0);
    const auto all = wilson_interval(50, 50);
    EXPECT_DOUBLE_EQ(all.upper, 1.0);
    EXPECT_LT(all.lower, 1.0);
}

TEST(WilsonTest, RejectsImpossibleCounts) {
    EXPECT_THROW(wilson_interval(5, 4), std::invalid_argument);
}

TEST(WilsonTest, WidthShrinksWithN) {
    const auto small = wilson_interval(8, 10);
    const auto large = wilson_interval(800, 1000);
    EXPECT_LT(large.width(), small.width());
}

// Property-style sweep: Wilson interval always inside [0,1] and contains p.
class WilsonSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WilsonSweep, ValidInterval) {
    const auto [success_pct, trials] = GetParam();
    const std::size_t successes =
        static_cast<std::size_t>(trials) * static_cast<std::size_t>(success_pct) / 100;
    const auto ci = wilson_interval(successes, static_cast<std::size_t>(trials));
    EXPECT_GE(ci.lower, 0.0);
    EXPECT_LE(ci.upper, 1.0);
    EXPECT_LE(ci.lower, ci.upper);
    const double p = static_cast<double>(successes) / trials;
    EXPECT_TRUE(ci.contains(p));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WilsonSweep,
    ::testing::Combine(::testing::Values(0, 10, 50, 90, 100),
                       ::testing::Values(1, 5, 20, 100, 1000)));

TEST(MeanIntervalTest, CentersOnMean) {
    RunningStats stats;
    for (int i = 0; i < 100; ++i) {
        stats.add(i % 2 == 0 ? 1.0 : 0.0);
    }
    const auto ci = mean_interval(stats);
    EXPECT_NEAR((ci.lower + ci.upper) / 2.0, 0.5, 1e-12);
    EXPECT_TRUE(ci.contains(0.5));
}

TEST(MeanOfTest, Basics) {
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
    EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(ReservoirTest, KeepsEverythingBelowCapacityAndExactPercentiles) {
    Reservoir reservoir(100);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.5), 0.0);  // empty => 0.0
    for (int i = 99; i >= 0; --i) reservoir.add(static_cast<double>(i));
    EXPECT_EQ(reservoir.seen(), 100u);
    EXPECT_EQ(reservoir.size(), 100u);
    // Below capacity nothing was dropped: percentiles are exact, over the
    // sorted values regardless of arrival order.
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.50), 49.0);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.95), 94.0);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.99), 98.0);
    EXPECT_DOUBLE_EQ(reservoir.percentile(1.0), 99.0);
}

TEST(ReservoirTest, MemoryStaysBoundedPastCapacity) {
    Reservoir reservoir(64);
    for (int i = 0; i < 10000; ++i) reservoir.add(static_cast<double>(i));
    EXPECT_EQ(reservoir.seen(), 10000u);
    EXPECT_EQ(reservoir.size(), 64u);
    EXPECT_EQ(reservoir.capacity(), 64u);
    // Kept values are a subset of the stream; percentiles stay in range.
    EXPECT_GE(reservoir.percentile(0.0), 0.0);
    EXPECT_LE(reservoir.percentile(1.0), 9999.0);
    EXPECT_LE(reservoir.percentile(0.5), reservoir.percentile(0.95));
    EXPECT_LE(reservoir.percentile(0.95), reservoir.percentile(0.99));
}

TEST(ReservoirTest, DeterministicGivenSeedAndArrivalSequence) {
    // The kept set is a pure function of (capacity, seed, stream): two
    // reservoirs fed identically agree on every percentile, and a
    // different seed (almost surely) keeps a different subset.
    Reservoir a(32, 7);
    Reservoir b(32, 7);
    Reservoir c(32, 8);
    for (int i = 0; i < 5000; ++i) {
        const double sample = static_cast<double>((i * 37) % 1000);
        a.add(sample);
        b.add(sample);
        c.add(sample);
    }
    bool seed_changed_something = false;
    for (double fraction : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(a.percentile(fraction), b.percentile(fraction))
            << fraction;
        if (a.percentile(fraction) != c.percentile(fraction)) {
            seed_changed_something = true;
        }
    }
    EXPECT_TRUE(seed_changed_something);
}

TEST(ReservoirTest, LongStreamPercentilesApproximateTheDistribution) {
    // A uniform 0..999 stream far past capacity: the sampled p50 must land
    // near 500 (Algorithm R keeps a uniform subset; with 512 kept samples
    // the p50 standard error is ~13, so ±100 is > 7 sigma).
    Reservoir reservoir(512, 3);
    for (int i = 0; i < 100000; ++i) {
        reservoir.add(static_cast<double>(i % 1000));
    }
    EXPECT_NEAR(reservoir.percentile(0.50), 500.0, 100.0);
    EXPECT_GT(reservoir.percentile(0.95), reservoir.percentile(0.50));
}

}  // namespace
}  // namespace rustbrain::support
