#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace rustbrain::support {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVariance) {
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats.add(x);
    }
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleVarianceZero) {
    RunningStats stats;
    stats.add(3.5);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
}

TEST(ZCriticalTest, KnownValues) {
    EXPECT_NEAR(z_critical(0.95), 1.96, 0.001);
    EXPECT_NEAR(z_critical(0.99), 2.576, 0.001);
    EXPECT_NEAR(z_critical(0.90), 1.645, 0.001);
}

TEST(ZCriticalTest, BisectionPath) {
    // 0.80 is not a table entry; check against the known value 1.2816.
    EXPECT_NEAR(z_critical(0.80), 1.2816, 0.001);
}

TEST(ZCriticalTest, RejectsOutOfRange) {
    EXPECT_THROW(z_critical(0.0), std::invalid_argument);
    EXPECT_THROW(z_critical(1.0), std::invalid_argument);
}

TEST(NormalCdfTest, Symmetry) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.96) + normal_cdf(-1.96), 1.0, 1e-12);
}

TEST(WilsonTest, ContainsPointEstimate) {
    const auto ci = wilson_interval(80, 100);
    EXPECT_TRUE(ci.contains(0.8));
    EXPECT_GT(ci.lower, 0.7);
    EXPECT_LT(ci.upper, 0.9);
}

TEST(WilsonTest, ZeroTrialsIsFullInterval) {
    const auto ci = wilson_interval(0, 0);
    EXPECT_DOUBLE_EQ(ci.lower, 0.0);
    EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(WilsonTest, BoundaryRates) {
    const auto none = wilson_interval(0, 50);
    EXPECT_DOUBLE_EQ(none.lower, 0.0);
    EXPECT_GT(none.upper, 0.0);
    const auto all = wilson_interval(50, 50);
    EXPECT_DOUBLE_EQ(all.upper, 1.0);
    EXPECT_LT(all.lower, 1.0);
}

TEST(WilsonTest, RejectsImpossibleCounts) {
    EXPECT_THROW(wilson_interval(5, 4), std::invalid_argument);
}

TEST(WilsonTest, WidthShrinksWithN) {
    const auto small = wilson_interval(8, 10);
    const auto large = wilson_interval(800, 1000);
    EXPECT_LT(large.width(), small.width());
}

// Property-style sweep: Wilson interval always inside [0,1] and contains p.
class WilsonSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WilsonSweep, ValidInterval) {
    const auto [success_pct, trials] = GetParam();
    const std::size_t successes =
        static_cast<std::size_t>(trials) * static_cast<std::size_t>(success_pct) / 100;
    const auto ci = wilson_interval(successes, static_cast<std::size_t>(trials));
    EXPECT_GE(ci.lower, 0.0);
    EXPECT_LE(ci.upper, 1.0);
    EXPECT_LE(ci.lower, ci.upper);
    const double p = static_cast<double>(successes) / trials;
    EXPECT_TRUE(ci.contains(p));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WilsonSweep,
    ::testing::Combine(::testing::Values(0, 10, 50, 90, 100),
                       ::testing::Values(1, 5, 20, 100, 1000)));

TEST(MeanIntervalTest, CentersOnMean) {
    RunningStats stats;
    for (int i = 0; i < 100; ++i) {
        stats.add(i % 2 == 0 ? 1.0 : 0.0);
    }
    const auto ci = mean_interval(stats);
    EXPECT_NEAR((ci.lower + ci.upper) / 2.0, 0.5, 1e-12);
    EXPECT_TRUE(ci.contains(0.5));
}

TEST(MeanOfTest, Basics) {
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
    EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace rustbrain::support
