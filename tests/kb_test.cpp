#include <gtest/gtest.h>

#include "analysis/vectorize.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "lang/parser.hpp"

namespace rustbrain::kb {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const KnowledgeBase& seeded_kb() {
    static const KnowledgeBase kbase = [] {
        KnowledgeBase k;
        seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

analysis::AstVector probe_for(const std::string& case_id) {
    const auto* ub_case = corpus().find(case_id);
    auto program = lang::try_parse(ub_case->buggy_source);
    return analysis::vectorize(prune_or_whole(*program));
}

TEST(KbTest, SeedingCoversMostCases) {
    EXPECT_GE(seeded_kb().size(), corpus().size() * 9 / 10);
}

TEST(KbTest, SeedStatsConsistent) {
    KnowledgeBase kbase;
    const SeedStats stats = seed_from_corpus(corpus(), kbase);
    EXPECT_EQ(stats.cases_processed, corpus().size());
    EXPECT_EQ(stats.entries_added, kbase.size());
    EXPECT_GE(stats.rules_verified, stats.entries_added);
}

TEST(KbTest, SiblingVariantRetrievedFirst) {
    const auto hits = seeded_kb().query(probe_for("alloc/double_free_0"), 3, 0.6,
                                        "alloc/double_free_0",
                                        miri::UbCategory::Alloc);
    ASSERT_FALSE(hits.empty());
    // The most similar entries are the parametric siblings.
    EXPECT_TRUE(hits[0].entry->source_hint == "alloc/double_free_1" ||
                hits[0].entry->source_hint == "alloc/double_free_2")
        << hits[0].entry->source_hint;
    EXPECT_GT(hits[0].similarity, 0.95);
}

TEST(KbTest, ExcludeHintPreventsSelfRetrieval) {
    const auto hits = seeded_kb().query(probe_for("alloc/double_free_0"), 10, 0.0,
                                        "alloc/double_free_0");
    for (const auto& hit : hits) {
        EXPECT_NE(hit.entry->source_hint, "alloc/double_free_0");
    }
}

TEST(KbTest, CategoryFilterRespected) {
    const auto hits = seeded_kb().query(probe_for("panic/div_zero_0"), 5, 0.0,
                                        "panic/div_zero_0",
                                        miri::UbCategory::Panic);
    ASSERT_FALSE(hits.empty());
    for (const auto& hit : hits) {
        EXPECT_EQ(hit.entry->category, miri::UbCategory::Panic);
    }
}

TEST(KbTest, RetrievedRulesAreVerifiedFixes) {
    const auto hits = seeded_kb().query(probe_for("danglingpointer/use_after_free_0"),
                                        1, 0.6, "danglingpointer/use_after_free_0",
                                        miri::UbCategory::DanglingPointer);
    ASSERT_FALSE(hits.empty());
    ASSERT_FALSE(hits[0].entry->rule_ids.empty());
    EXPECT_EQ(hits[0].entry->rule_ids.front(), "move-dealloc-to-end");
}

TEST(KbTest, MinSimilarityFilters) {
    const auto none = seeded_kb().query(probe_for("alloc/double_free_0"), 5,
                                        1.01, "");
    EXPECT_TRUE(none.empty());
}

TEST(KbTest, TopKLimitsResults) {
    const auto hits = seeded_kb().query(probe_for("alloc/double_free_0"), 2, 0.0);
    EXPECT_LE(hits.size(), 2u);
}

TEST(KbTest, StatisticsAccumulate) {
    KnowledgeBase kbase;
    KbEntry entry;
    entry.source_hint = "x";
    entry.category = miri::UbCategory::Alloc;
    entry.vector[0] = 1.0F;
    kbase.add(entry);
    analysis::AstVector probe{};
    probe[0] = 1.0F;
    const auto first = kbase.query(probe, 3, 0.5);
    const auto second = kbase.query(probe, 3, 0.5);
    EXPECT_EQ(first.size(), 1u);
    EXPECT_EQ(second.size(), 1u);
    EXPECT_EQ(kbase.queries_served(), 2u);
    EXPECT_EQ(kbase.hits_returned(), 2u);
}

TEST(KbTest, PruneOrWholeFallsBackOnUnsafeFreeCode) {
    auto program = lang::try_parse(
        "fn main() { let a = [1, 2, 3]; print_int(a[0] as i64); }");
    const lang::Program result = prune_or_whole(*program);
    // No unsafe code: pruning would leave a skeleton, so the whole program
    // must be used.
    EXPECT_GT(result.node_count(), 5u);
}

}  // namespace
}  // namespace rustbrain::kb
