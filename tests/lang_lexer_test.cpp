#include "lang/lexer.hpp"

#include <gtest/gtest.h>

namespace rustbrain::lang {
namespace {

std::vector<Token> lex_ok(std::string_view source) {
    support::DiagnosticEngine diagnostics;
    Lexer lexer(source, diagnostics);
    auto tokens = lexer.tokenize();
    EXPECT_FALSE(diagnostics.has_errors()) << diagnostics.summary();
    return tokens;
}

TEST(LexerTest, EmptyInputYieldsEof) {
    const auto tokens = lex_ok("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].kind, TokenKind::EndOfFile);
}

TEST(LexerTest, KeywordsAndIdentifiers) {
    const auto tokens = lex_ok("fn main unsafe letx become");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].kind, TokenKind::KwFn);
    EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[1].text, "main");
    EXPECT_EQ(tokens[2].kind, TokenKind::KwUnsafe);
    EXPECT_EQ(tokens[3].kind, TokenKind::Identifier);  // letx is not 'let'
    EXPECT_EQ(tokens[4].kind, TokenKind::KwBecome);
}

TEST(LexerTest, DecimalAndHexLiterals) {
    const auto tokens = lex_ok("42 0x2A 1_000");
    EXPECT_EQ(tokens[0].int_value, 42u);
    EXPECT_EQ(tokens[1].int_value, 42u);
    EXPECT_EQ(tokens[2].int_value, 1000u);
}

TEST(LexerTest, HexLiteralNeedsDigits) {
    support::DiagnosticEngine diagnostics;
    Lexer lexer("0x", diagnostics);
    lexer.tokenize();
    EXPECT_TRUE(diagnostics.has_errors());
}

TEST(LexerTest, LiteralOverflowDiagnosed) {
    support::DiagnosticEngine diagnostics;
    Lexer lexer("99999999999999999999999999", diagnostics);
    lexer.tokenize();
    EXPECT_TRUE(diagnostics.has_errors());
}

TEST(LexerTest, MultiCharOperators) {
    const auto tokens = lex_ok("-> == != <= >= << >> && ||");
    EXPECT_EQ(tokens[0].kind, TokenKind::Arrow);
    EXPECT_EQ(tokens[1].kind, TokenKind::EqEq);
    EXPECT_EQ(tokens[2].kind, TokenKind::NotEq);
    EXPECT_EQ(tokens[3].kind, TokenKind::Le);
    EXPECT_EQ(tokens[4].kind, TokenKind::Ge);
    EXPECT_EQ(tokens[5].kind, TokenKind::Shl);
    EXPECT_EQ(tokens[6].kind, TokenKind::Shr);
    EXPECT_EQ(tokens[7].kind, TokenKind::AmpAmp);
    EXPECT_EQ(tokens[8].kind, TokenKind::PipePipe);
}

TEST(LexerTest, SingleVsDoubleAmp) {
    const auto tokens = lex_ok("a & b && c");
    EXPECT_EQ(tokens[1].kind, TokenKind::Amp);
    EXPECT_EQ(tokens[3].kind, TokenKind::AmpAmp);
}

TEST(LexerTest, LineAndBlockComments) {
    const auto tokens = lex_ok("a // comment\nb /* multi\nline */ c");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, TracksLineAndColumn) {
    const auto tokens = lex_ok("a\n  b");
    EXPECT_EQ(tokens[0].span.line, 1u);
    EXPECT_EQ(tokens[0].span.column, 1u);
    EXPECT_EQ(tokens[1].span.line, 2u);
    EXPECT_EQ(tokens[1].span.column, 3u);
}

TEST(LexerTest, UnexpectedCharacterDiagnosed) {
    support::DiagnosticEngine diagnostics;
    Lexer lexer("let $ = 1;", diagnostics);
    const auto tokens = lexer.tokenize();
    EXPECT_TRUE(diagnostics.has_errors());
    bool saw_invalid = false;
    for (const auto& token : tokens) {
        if (token.kind == TokenKind::Invalid) saw_invalid = true;
    }
    EXPECT_TRUE(saw_invalid);
}

TEST(LexerTest, PunctuationInventory) {
    const auto tokens = lex_ok("( ) { } [ ] , ; : = + - * / % ^ ! < >");
    const TokenKind expected[] = {
        TokenKind::LParen, TokenKind::RParen,  TokenKind::LBrace,
        TokenKind::RBrace, TokenKind::LBracket, TokenKind::RBracket,
        TokenKind::Comma,  TokenKind::Semicolon, TokenKind::Colon,
        TokenKind::Eq,     TokenKind::Plus,    TokenKind::Minus,
        TokenKind::Star,   TokenKind::Slash,   TokenKind::Percent,
        TokenKind::Caret,  TokenKind::Bang,    TokenKind::Lt,
        TokenKind::Gt,
    };
    ASSERT_GE(tokens.size(), std::size(expected));
    for (std::size_t i = 0; i < std::size(expected); ++i) {
        EXPECT_EQ(tokens[i].kind, expected[i]) << "at index " << i;
    }
}

}  // namespace
}  // namespace rustbrain::lang
