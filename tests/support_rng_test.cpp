#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rustbrain::support {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(RngTest, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(RngTest, NextBelowRejectsZero) {
    Rng rng(7);
    EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextDoubleInUnitInterval) {
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.next_double();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RngTest, ChanceExtremes) {
    Rng rng(11);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
    Rng rng(13);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        if (rng.chance(0.3)) ++hits;
    }
    const double rate = static_cast<double>(hits) / trials;
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, NextRangeInclusive) {
    Rng rng(15);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto x = rng.next_range(-3, 3);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextRangeRejectsInverted) {
    Rng rng(15);
    EXPECT_THROW(rng.next_range(3, -3), std::invalid_argument);
}

TEST(RngTest, GaussianMoments) {
    Rng rng(17);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.next_gaussian();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWeightedFavorsHeavyWeight) {
    Rng rng(19);
    int heavy = 0;
    for (int i = 0; i < 1000; ++i) {
        if (rng.sample_weighted({0.1, 0.9}) == 1) ++heavy;
    }
    EXPECT_GT(heavy, 800);
}

TEST(RngTest, SampleWeightedHandlesZeros) {
    Rng rng(21);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.sample_weighted({0.0, 1.0, 0.0}), 1u);
    }
}

TEST(RngTest, SampleWeightedAllZerosFallsBack) {
    Rng rng(23);
    EXPECT_EQ(rng.sample_weighted({0.0, 0.0, 0.0}), 2u);
}

TEST(RngTest, SampleWeightedEmptyThrows) {
    Rng rng(23);
    EXPECT_THROW(rng.sample_weighted({}), std::invalid_argument);
}

TEST(RngTest, ForkIndependentStreams) {
    Rng parent(31);
    Rng a = parent.fork("alpha");
    Rng b = parent.fork("beta");
    Rng a2 = parent.fork("alpha");
    EXPECT_EQ(a.next_u64(), a2.next_u64());
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, DeriveSeedStable) {
    EXPECT_EQ(derive_seed(5, "x"), derive_seed(5, "x"));
    EXPECT_NE(derive_seed(5, "x"), derive_seed(5, "y"));
    EXPECT_NE(derive_seed(5, "x"), derive_seed(6, "x"));
}

}  // namespace
}  // namespace rustbrain::support
