// GeneratorRegistry: the string-id seam of the Corpus Forge — id listing,
// help text, option plumbing, and the unknown-id/option error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "gen/registry.hpp"
#include "miri/finding.hpp"

namespace rustbrain::gen {
namespace {

TEST(GeneratorRegistryTest, BuiltinCoversEveryCategoryPlusCompositions) {
    const GeneratorRegistry& registry = GeneratorRegistry::builtin();
    // 14 per-category generators + 2 compositions.
    EXPECT_EQ(registry.ids().size(), 16u);
    for (const char* id :
         {"alloc", "danglingpointer", "panic", "provenance", "uninit",
          "bothborrow", "datarace", "func.call", "func.pointer", "stackborrow",
          "validity", "unaligned", "concurrency", "tailcall",
          "panic-in-borrow", "race-on-dangling"}) {
        EXPECT_TRUE(registry.contains(id)) << id;
        EXPECT_NE(registry.find(id), nullptr) << id;
    }
    EXPECT_FALSE(registry.contains("nope"));
    EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(GeneratorRegistryTest, IdsAreSorted) {
    const std::vector<std::string> ids = GeneratorRegistry::builtin().ids();
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(GeneratorRegistryTest, HelpListsEveryGenerator) {
    const std::string help = GeneratorRegistry::builtin().help();
    for (const std::string& id : GeneratorRegistry::builtin().ids()) {
        EXPECT_NE(help.find(id), std::string::npos) << id;
    }
}

TEST(GeneratorRegistryTest, UnknownIdThrowsListingAvailable) {
    try {
        (void)GeneratorRegistry::builtin().build("no-such-generator");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("no-such-generator"), std::string::npos);
        for (const char* listed : {"alloc", "tailcall", "race-on-dangling"}) {
            EXPECT_NE(message.find(listed), std::string::npos) << listed;
        }
    }
}

TEST(GeneratorRegistryTest, UnknownOptionThrowsListingKnobs) {
    try {
        (void)GeneratorRegistry::builtin().build(
            "panic", support::OptionMap::parse("depht=2"));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("depht"), std::string::npos);
        for (const char* knob : {"depth", "padding", "helpers"}) {
            EXPECT_NE(message.find(knob), std::string::npos) << knob;
        }
    }
}

TEST(GeneratorRegistryTest, MalformedOptionValuesThrow) {
    EXPECT_THROW((void)GeneratorRegistry::builtin().build(
                     "alloc", support::OptionMap::parse("depth=two")),
                 std::invalid_argument);
    EXPECT_THROW((void)GeneratorRegistry::builtin().build(
                     "alloc", support::OptionMap::parse("helpers=maybe")),
                 std::invalid_argument);
    EXPECT_THROW((void)GeneratorRegistry::builtin().build(
                     "alloc", support::OptionMap::parse("depth=99")),
                 std::invalid_argument);
    EXPECT_THROW((void)GeneratorRegistry::builtin().build(
                     "alloc", support::OptionMap::parse("padding=-1")),
                 std::invalid_argument);
}

TEST(GeneratorRegistryTest, KnobsReachTheGenerator) {
    const auto generator = GeneratorRegistry::builtin().build(
        "alloc", support::OptionMap::parse("depth=5,padding=1,helpers=off"));
    EXPECT_EQ(generator->knobs().max_nesting, 5);
    EXPECT_EQ(generator->knobs().max_padding, 1);
    EXPECT_FALSE(generator->knobs().helpers);
    EXPECT_EQ(generator->id(), "alloc");
    EXPECT_EQ(generator->category(), miri::UbCategory::Alloc);
}

TEST(GeneratorRegistryTest, DuplicateAddThrows) {
    GeneratorRegistry registry;
    registry.add({"x", "first", [](const support::OptionMap&) {
                      return std::unique_ptr<CaseGenerator>();
                  }});
    EXPECT_THROW(registry.add({"x", "second",
                               [](const support::OptionMap&) {
                                   return std::unique_ptr<CaseGenerator>();
                               }}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace rustbrain::gen
