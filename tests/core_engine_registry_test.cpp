// EngineRegistry: every paper engine is constructible by string id, fails
// loudly on typos, is deterministic under a fixed seed, and reports
// through the RepairEngine/TraceSink interfaces identically to direct
// construction.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"

namespace rustbrain::core {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const kb::KnowledgeBase& seeded_kb() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

EngineBuildContext kb_context() {
    EngineBuildContext context;
    context.knowledge_base = &seeded_kb();
    return context;
}

void expect_same_result(const CaseResult& a, const CaseResult& b) {
    EXPECT_EQ(a.case_id, b.case_id);
    EXPECT_EQ(a.pass, b.pass);
    EXPECT_EQ(a.exec, b.exec);
    EXPECT_EQ(a.time_ms, b.time_ms);  // exact, not near
    EXPECT_EQ(a.time_breakdown, b.time_breakdown);
    EXPECT_EQ(a.solutions_generated, b.solutions_generated);
    EXPECT_EQ(a.steps_executed, b.steps_executed);
    EXPECT_EQ(a.rollbacks, b.rollbacks);
    EXPECT_EQ(a.llm_calls, b.llm_calls);
    EXPECT_EQ(a.kb_consulted, b.kb_consulted);
    EXPECT_EQ(a.kb_skipped_by_feedback, b.kb_skipped_by_feedback);
    EXPECT_EQ(a.thinking_switches, b.thinking_switches);
    EXPECT_EQ(a.escalations, b.escalations);
    EXPECT_EQ(a.early_stops, b.early_stops);
    EXPECT_EQ(a.attempts_skipped, b.attempts_skipped);
    EXPECT_EQ(a.error_trajectory, b.error_trajectory);
    EXPECT_EQ(a.winning_rule, b.winning_rule);
    EXPECT_EQ(a.final_source, b.final_source);
}

TEST(EngineOptionsTest, ParseRoundTrip) {
    const EngineOptions options =
        EngineOptions::parse("model=gpt-3.5,temperature=0.7,knowledge=off,seed=9");
    EXPECT_EQ(options.get("model", "x"), "gpt-3.5");
    EXPECT_DOUBLE_EQ(options.get_double("temperature", 0.0), 0.7);
    EXPECT_FALSE(options.get_bool("knowledge", true));
    EXPECT_EQ(options.get_u64("seed", 0), 9u);
    EXPECT_EQ(options.get("absent", "fallback"), "fallback");
}

TEST(EngineOptionsTest, MalformedSpecThrows) {
    EXPECT_THROW(EngineOptions::parse("model"), std::invalid_argument);
    EXPECT_THROW(EngineOptions::parse("=gpt-4"), std::invalid_argument);
    const EngineOptions options = EngineOptions::parse("temperature=warm");
    EXPECT_THROW((void)options.get_double("temperature", 0.5),
                 std::invalid_argument);
    // Trailing junk and sign-wrapped unsigned values fail loudly too.
    const EngineOptions junk =
        EngineOptions::parse("temperature=0.5x,attempts=3y,seed=-1");
    EXPECT_THROW((void)junk.get_double("temperature", 0.5),
                 std::invalid_argument);
    EXPECT_THROW((void)junk.get_int("attempts", 2), std::invalid_argument);
    EXPECT_THROW((void)junk.get_u64("seed", 42), std::invalid_argument);
}

TEST(EngineRegistryTest, BuiltinListsTheFourPaperEngines) {
    const EngineRegistry& registry = EngineRegistry::builtin();
    for (const char* id : {"rustbrain", "standalone", "fixed-pipeline", "expert"}) {
        EXPECT_TRUE(registry.contains(id)) << id;
        EXPECT_NE(registry.help().find(id), std::string::npos);
    }
    EXPECT_EQ(registry.ids().size(), 4u);
}

TEST(EngineRegistryTest, UnknownIdThrowsListingAvailable) {
    try {
        (void)EngineRegistry::builtin().build("rustbrian");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("rustbrian"), std::string::npos);
        EXPECT_NE(message.find("rustbrain"), std::string::npos);
        EXPECT_NE(message.find("fixed-pipeline"), std::string::npos);
    }
}

TEST(EngineRegistryTest, UnknownOptionThrowsNamingIt) {
    try {
        (void)EngineRegistry::builtin().build(
            "standalone", EngineOptions::parse("model=gpt-4,atempts=3"));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("atempts"), std::string::npos);
        EXPECT_NE(message.find("attempts"), std::string::npos);
    }
}

TEST(EngineRegistryTest, NameMatchesIdAndSummaryReflectsOptions) {
    for (const std::string& id : EngineRegistry::builtin().ids()) {
        const auto engine =
            EngineRegistry::builtin().build(id, EngineOptions::parse("seed=5"),
                                            kb_context());
        EXPECT_EQ(engine->name(), id);
        EXPECT_NE(engine->config_summary().find("seed=5"), std::string::npos)
            << id;
    }
    const auto rustbrain = EngineRegistry::builtin().build(
        "rustbrain", EngineOptions::parse("model=gpt-3.5,knowledge=off"),
        kb_context());
    EXPECT_NE(rustbrain->config_summary().find("model=gpt-3.5"),
              std::string::npos);
    EXPECT_NE(rustbrain->config_summary().find("knowledge=off"),
              std::string::npos);
}

TEST(EngineRegistryTest, EveryEngineDeterministicUnderFixedSeed) {
    // The registry property the sweeps rely on: building the same id with
    // the same options twice and repairing the same case yields the same
    // CaseResult, byte for byte.
    const dataset::UbCase* ub_case = corpus().find("alloc/double_free_0");
    ASSERT_NE(ub_case, nullptr);
    for (const std::string& id : EngineRegistry::builtin().ids()) {
        const EngineOptions options = EngineOptions::parse("seed=7");
        const auto first =
            EngineRegistry::builtin().build(id, options, kb_context());
        const auto second =
            EngineRegistry::builtin().build(id, options, kb_context());
        const CaseResult a = first->repair(*ub_case);
        const CaseResult b = second->repair(*ub_case);
        SCOPED_TRACE(id);
        expect_same_result(a, b);
    }
}

TEST(EngineRegistryTest, RegistryBuildMatchesDirectConstruction) {
    // The declarative path is the old imperative path: a registry-built
    // rustbrain equals a directly constructed one, case for case.
    RustBrainConfig config;
    config.model = "gpt-4";
    RustBrain direct(config, &seeded_kb(), nullptr);
    const auto built = EngineRegistry::builtin().build(
        "rustbrain", EngineOptions::parse("model=gpt-4"), kb_context());
    for (const dataset::UbCase* ub_case :
         corpus().by_category(miri::UbCategory::Alloc)) {
        expect_same_result(direct.repair(*ub_case), built->repair(*ub_case));
    }
}

TEST(EngineRegistryTest, BatchRunnerRegistryPathMatchesConfigPath) {
    const BatchRunner by_config(
        [] {
            RustBrainConfig config;
            config.model = "gpt-4";
            return config;
        }(),
        &seeded_kb(), BatchOptions{2});
    const BatchRunner by_id("rustbrain", EngineOptions::parse("model=gpt-4"),
                            kb_context(), BatchOptions{3});
    const std::vector<const dataset::UbCase*> cases =
        corpus().by_category(miri::UbCategory::DanglingPointer);
    const BatchReport a = by_config.run(cases);
    const BatchReport b = by_id.run(cases);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        expect_same_result(a.results[i], b.results[i]);
    }
}

TEST(EngineRegistryTest, TraceSinkSeesTheEventStream) {
    TraceRecorder recorder;
    EngineBuildContext context = kb_context();
    context.trace = &recorder;
    const auto engine = EngineRegistry::builtin().build(
        "rustbrain", EngineOptions::parse("model=gpt-4"), context);
    const dataset::UbCase* ub_case = corpus().find("alloc/double_free_0");
    ASSERT_NE(ub_case, nullptr);
    const CaseResult result = engine->repair(*ub_case);

    // The attached sink observes exactly the stream the engine tallied its
    // statistics from.
    EXPECT_EQ(recorder.count(TraceEventKind::LlmCall), result.llm_calls);
    EXPECT_EQ(recorder.count(TraceEventKind::StepExecuted),
              static_cast<std::size_t>(result.steps_executed));
    EXPECT_EQ(recorder.count(TraceEventKind::StepVerified),
              result.error_trajectory.size());
    EXPECT_EQ(recorder.count(TraceEventKind::Rollback),
              static_cast<std::size_t>(result.rollbacks));
    EXPECT_EQ(recorder.count(TraceEventKind::KbConsult) > 0, result.kb_consulted);
    EXPECT_GT(recorder.count(TraceEventKind::StageEnter), 0u);
    EXPECT_EQ(recorder.count(TraceEventKind::StageEnter),
              recorder.count(TraceEventKind::StageExit));
    // Virtual timestamps are monotone along the stream.
    double last_ms = 0.0;
    for (const TraceEvent& event : recorder.events()) {
        EXPECT_GE(event.clock_ms, last_ms);
        last_ms = event.clock_ms;
    }

    // Observation must not perturb the repair: an untraced engine agrees.
    const auto untraced = EngineRegistry::builtin().build(
        "rustbrain", EngineOptions::parse("model=gpt-4"), kb_context());
    expect_same_result(result, untraced->repair(*ub_case));
}

}  // namespace
}  // namespace rustbrain::core
