#include "lang/printer.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"

namespace rustbrain::lang {
namespace {

Program parse_ok(std::string_view source) {
    std::string error;
    auto program = try_parse(source, &error);
    EXPECT_TRUE(program.has_value()) << error;
    return program ? std::move(*program) : Program{};
}

void expect_round_trip(std::string_view source) {
    const Program original = parse_ok(source);
    const std::string printed = print_program(original);
    std::string error;
    auto reparsed = try_parse(printed, &error);
    ASSERT_TRUE(reparsed.has_value()) << "printed program failed to parse:\n"
                                      << printed << "\n"
                                      << error;
    EXPECT_TRUE(equals(original, *reparsed))
        << "round-trip changed structure:\n--- original source\n"
        << source << "\n--- printed\n"
        << printed;
}

TEST(PrinterTest, SimpleFunction) {
    const auto program = parse_ok("fn main() { let x = 1; }");
    const std::string printed = print_program(program);
    EXPECT_NE(printed.find("fn main() {"), std::string::npos);
    EXPECT_NE(printed.find("let x = 1;"), std::string::npos);
}

TEST(PrinterTest, PreservesUnsafeMarkers) {
    const auto program = parse_ok(
        "unsafe fn f() { } fn main() { unsafe { f(); } }");
    const std::string printed = print_program(program);
    EXPECT_NE(printed.find("unsafe fn f()"), std::string::npos);
    EXPECT_NE(printed.find("unsafe {"), std::string::npos);
}

// Round-trip property over representative programs, one per language area.
class PrinterRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTrip, ParsePrintParseIsIdentity) { expect_round_trip(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Programs, PrinterRoundTrip,
    ::testing::Values(
        "fn main() { }",
        "fn main() { let x = 1 + 2 * 3 - 4 / 5 % 6; }",
        "fn main() { let b = (1 + 2) * 3; }",
        "fn main() { let b = true && false || 1 < 2; }",
        "fn main() { let x = 1 & 2 | 3 ^ 4; let y = 1 << 2 >> 1; }",
        "fn main() { let mut x = 5; x = x + 1; }",
        "static mut G: i64 = 7; fn main() { unsafe { G = 1; } }",
        "static T: [i32; 4] = [1, 2, 3, 4]; fn main() { }",
        "fn main() { let a: [u8; 2] = [23, 7]; let n = a[0]; }",
        "fn main() { let a = [0; 16]; }",
        "fn main() { let x = 5; let p = &x as *const i32; unsafe { let y = *p; } }",
        "fn main() { let mut x = 5; let p = &mut x as *mut i32; unsafe { *p = 6; } }",
        "fn main() { let p = 4096 as *const i32; }",
        "fn main() { let x = 1 as i64 as i32 as u8; }",
        "fn f(a: i32, b: i32) -> i32 { return a + b; } fn main() { let s = f(1, 2); }",
        "fn f() { } fn main() { let g = f; (g)(); }",
        "fn f() { } fn main() { let h = spawn(f); join(h); }",
        "unsafe fn danger() -> i32 { return 1; } fn main() { unsafe { let x = danger(); } }",
        "fn main() { if true { print_int(1); } else { print_int(2); } }",
        "fn main() { let x = 2; if x == 1 { } else if x == 2 { print_int(2); } }",
        "fn main() { let mut i = 0; while i < 10 { i = i + 1; } }",
        "fn main() { { let inner = 1; } }",
        "fn loop_fn(n: i32) -> i32 { if n <= 0 { return 0; } become loop_fn(n - 1); } "
        "fn main() { let r = loop_fn(3); }",
        "fn main() { unsafe { let p = alloc(8, 8); dealloc(p, 8, 8); } }",
        "fn main() { unsafe { let p = alloc(16, 8); let q = offset(p, 8); "
        "dealloc(p, 16, 8); } }",
        "fn main() { let neg = -5; let not_b = !true; let not_i = !0; }",
        "fn main() { print_int(input(0)); print_bool(true); assert(1 == 1); }"));

TEST(PrinterTest, DeepNestingRoundTrip) {
    expect_round_trip(R"(
fn main() {
    let mut total = 0;
    let mut i = 0;
    while i < 4 {
        if i % 2 == 0 {
            let mut j = 0;
            while j < i {
                total = total + (i * 10 + j);
                j = j + 1;
            }
        } else {
            unsafe {
                let p = &total as *const i32;
                total = *p + 1;
            }
        }
        i = i + 1;
    }
    print_int(total as i64);
})");
}

TEST(PrinterTest, PrintedCastsKeepStructure) {
    // Regression guard for parenthesization: (a + b) as i64 vs a + (b as i64).
    const auto sum_cast = parse_ok("fn main() { let x = (1 + 2) as i64; }");
    const auto cast_sum = parse_ok("fn main() { let x = 1 + (2 as i64 as i32); }");
    EXPECT_FALSE(equals(sum_cast, cast_sum));
    expect_round_trip("fn main() { let x = (1 + 2) as i64; }");
}

}  // namespace
}  // namespace rustbrain::lang
