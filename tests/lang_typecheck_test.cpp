#include "lang/typecheck.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"

namespace rustbrain::lang {
namespace {

Program parse_ok(std::string_view source) {
    std::string error;
    auto program = try_parse(source, &error);
    EXPECT_TRUE(program.has_value()) << error;
    return program ? std::move(*program) : Program{};
}

void expect_checks(std::string_view source) {
    Program program = parse_ok(source);
    std::string error;
    EXPECT_TRUE(type_check(program, &error)) << error << "\nsource:\n" << source;
}

void expect_rejects(std::string_view source, std::string_view needle = "") {
    Program program = parse_ok(source);
    std::string error;
    const bool ok = type_check(program, &error);
    EXPECT_FALSE(ok) << "expected type error for:\n" << source;
    if (!ok && !needle.empty()) {
        EXPECT_NE(error.find(needle), std::string::npos)
            << "diagnostic was:\n" << error;
    }
}

TEST(TypecheckTest, AcceptsMinimalMain) { expect_checks("fn main() { }"); }

TEST(TypecheckTest, RequiresMain) {
    expect_rejects("fn helper() { }", "no 'main'");
}

TEST(TypecheckTest, MainSignatureConstraints) {
    expect_rejects("fn main(x: i32) { }", "'main' must take no parameters");
    expect_rejects("fn main() -> i32 { return 1; }", "'main' must return ()");
}

TEST(TypecheckTest, DuplicateFunctionNames) {
    expect_rejects("fn f() { } fn f() { } fn main() { }", "duplicate function");
}

TEST(TypecheckTest, LiteralAdoptsDeclaredType) {
    Program program = parse_ok("fn main() { let x: i64 = 5; }");
    ASSERT_TRUE(type_check(program));
    const auto& let = static_cast<const LetStmt&>(*program.functions[0].body.statements[0]);
    EXPECT_EQ(let.init->type, Type::i64());
}

TEST(TypecheckTest, LiteralDefaultsToI32) {
    Program program = parse_ok("fn main() { let x = 5; }");
    ASSERT_TRUE(type_check(program));
    const auto& let = static_cast<const LetStmt&>(*program.functions[0].body.statements[0]);
    EXPECT_EQ(let.init->type, Type::i32());
}

TEST(TypecheckTest, BinaryTypeMismatchRejected) {
    expect_rejects("fn main() { let a: i32 = 1; let b: i64 = 2; let c = a + b; }",
                   "type mismatch");
}

TEST(TypecheckTest, LiteralInfersFromOtherSide) {
    expect_checks("fn main() { let a: i64 = 5; let b = a + 1; let c = 1 + a; }");
}

TEST(TypecheckTest, ConditionsMustBeBool) {
    expect_rejects("fn main() { if 1 { } }", "must be bool");
    expect_rejects("fn main() { while 0 { } }", "must be bool");
}

TEST(TypecheckTest, AssignmentRules) {
    expect_checks("fn main() { let mut x = 1; x = 2; }");
    expect_rejects("fn main() { let x = 1; x = 2; }", "not mutable");
    expect_rejects("fn main() { let mut x = 1; x = true; }", "mismatch");
    expect_rejects("fn main() { 1 = 2; }", "not a place");
}

TEST(TypecheckTest, ReturnTypeChecked) {
    expect_checks("fn f() -> i32 { return 1; } fn main() { }");
    expect_rejects("fn f() -> i32 { return true; } fn main() { }", "return type");
    expect_rejects("fn f() -> i32 { return; } fn main() { }", "bare 'return'");
}

TEST(TypecheckTest, UnsafeRequiredForRawDeref) {
    expect_rejects(
        "fn main() { let x = 5; let p = &x as *const i32; let y = *p; }",
        "unsafe");
    expect_checks(
        "fn main() { let x = 5; let p = &x as *const i32; unsafe { let y = *p; } }");
}

TEST(TypecheckTest, RefDerefIsSafe) {
    expect_checks("fn main() { let x = 5; let r = &x; let y = *r; }");
}

TEST(TypecheckTest, UnsafeRequiredForUnsafeFnCall) {
    expect_rejects("unsafe fn danger() { } fn main() { danger(); }", "unsafe");
    expect_checks("unsafe fn danger() { } fn main() { unsafe { danger(); } }");
}

TEST(TypecheckTest, UnsafeFnBodyIsUnsafeContext) {
    expect_checks(
        "unsafe fn danger(p: *const i32) -> i32 { return *p; } fn main() { }");
}

TEST(TypecheckTest, StaticMutNeedsUnsafe) {
    expect_rejects("static mut G: i64 = 0; fn main() { G = 1; }", "unsafe");
    expect_rejects("static mut G: i64 = 0; fn main() { let x = G; }", "unsafe");
    expect_checks("static mut G: i64 = 0; fn main() { unsafe { G = 1; } }");
}

TEST(TypecheckTest, PlainStaticReadIsSafe) {
    expect_checks("static LIMIT: i64 = 10; fn main() { let x = LIMIT; }");
}

TEST(TypecheckTest, StaticInitMustBeConstant) {
    expect_rejects("static G: i64 = input(0); fn main() { }", "literal");
}

TEST(TypecheckTest, StaticInitTypeMismatch) {
    expect_rejects("static G: i64 = true; fn main() { }", "initialized with");
}

TEST(TypecheckTest, SharedRefToMutPtrRejected) {
    expect_rejects("fn main() { let x = 1; let p = &x as *mut i32; }",
                   "read-only");
    expect_checks("fn main() { let mut x = 1; let p = &mut x as *mut i32; }");
}

TEST(TypecheckTest, AddrOfMutNeedsMutPlace) {
    expect_rejects("fn main() { let x = 1; let r = &mut x; }", "not mutable");
}

TEST(TypecheckTest, ArrayDecayCast) {
    expect_checks("fn main() { let a = [1, 2, 3]; let p = &a as *const i32; }");
}

TEST(TypecheckTest, IntToFnPtrNeedsUnsafe) {
    expect_rejects(
        "fn f() { } fn main() { let a = f as usize; let g = a as fn(); }",
        "unsafe");
    expect_checks(
        "fn f() { } fn main() { let a = f as usize; unsafe { let g = a as fn(); } }");
}

TEST(TypecheckTest, FnPtrSignatureTransmuteNeedsUnsafe) {
    expect_rejects(
        "fn f(x: i32) -> i32 { return x; } "
        "fn main() { let g = (f as fn(i32) -> i32) as fn(i64) -> i64; }",
        "unsafe");
}

TEST(TypecheckTest, IndexingRules) {
    expect_checks("fn main() { let a = [1, 2, 3]; let x = a[0]; }");
    expect_checks("fn main() { let a = [1, 2]; let r = &a; let x = r[1]; }");
    expect_rejects("fn main() { let x = 5; let y = x[0]; }", "cannot index");
    expect_rejects(
        "fn main() { let a = [1, 2]; unsafe { let p = &a as *const i32; let x = p[0]; } }",
        "cannot index");
}

TEST(TypecheckTest, CallArityAndTypes) {
    expect_rejects("fn f(a: i32) { } fn main() { f(); }", "expects 1 arguments");
    expect_rejects("fn f(a: i32) { } fn main() { f(true); }", "argument 1");
    expect_rejects("fn main() { nosuch(); }", "unknown function");
}

TEST(TypecheckTest, FnPointerFlow) {
    expect_checks(R"(
fn double(x: i32) -> i32 { return x * 2; }
fn main() {
    let f: fn(i32) -> i32 = double;
    let y = f(21);
    print_int(y as i64);
})");
}

TEST(TypecheckTest, BecomeChecksSignatures) {
    expect_checks(
        "fn f(n: i32) -> i32 { if n <= 0 { return 0; } become f(n - 1); } fn main() { }");
    expect_rejects(
        "fn g() -> i64 { return 1; } fn f() -> i32 { become g(); } fn main() { }",
        "become target returns");
    expect_rejects(
        "fn g(x: i32) -> i32 { return x; } fn f() -> i32 { become g(); } fn main() { }",
        "argument count");
}

TEST(TypecheckTest, IntrinsicSignatures) {
    expect_checks("fn main() { unsafe { let p = alloc(8, 8); dealloc(p, 8, 8); } }");
    expect_rejects("fn main() { let p = alloc(8); }", "expects 2 arguments");
    expect_rejects("fn main() { unsafe { dealloc(1, 8, 8); } }", "raw pointer");
    expect_rejects("fn main() { assert(1); }", "bool");
    expect_checks("fn f() { } fn main() { let h = spawn(f); join(h); }");
    expect_rejects("fn f(x: i32) { } fn main() { let h = spawn(f); }",
                   "no parameters");
    expect_checks(
        "static mut V: i64 = 0; fn main() { unsafe { "
        "let p = &mut V as *mut i64; atomic_store(p, 5); "
        "let x = atomic_load(p as *const i64); let y = atomic_fetch_add(p, 1); } }");
    expect_rejects("fn main() { unsafe { atomic_load(5 as *const i32); } }",
                   "atomic_load");
}

TEST(TypecheckTest, DeallocRequiresUnsafe) {
    expect_rejects("fn main() { let p = alloc(8, 8); dealloc(p, 8, 8); }", "unsafe");
}

TEST(TypecheckTest, OffsetRequiresUnsafe) {
    expect_rejects(
        "fn main() { let p = alloc(8, 8); let q = offset(p, 1); }", "unsafe");
}

TEST(TypecheckTest, ShadowingAllowed) {
    expect_checks("fn main() { let x = 1; let x = true; let y = x && false; }");
}

TEST(TypecheckTest, ScopesEnd) {
    expect_rejects("fn main() { { let inner = 1; } let y = inner; }", "unknown name");
}

TEST(TypecheckTest, NegOnUnsignedRejected) {
    expect_rejects("fn main() { let x: u32 = 5; let y = -x; }", "signed");
}

TEST(TypecheckTest, ComparisonsYieldBool) {
    Program program = parse_ok("fn main() { let b = 1 < 2; }");
    ASSERT_TRUE(type_check(program));
    const auto& let = static_cast<const LetStmt&>(*program.functions[0].body.statements[0]);
    EXPECT_EQ(let.init->type, Type::boolean());
}

TEST(TypecheckTest, PointerComparisonAllowed) {
    expect_checks(
        "fn main() { let x = 1; let p = &x as *const i32; let q = p; "
        "let same = p == q; }");
}

TEST(TypecheckTest, AnnotatesExpressionTypes) {
    Program program = parse_ok(
        "fn main() { let x = 5; let p = &x as *const i32; unsafe { let y = *p; } }");
    ASSERT_TRUE(type_check(program));
    const auto& unsafe_stmt =
        static_cast<const UnsafeStmt&>(*program.functions[0].body.statements[2]);
    const auto& let = static_cast<const LetStmt&>(*unsafe_stmt.block.statements[0]);
    EXPECT_EQ(let.init->type, Type::i32());
}

}  // namespace
}  // namespace rustbrain::lang
