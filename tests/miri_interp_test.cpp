// Semantics tests for the interpreter on well-behaved programs: values,
// control flow, functions, arrays, casts, observable output.
#include <gtest/gtest.h>

#include "miri/mirilite.hpp"

namespace rustbrain::miri {
namespace {

std::vector<std::string> output_of(const std::string& source,
                                   std::vector<std::int64_t> inputs = {}) {
    MiriLite miri;
    const MiriReport report = miri.test_source(source, {inputs});
    EXPECT_TRUE(report.passed()) << report.summary() << "\nsource:\n" << source;
    return report.outputs.empty() ? std::vector<std::string>{} : report.outputs[0];
}

TEST(InterpTest, Arithmetic) {
    EXPECT_EQ(output_of("fn main() { print_int(((2 + 3) * 4 - 6) / 2 % 5); }"),
              std::vector<std::string>{"2"});
}

TEST(InterpTest, SignedPrinting) {
    EXPECT_EQ(output_of("fn main() { let x: i32 = 0 - 7; print_int(x as i64); }"),
              std::vector<std::string>{"-7"});
}

TEST(InterpTest, UnsignedPrinting) {
    EXPECT_EQ(output_of("fn main() { let x: u8 = 200; print_int(x as i64); }"),
              std::vector<std::string>{"200"});
}

TEST(InterpTest, BitOperations) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let a: u32 = 12;
    let b: u32 = 10;
    print_int((a & b) as i64);
    print_int((a | b) as i64);
    print_int((a ^ b) as i64);
    print_int((a << 2) as i64);
    print_int((a >> 1) as i64);
})"),
              (std::vector<std::string>{"8", "14", "6", "48", "6"}));
}

TEST(InterpTest, SignedShiftRight) {
    EXPECT_EQ(output_of(
                  "fn main() { let a: i32 = 0 - 8; print_int((a >> 1) as i64); }"),
              std::vector<std::string>{"-4"});
}

TEST(InterpTest, ShortCircuitAvoidsSideEffects) {
    EXPECT_EQ(output_of(R"(
fn boom() -> bool {
    panic();
    return true;
}
fn main() {
    let a = false && boom();
    let b = true || boom();
    print_bool(a);
    print_bool(b);
})"),
              (std::vector<std::string>{"false", "true"}));
}

TEST(InterpTest, WhileLoopSum) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let mut total: i64 = 0;
    let mut i: i64 = 1;
    while i <= 10 {
        total = total + i;
        i = i + 1;
    }
    print_int(total);
})"),
              std::vector<std::string>{"55"});
}

TEST(InterpTest, NestedIfElse) {
    EXPECT_EQ(output_of(R"(
fn classify(x: i64) -> i64 {
    if x < 0 {
        return 0 - 1;
    } else if x == 0 {
        return 0;
    } else {
        return 1;
    }
}
fn main() {
    print_int(classify(0 - 5));
    print_int(classify(0));
    print_int(classify(9));
})"),
              (std::vector<std::string>{"-1", "0", "1"}));
}

TEST(InterpTest, RecursionFactorial) {
    EXPECT_EQ(output_of(R"(
fn fact(n: i64) -> i64 {
    if n <= 1 { return 1; }
    return n * fact(n - 1);
}
fn main() { print_int(fact(10)); })"),
              std::vector<std::string>{"3628800"});
}

TEST(InterpTest, ArraysAndIndexing) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let mut a: [i64; 4] = [1, 2, 3, 4];
    a[2] = 30;
    let mut i: usize = 0;
    let mut total: i64 = 0;
    while i < 4 {
        total = total + a[i];
        i = i + 1;
    }
    print_int(total);
})"),
              std::vector<std::string>{"37"});
}

TEST(InterpTest, ArrayRepeatInit) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let a: [i32; 8] = [7; 8];
    print_int((a[0] + a[7]) as i64);
})"),
              std::vector<std::string>{"14"});
}

TEST(InterpTest, ArrayThroughReference) {
    EXPECT_EQ(output_of(R"(
fn sum(r: &[i64; 3]) -> i64 {
    return r[0] + r[1] + r[2];
}
fn main() {
    let a: [i64; 3] = [10, 20, 30];
    print_int(sum(&a));
})"),
              std::vector<std::string>{"60"});
}

TEST(InterpTest, ReferencesReadWrite) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let mut x = 5;
    let r = &mut x;
    *r = *r + 1;
    print_int(x as i64);
})"),
              std::vector<std::string>{"6"});
}

TEST(InterpTest, RawPointerRoundTrip) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let mut x: i64 = 11;
    let p = &mut x as *mut i64;
    unsafe {
        *p = *p * 2;
        print_int(*p);
    }
})"),
              std::vector<std::string>{"22"});
}

TEST(InterpTest, HeapBufferSum) {
    EXPECT_EQ(output_of(R"(
fn main() {
    unsafe {
        let base = alloc(32, 8);
        let p = base as *mut i64;
        let mut i: i64 = 0;
        while i < 4 {
            let slot = offset(p, i as isize);
            *slot = i * i;
            i = i + 1;
        }
        let mut total: i64 = 0;
        i = 0;
        while i < 4 {
            total = total + *offset(p, i as isize);
            i = i + 1;
        }
        print_int(total);
        dealloc(base, 32, 8);
    }
})"),
              std::vector<std::string>{"14"});
}

TEST(InterpTest, IntegerCastChain) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let a: i64 = 300;
    let b = a as u8;
    print_int(b as i64);
    let c: i8 = 0 - 1;
    print_int(c as i64);
    print_int((c as u8) as i64);
})"),
              (std::vector<std::string>{"44", "-1", "255"}));
}

TEST(InterpTest, BoolCasts) {
    EXPECT_EQ(output_of("fn main() { print_int(true as i64 + false as i64); }"),
              std::vector<std::string>{"1"});
}

TEST(InterpTest, PointerEqualityViaInt) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let x = 5;
    let p = &x as *const i32;
    let q = p;
    print_bool(p == q);
})"),
              std::vector<std::string>{"true"});
}

TEST(InterpTest, FnPointersAsValues) {
    EXPECT_EQ(output_of(R"(
fn inc(x: i64) -> i64 { return x + 1; }
fn dec(x: i64) -> i64 { return x - 1; }
fn apply_twice(f: fn(i64) -> i64, x: i64) -> i64 {
    return f(f(x));
}
fn main() {
    print_int(apply_twice(inc, 10));
    print_int(apply_twice(dec, 10));
})"),
              (std::vector<std::string>{"12", "8"}));
}

TEST(InterpTest, StaticsInitializedAndShared) {
    EXPECT_EQ(output_of(R"(
static LIMIT: i64 = 40;
static mut ACC: i64 = 2;
fn bump(n: i64) {
    unsafe { ACC = ACC + n; }
}
fn main() {
    bump(LIMIT);
    unsafe { print_int(ACC); }
})"),
              std::vector<std::string>{"42"});
}

TEST(InterpTest, StaticArray) {
    EXPECT_EQ(output_of(R"(
static TABLE: [i64; 4] = [2, 3, 5, 7];
fn main() {
    print_int(TABLE[0] + TABLE[3]);
})"),
              std::vector<std::string>{"9"});
}

TEST(InterpTest, InputsDriveBranches) {
    MiriLite miri;
    const MiriReport report = miri.test_source(R"(
fn main() {
    if input(0) > 0 {
        print_int(1);
    } else {
        print_int(2);
    }
})",
                                               {{5}, {-3}});
    ASSERT_TRUE(report.passed()) << report.summary();
    EXPECT_EQ(report.outputs[0], std::vector<std::string>{"1"});
    EXPECT_EQ(report.outputs[1], std::vector<std::string>{"2"});
}

TEST(InterpTest, MissingInputDefaultsToZero) {
    EXPECT_EQ(output_of("fn main() { print_int(input(7)); }"),
              std::vector<std::string>{"0"});
}

TEST(InterpTest, ShadowingInNestedScopes) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let x = 1;
    {
        let x = 2;
        print_int(x as i64);
    }
    print_int(x as i64);
})"),
              (std::vector<std::string>{"2", "1"}));
}

TEST(InterpTest, ScopedLocalsDieAndReuse) {
    EXPECT_EQ(output_of(R"(
fn main() {
    let mut total: i64 = 0;
    let mut i: i64 = 0;
    while i < 3 {
        let tmp = i * 10;
        total = total + tmp;
        i = i + 1;
    }
    print_int(total);
})"),
              std::vector<std::string>{"30"});
}

TEST(InterpTest, ThreadsShareStaticsWithSync) {
    EXPECT_EQ(output_of(R"(
static mut SUM: i64 = 0;
fn add_ten() {
    unsafe {
        let p = &mut SUM as *mut i64;
        let old = atomic_fetch_add(p, 10);
    }
}
fn main() {
    let a = spawn(add_ten);
    let b = spawn(add_ten);
    join(a);
    join(b);
    unsafe {
        let p = &mut SUM as *mut i64;
        print_int(atomic_load(p as *const i64));
    }
})"),
              std::vector<std::string>{"20"});
}

TEST(InterpTest, UnitFunctionsAndBareReturn) {
    EXPECT_EQ(output_of(R"(
fn log(x: i64) {
    if x < 0 {
        return;
    }
    print_int(x);
}
fn main() {
    log(0 - 1);
    log(5);
})"),
              std::vector<std::string>{"5"});
}

}  // namespace
}  // namespace rustbrain::miri
