// Corpus integrity: every buggy case fails MiriLite with its declared
// category, every reference fix passes and trace-matches itself.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <stdexcept>

#include "dataset/corpus.hpp"
#include "dataset/semantic.hpp"
#include "miri/mirilite.hpp"

namespace rustbrain::dataset {
namespace {

const Corpus& corpus() {
    static const Corpus c = Corpus::standard();
    return c;
}

TEST(CorpusTest, HasAllFourteenCategories) {
    EXPECT_EQ(corpus().categories().size(), miri::all_ub_categories().size());
}

TEST(CorpusTest, SizeAndShape) {
    EXPECT_GE(corpus().size(), 100u);
    for (miri::UbCategory category : miri::all_ub_categories()) {
        EXPECT_GE(corpus().by_category(category).size(), 6u)
            << "too few cases for " << miri::ub_category_label(category);
    }
}

TEST(CorpusTest, IdsAreUnique) {
    std::set<std::string> seen;
    for (const auto& c : corpus().cases()) {
        EXPECT_TRUE(seen.insert(c.id).second) << "duplicate id " << c.id;
    }
}

TEST(CorpusTest, FindById) {
    const UbCase* c = corpus().find("alloc/double_free_0");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->category, miri::UbCategory::Alloc);
    EXPECT_EQ(corpus().find("nope/nope"), nullptr);
}

TEST(CorpusTest, EveryCaseHasInputs) {
    for (const auto& c : corpus().cases()) {
        EXPECT_FALSE(c.inputs.empty()) << c.id;
    }
}

// The heavyweight validation: parameterized over every case so failures
// name the exact offender.
class CorpusValidation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CorpusValidation, BuggyFailsReferencePasses) {
    const UbCase& c = corpus().cases()[GetParam()];
    const auto validations = [&] {
        // Validating one case via the public API would re-run the whole
        // corpus; call MiriLite directly instead.
        miri::MiriLite miri;
        CaseValidation v;
        v.id = c.id;
        const miri::MiriReport buggy = miri.test_source(c.buggy_source, c.inputs);
        v.buggy_fails = !buggy.passed();
        v.category_matches = buggy.has_category(c.category);
        const miri::MiriReport fixed = miri.test_source(c.reference_fix, c.inputs);
        v.reference_passes = fixed.passed();
        if (!v.buggy_fails) v.detail = "buggy program passed";
        if (!v.category_matches) v.detail += " wrong category: " + buggy.summary();
        if (!v.reference_passes) v.detail += " reference failed: " + fixed.summary();
        return v;
    }();
    EXPECT_TRUE(validations.ok())
        << validations.id << ": " << validations.detail << "\n--- buggy\n"
        << c.buggy_source << "\n--- reference\n"
        << c.reference_fix;
}

INSTANTIATE_TEST_SUITE_P(AllCases, CorpusValidation,
                         ::testing::Range<std::size_t>(0, Corpus::standard().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             std::string name =
                                 Corpus::standard().cases()[info.param].id;
                             for (char& c : name) {
                                 if (!std::isalnum(static_cast<unsigned char>(c))) {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

TEST(SemanticTest, ReferenceFixIsAcceptable) {
    const UbCase* c = corpus().find("panic/oob_index_0");
    ASSERT_NE(c, nullptr);
    const SemanticVerdict verdict = judge_semantics(c->reference_fix, *c);
    EXPECT_TRUE(verdict.acceptable()) << verdict.detail;
}

TEST(SemanticTest, BuggySourceIsNotAcceptable) {
    const UbCase* c = corpus().find("panic/oob_index_0");
    ASSERT_NE(c, nullptr);
    const SemanticVerdict verdict = judge_semantics(c->buggy_source, *c);
    EXPECT_FALSE(verdict.acceptable());
    EXPECT_FALSE(verdict.miri_pass);
}

TEST(SemanticTest, PassButWrongSemanticsRejected) {
    // A "fix" that silences the panic by printing a constant passes MiriLite
    // but diverges from the reference trace -> not acceptable.
    const UbCase* c = corpus().find("panic/div_zero_0");
    ASSERT_NE(c, nullptr);
    const std::string lobotomized = R"(fn main() {
    print_int(25);
}
)";
    const SemanticVerdict verdict = judge_semantics(lobotomized, *c);
    EXPECT_TRUE(verdict.miri_pass);
    EXPECT_FALSE(verdict.trace_match);
    EXPECT_FALSE(verdict.acceptable());
}

TEST(SemanticTest, EquivalentRewriteAccepted) {
    // Different shape, same observable behaviour as the reference -> accepted.
    const UbCase* c = corpus().find("panic/div_zero_0");
    ASSERT_NE(c, nullptr);
    const std::string alternative = R"(fn safe_div(total: i64, parts: i64) -> i64 {
    if parts == 0 {
        return 0 - 1;
    }
    return total / parts;
}
fn main() {
    print_int(safe_div(100, input(0)));
}
)";
    const SemanticVerdict verdict = judge_semantics(alternative, *c);
    EXPECT_TRUE(verdict.acceptable()) << verdict.detail;
}

TEST(SemanticTest, UnparseableCandidateRejected) {
    const UbCase* c = corpus().find("alloc/leak_0");
    ASSERT_NE(c, nullptr);
    const SemanticVerdict verdict = judge_semantics("fn main( {", *c);
    EXPECT_FALSE(verdict.acceptable());
}

TEST(CorpusTest, IndexedLookupsMatchLinearScan) {
    // find() and by_category() answer from indexes built at construction;
    // they must agree exactly with a naive scan over cases().
    for (const auto& c : corpus().cases()) {
        const UbCase* found = corpus().find(c.id);
        ASSERT_NE(found, nullptr) << c.id;
        EXPECT_EQ(found, &c) << c.id;
    }
    for (miri::UbCategory category : miri::all_ub_categories()) {
        std::vector<const UbCase*> expected;
        for (const auto& c : corpus().cases()) {
            if (c.category == category) expected.push_back(&c);
        }
        EXPECT_EQ(corpus().by_category(category), expected)
            << miri::ub_category_label(category);
    }
}

TEST(CorpusTest, ConstructFromArbitraryCases) {
    UbCase a;
    a.id = "custom/one";
    a.category = miri::UbCategory::Panic;
    UbCase b;
    b.id = "custom/two";
    b.category = miri::UbCategory::Alloc;
    const Corpus custom(std::vector<UbCase>{a, b});
    EXPECT_EQ(custom.size(), 2u);
    ASSERT_NE(custom.find("custom/two"), nullptr);
    EXPECT_EQ(custom.find("custom/two")->category, miri::UbCategory::Alloc);
    EXPECT_EQ(custom.by_category(miri::UbCategory::Panic).size(), 1u);
    EXPECT_TRUE(custom.by_category(miri::UbCategory::Uninit).empty());
    // Figure order is preserved even for hand-assembled corpora.
    const std::vector<miri::UbCategory> categories = custom.categories();
    ASSERT_EQ(categories.size(), 2u);
    EXPECT_EQ(categories[0], miri::UbCategory::Alloc);
    EXPECT_EQ(categories[1], miri::UbCategory::Panic);
}

TEST(CorpusTest, DuplicateIdsThrowAtConstruction) {
    UbCase a;
    a.id = "dup/same";
    std::vector<UbCase> cases = {a, a};
    EXPECT_THROW(Corpus{std::move(cases)}, std::invalid_argument);
}

TEST(CorpusTest, StrategiesCoverAllThreeFamilies) {
    bool safe = false;
    bool guard = false;
    bool modify = false;
    for (const auto& c : corpus().cases()) {
        switch (c.intended_strategy) {
            case FixStrategy::SafeAlternative: safe = true; break;
            case FixStrategy::AssertionGuard: guard = true; break;
            case FixStrategy::SemanticModification: modify = true; break;
        }
    }
    EXPECT_TRUE(safe);
    EXPECT_TRUE(guard);
    EXPECT_TRUE(modify);
}

}  // namespace
}  // namespace rustbrain::dataset
