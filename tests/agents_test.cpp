#include <gtest/gtest.h>

#include "agents/abstract_reasoning_agent.hpp"
#include "agents/fix_agents.hpp"
#include "agents/rollback_agent.hpp"
#include "core/trace.hpp"
#include "dataset/corpus.hpp"
#include "llm/simllm.hpp"
#include "kb/seed.hpp"
#include "miri/mirilite.hpp"

namespace rustbrain::agents {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const kb::KnowledgeBase& seeded_kb() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

TEST(RollbackAgentTest, TracksBestState) {
    RollbackAgent agent;
    agent.observe("v0", 3);
    agent.observe("v1", 1);
    agent.observe("v2", 4);
    EXPECT_EQ(agent.best_code(), "v1");
    EXPECT_EQ(agent.best_errors(), 1u);
    EXPECT_TRUE(agent.should_rollback(4));
    EXPECT_FALSE(agent.should_rollback(1));
    EXPECT_FALSE(agent.should_rollback(0));
}

TEST(RollbackAgentTest, RollbackChargesClockAndCounts) {
    RollbackAgent agent;
    agent.observe("good", 1);
    agent.observe("bad", 5);
    support::SimClock clock;
    EXPECT_EQ(agent.rollback(clock), "good");
    EXPECT_GT(clock.now_ms(), 0.0);
    EXPECT_EQ(agent.rollbacks_performed(), 1);
}

TEST(RollbackAgentTest, TrajectoryRecordsEveryObservation) {
    RollbackAgent agent;
    agent.observe("a", 1);
    agent.observe("b", 3);
    agent.observe("c", 0);
    EXPECT_EQ(agent.trajectory(), (std::vector<std::size_t>{1, 3, 0}));
}

TEST(RollbackAgentTest, TiesDoNotAdvanceBest) {
    // A same-error-count (sideways) state must not replace the best state —
    // the guarantee the repeated-retry loop relies on.
    RollbackAgent agent;
    agent.observe("original", 1);
    agent.observe("corrupted-sideways", 1);
    EXPECT_EQ(agent.best_code(), "original");
}

TEST(FixAgentTest, AgentRouting) {
    EXPECT_EQ(agent_for_rule("move-dealloc-to-end").family(),
              llm::RuleFamily::Modification);
    EXPECT_EQ(agent_for_rule("guard-divisor").family(), llm::RuleFamily::Assertion);
    EXPECT_EQ(agent_for_rule("valid-bool-compare").family(),
              llm::RuleFamily::SafeReplacement);
    // Unknown rules route to the modification agent.
    EXPECT_EQ(agent_for_rule("nonexistent").family(),
              llm::RuleFamily::Modification);
}

TEST(FixAgentTest, RunProducesVerifiableCode) {
    const auto* ub_case = corpus().find("danglingpointer/use_after_free_0");
    llm::SimLLM sim(llm::gpt4_profile(), 5);
    support::SimClock clock;
    core::TraceStats stats;
    AgentContext context{sim, clock};
    context.trace = &stats;
    context.temperature = 0.1;
    context.inputs = &ub_case->inputs;

    miri::MiriLite miri;
    const auto report = miri.test_source(ub_case->buggy_source, ub_case->inputs);
    const FixOutcome outcome =
        agent_for_rule("move-dealloc-to-end")
            .run(ub_case->buggy_source, report.findings.front(),
                 "move-dealloc-to-end", context);
    EXPECT_TRUE(outcome.model_changed_code);
    EXPECT_GT(clock.total_for("llm"), 0.0);
    // The call is reported through the trace (the single stats source) and
    // stamped with the session sequence.
    EXPECT_EQ(stats.llm_calls(), 1u);
    EXPECT_EQ(context.sequence, 1u);
    EXPECT_EQ(sim.calls_served(), 1u);
}

TEST(ReasoningAgentTest, RetrievesCategoryScopedExemplars) {
    const auto* ub_case = corpus().find("datarace/counter_0");
    llm::SimLLM sim(llm::gpt4_profile(), 7);
    support::SimClock clock;
    AgentContext context{sim, clock};
    context.temperature = 0.2;
    context.knowledge_base = &seeded_kb();
    context.case_hint = ub_case->id;

    AbstractReasoningAgent agent;
    const ReasoningResult result = agent.consult(
        ub_case->buggy_source, miri::UbCategory::DataRace, context);
    ASSERT_GT(result.hits, 0u);
    ASSERT_FALSE(result.exemplar_rules.empty());
    // The sibling variants' verified fix must be among the exemplars.
    EXPECT_NE(std::find(result.exemplar_rules.begin(), result.exemplar_rules.end(),
                        "atomicize-shared-access"),
              result.exemplar_rules.end());
    EXPECT_GT(clock.total_for("kb"), 0.0);
}

TEST(ReasoningAgentTest, NoKbMeansNoExemplars) {
    llm::SimLLM sim(llm::gpt4_profile(), 9);
    support::SimClock clock;
    AgentContext context{sim, clock};
    AbstractReasoningAgent agent;
    const ReasoningResult result =
        agent.consult("fn main() { }", miri::UbCategory::Alloc, context);
    EXPECT_TRUE(result.exemplar_rules.empty());
    EXPECT_EQ(result.hits, 0u);
}

TEST(AgentContextTest, VerifyChargesMiriTime) {
    llm::SimLLM sim(llm::gpt4_profile(), 11);
    support::SimClock clock;
    AgentContext context{sim, clock};
    const miri::MiriReport report = context.verify("fn main() { print_int(1); }");
    EXPECT_TRUE(report.passed());
    EXPECT_GT(clock.total_for("miri"), 0.0);
}

}  // namespace
}  // namespace rustbrain::agents
