// End-to-end and component tests of the RustBrain core: feedback store,
// fast/slow thinking, the orchestrator, and its ablations.
#include <gtest/gtest.h>

#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "dataset/semantic.hpp"
#include "kb/seed.hpp"

namespace rustbrain::core {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const kb::KnowledgeBase& seeded_kb() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

// --- FeedbackStore ----------------------------------------------------

TEST(FeedbackTest, RecordsAndRanks) {
    FeedbackStore store;
    store.record("key", "good-rule", {true, true, 100.0});
    store.record("key", "good-rule", {true, true, 100.0});
    store.record("key", "meh-rule", {true, false, 100.0});
    store.record("key", "bad-rule", {false, false, 100.0});
    const auto preferred = store.preferred_rules("key");
    ASSERT_FALSE(preferred.empty());
    EXPECT_EQ(preferred.front(), "good-rule");
    // Failing rules are omitted.
    for (const auto& rule : preferred) {
        EXPECT_NE(rule, "bad-rule");
    }
}

TEST(FeedbackTest, ConfidenceNeedsRepeatedSuccess) {
    FeedbackStore store;
    EXPECT_FALSE(store.is_confident("key"));
    store.record("key", "rule", {true, true, 1.0});
    EXPECT_FALSE(store.is_confident("key"));
    store.record("key", "rule", {true, true, 1.0});
    EXPECT_TRUE(store.is_confident("key"));
}

TEST(FeedbackTest, KeysAreIndependent) {
    FeedbackStore store;
    store.record("a", "rule", {true, true, 1.0});
    EXPECT_TRUE(store.preferred_rules("b").empty());
    EXPECT_EQ(store.key_count(), 1u);
    EXPECT_EQ(store.records(), 1u);
}

TEST(FeedbackTest, ScoreArithmetic) {
    RuleOutcome outcome;
    outcome.successes = 2;
    outcome.partial = 1;
    outcome.failures = 1;
    EXPECT_DOUBLE_EQ(outcome.score(), 2.0 * 2 + 0.4 - 1.0);
}

// --- RustBrain end-to-end ----------------------------------------------

RustBrainConfig config_for(const std::string& model, bool kb) {
    RustBrainConfig config;
    config.model = model;
    config.use_knowledge_base = kb;
    return config;
}

TEST(RustBrainTest, RepairsRoutineCase) {
    FeedbackStore feedback;
    RustBrain rb(config_for("gpt-4", true), &seeded_kb(), &feedback);
    const auto* ub_case = corpus().find("alloc/double_free_0");
    const CaseResult result = rb.repair(*ub_case);
    EXPECT_TRUE(result.pass) << result.case_id;
    EXPECT_GT(result.time_ms, 0.0);
    EXPECT_GT(result.llm_calls, 0u);
    EXPECT_FALSE(result.error_trajectory.empty());
    if (result.pass) {
        EXPECT_TRUE(
            dataset::judge_semantics(result.final_source, *ub_case).miri_pass);
    }
}

TEST(RustBrainTest, CleanProgramShortCircuits) {
    FeedbackStore feedback;
    RustBrain rb(config_for("gpt-4", false), nullptr, &feedback);
    dataset::UbCase clean;
    clean.id = "clean/noop";
    clean.buggy_source = "fn main() { print_int(7); }\n";
    clean.reference_fix = clean.buggy_source;
    clean.inputs = {{}};
    const CaseResult result = rb.repair(clean);
    EXPECT_TRUE(result.pass);
    EXPECT_TRUE(result.exec);
    EXPECT_EQ(result.steps_executed, 0);
}

TEST(RustBrainTest, DeterministicAcrossRuns) {
    const auto* ub_case = corpus().find("stackborrow/raw_invalidated_0");
    FeedbackStore fb1;
    RustBrain rb1(config_for("gpt-4", true), &seeded_kb(), &fb1);
    FeedbackStore fb2;
    RustBrain rb2(config_for("gpt-4", true), &seeded_kb(), &fb2);
    const CaseResult a = rb1.repair(*ub_case);
    const CaseResult b = rb2.repair(*ub_case);
    EXPECT_EQ(a.pass, b.pass);
    EXPECT_EQ(a.exec, b.exec);
    EXPECT_EQ(a.final_source, b.final_source);
    EXPECT_DOUBLE_EQ(a.time_ms, b.time_ms);
}

TEST(RustBrainTest, RejectsUnknownModel) {
    FeedbackStore feedback;
    EXPECT_THROW(RustBrain(config_for("gpt-99", false), nullptr, &feedback),
                 std::invalid_argument);
}

TEST(RustBrainTest, SeedChangesOutcomeDistributionNotValidity) {
    const auto* ub_case = corpus().find("uninit/fresh_read_0");
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        RustBrainConfig config = config_for("gpt-4", true);
        config.seed = seed;
        FeedbackStore feedback;
        RustBrain rb(config, &seeded_kb(), &feedback);
        const CaseResult result = rb.repair(*ub_case);
        if (result.pass) {
            // Whatever the seed, a claimed pass must be a real pass.
            EXPECT_TRUE(dataset::judge_semantics(result.final_source, *ub_case)
                            .miri_pass);
        }
    }
}

// --- Ablations (the mechanisms the paper argues for) ------------------------

TEST(RustBrainAblation, KnowledgeBaseImprovesRates) {
    int pass_kb = 0;
    int pass_none = 0;
    int exec_kb = 0;
    int exec_none = 0;
    FeedbackStore fb1;
    RustBrain with_kb(config_for("gpt-4", true), &seeded_kb(), &fb1);
    FeedbackStore fb2;
    RustBrain without_kb(config_for("gpt-4", false), nullptr, &fb2);
    for (const auto& ub_case : corpus().cases()) {
        const CaseResult a = with_kb.repair(ub_case);
        const CaseResult b = without_kb.repair(ub_case);
        pass_kb += a.pass;
        exec_kb += a.exec;
        pass_none += b.pass;
        exec_none += b.exec;
    }
    EXPECT_GE(pass_kb, pass_none);
    EXPECT_GT(exec_kb, exec_none);
}

TEST(RustBrainAblation, RollbackImprovesPassRate) {
    // The rollback benefit is a tail effect on any single seed, so the
    // claim is aggregated over three independent sweeps: with rollback
    // must never lose, and must win strictly in total.
    int pass_with = 0;
    int pass_without = 0;
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        RustBrainConfig with_rollback = config_for("gpt-3.5", false);
        with_rollback.seed = seed;
        RustBrainConfig no_rollback = with_rollback;
        no_rollback.use_adaptive_rollback = false;

        int seed_with = 0;
        int seed_without = 0;
        FeedbackStore fb1;
        RustBrain rb_with(with_rollback, nullptr, &fb1);
        FeedbackStore fb2;
        RustBrain rb_without(no_rollback, nullptr, &fb2);
        for (const auto& ub_case : corpus().cases()) {
            seed_with += rb_with.repair(ub_case).pass;
            seed_without += rb_without.repair(ub_case).pass;
        }
        EXPECT_GE(seed_with, seed_without) << "seed " << seed;
        pass_with += seed_with;
        pass_without += seed_without;
    }
    EXPECT_GT(pass_with, pass_without);
}

TEST(RustBrainAblation, FeedbackSkipsKbOnRepeatedShapes) {
    FeedbackStore feedback;
    RustBrain rb(config_for("gpt-4", true), &seeded_kb(), &feedback);
    int skips = 0;
    // Run a whole category of sibling shapes: once the store has seen a
    // shape succeed twice, later variants skip the KB (the paper's
    // red-cell effect).
    for (const dataset::UbCase* ub_case :
         corpus().by_category(miri::UbCategory::DataRace)) {
        skips += rb.repair(*ub_case).kb_skipped_by_feedback;
    }
    EXPECT_GT(skips, 0);
}

TEST(RustBrainAblation, ErrorTrajectoriesShowConvergence) {
    // Aggregate evidence for the paper's fluctuating-decline claim: across
    // the corpus, trajectories end at 0 far more often than they start there.
    FeedbackStore feedback;
    RustBrain rb(config_for("gpt-4", true), &seeded_kb(), &feedback);
    int converged = 0;
    int total = 0;
    for (const auto& ub_case : corpus().cases()) {
        const CaseResult result = rb.repair(ub_case);
        if (result.error_trajectory.empty()) continue;
        ++total;
        if (result.error_trajectory.back() == 0) ++converged;
    }
    EXPECT_GT(total, 0);
    EXPECT_GT(static_cast<double>(converged) / total, 0.8);
}

}  // namespace
}  // namespace rustbrain::core
