#include "lang/parser.hpp"

#include <gtest/gtest.h>

namespace rustbrain::lang {
namespace {

Program parse_ok(std::string_view source) {
    std::string error;
    auto program = try_parse(source, &error);
    EXPECT_TRUE(program.has_value()) << error;
    return program ? std::move(*program) : Program{};
}

void expect_parse_error(std::string_view source) {
    EXPECT_FALSE(try_parse(source).has_value()) << "source parsed unexpectedly:\n"
                                                << source;
}

TEST(ParserTest, MinimalMain) {
    const auto program = parse_ok("fn main() { }");
    ASSERT_EQ(program.functions.size(), 1u);
    EXPECT_EQ(program.functions[0].name, "main");
    EXPECT_FALSE(program.functions[0].is_unsafe);
    EXPECT_TRUE(program.functions[0].body.statements.empty());
}

TEST(ParserTest, UnsafeFnAndParams) {
    const auto program =
        parse_ok("unsafe fn f(a: i32, b: *mut u8) -> i64 { return 0; } fn main() { }");
    ASSERT_EQ(program.functions.size(), 2u);
    const auto& f = program.functions[0];
    EXPECT_TRUE(f.is_unsafe);
    ASSERT_EQ(f.params.size(), 2u);
    EXPECT_EQ(f.params[0].type, Type::i32());
    EXPECT_EQ(f.params[1].type, Type::raw_ptr(Type::u8(), true));
    EXPECT_EQ(f.return_type, Type::i64());
}

TEST(ParserTest, StaticItems) {
    const auto program =
        parse_ok("static mut COUNTER: i64 = 0;\nstatic LIMIT: i32 = 10;\nfn main() { }");
    ASSERT_EQ(program.statics.size(), 2u);
    EXPECT_TRUE(program.statics[0].is_mut);
    EXPECT_FALSE(program.statics[1].is_mut);
}

TEST(ParserTest, LetForms) {
    const auto program = parse_ok(R"(
fn main() {
    let a = 1;
    let mut b: i64 = 2;
    let c: bool = true;
})");
    const auto& stmts = program.functions[0].body.statements;
    ASSERT_EQ(stmts.size(), 3u);
    const auto& b = static_cast<const LetStmt&>(*stmts[1]);
    EXPECT_TRUE(b.is_mut);
    ASSERT_TRUE(b.declared_type.has_value());
    EXPECT_EQ(*b.declared_type, Type::i64());
}

TEST(ParserTest, PrecedenceMulOverAdd) {
    const auto program = parse_ok("fn main() { let x = 1 + 2 * 3; }");
    const auto& let = static_cast<const LetStmt&>(*program.functions[0].body.statements[0]);
    const auto& add = static_cast<const BinaryExpr&>(*let.init);
    EXPECT_EQ(add.op, BinaryOp::Add);
    const auto& mul = static_cast<const BinaryExpr&>(*add.rhs);
    EXPECT_EQ(mul.op, BinaryOp::Mul);
}

TEST(ParserTest, CastBindsTighterThanBinary) {
    const auto program = parse_ok("fn main() { let x = 1 as i64 + 2; }");
    const auto& let = static_cast<const LetStmt&>(*program.functions[0].body.statements[0]);
    const auto& add = static_cast<const BinaryExpr&>(*let.init);
    EXPECT_EQ(add.lhs->kind, ExprKind::Cast);
}

TEST(ParserTest, ChainedCasts) {
    const auto program =
        parse_ok("fn main() { let p = 0 as *const i32 as usize; }");
    const auto& let = static_cast<const LetStmt&>(*program.functions[0].body.statements[0]);
    const auto& outer = static_cast<const CastExpr&>(*let.init);
    EXPECT_EQ(outer.target, Type::usize());
    EXPECT_EQ(outer.operand->kind, ExprKind::Cast);
}

TEST(ParserTest, UnaryChain) {
    const auto program = parse_ok("fn main() { let mut x = 5; let p = &mut x; let y = -*p; }");
    const auto& let = static_cast<const LetStmt&>(*program.functions[0].body.statements[2]);
    const auto& neg = static_cast<const UnaryExpr&>(*let.init);
    EXPECT_EQ(neg.op, UnaryOp::Neg);
    EXPECT_EQ(static_cast<const UnaryExpr&>(*neg.operand).op, UnaryOp::Deref);
}

TEST(ParserTest, AddrOfMutVsShared) {
    const auto program = parse_ok("fn main() { let mut x = 1; let a = &x; let b = &mut x; }");
    const auto& a = static_cast<const LetStmt&>(*program.functions[0].body.statements[1]);
    const auto& b = static_cast<const LetStmt&>(*program.functions[0].body.statements[2]);
    EXPECT_EQ(static_cast<const UnaryExpr&>(*a.init).op, UnaryOp::AddrOf);
    EXPECT_EQ(static_cast<const UnaryExpr&>(*b.init).op, UnaryOp::AddrOfMut);
}

TEST(ParserTest, IfElseChain) {
    const auto program = parse_ok(R"(
fn main() {
    let x = 1;
    if x == 1 {
        print_int(1);
    } else if x == 2 {
        print_int(2);
    } else {
        print_int(3);
    }
})");
    const auto& if_stmt = static_cast<const IfStmt&>(*program.functions[0].body.statements[1]);
    ASSERT_TRUE(if_stmt.else_block.has_value());
    // else-if desugars into a nested if inside the else block
    ASSERT_EQ(if_stmt.else_block->statements.size(), 1u);
    EXPECT_EQ(if_stmt.else_block->statements[0]->kind, StmtKind::If);
}

TEST(ParserTest, WhileAndAssignment) {
    const auto program = parse_ok(R"(
fn main() {
    let mut i = 0;
    while i < 10 {
        i = i + 1;
    }
})");
    const auto& loop_stmt =
        static_cast<const WhileStmt&>(*program.functions[0].body.statements[1]);
    ASSERT_EQ(loop_stmt.body.statements.size(), 1u);
    EXPECT_EQ(loop_stmt.body.statements[0]->kind, StmtKind::Assign);
}

TEST(ParserTest, UnsafeBlock) {
    const auto program = parse_ok(R"(
fn main() {
    let x = 5;
    let p = &x as *const i32;
    unsafe {
        print_int(*p as i64);
    }
})");
    EXPECT_EQ(program.functions[0].body.statements[2]->kind, StmtKind::Unsafe);
}

TEST(ParserTest, ArrayTypesAndLiterals) {
    const auto program = parse_ok(R"(
fn main() {
    let a: [i32; 3] = [1, 2, 3];
    let b = [0; 8];
    let x = a[2];
})");
    const auto& a = static_cast<const LetStmt&>(*program.functions[0].body.statements[0]);
    EXPECT_EQ(*a.declared_type, Type::array(Type::i32(), 3));
    const auto& b = static_cast<const LetStmt&>(*program.functions[0].body.statements[1]);
    EXPECT_EQ(b.init->kind, ExprKind::ArrayRepeat);
    const auto& x = static_cast<const LetStmt&>(*program.functions[0].body.statements[2]);
    EXPECT_EQ(x.init->kind, ExprKind::Index);
}

TEST(ParserTest, FnPointerTypeAndBecome) {
    const auto program = parse_ok(R"(
fn helper(x: i32) -> i32 { return x; }
fn dispatch(x: i32) -> i32 {
    let f: fn(i32) -> i32 = helper;
    become helper(x);
}
fn main() { }
)");
    const auto& dispatch = program.functions[1];
    const auto& let = static_cast<const LetStmt&>(*dispatch.body.statements[0]);
    ASSERT_TRUE(let.declared_type.has_value());
    EXPECT_TRUE(let.declared_type->is_fn_ptr());
    EXPECT_EQ(dispatch.body.statements[1]->kind, StmtKind::Become);
}

TEST(ParserTest, IndirectCallThroughParens) {
    const auto program = parse_ok(R"(
fn f() { }
fn main() {
    let g = f;
    (g)();
})");
    const auto& call = static_cast<const ExprStmt&>(*program.functions[1].body.statements[1]);
    EXPECT_EQ(call.expr->kind, ExprKind::CallPtr);
}

TEST(ParserTest, CallsWithArgs) {
    const auto program = parse_ok(R"(
fn add(a: i32, b: i32) -> i32 { return a + b; }
fn main() {
    let s = add(1, add(2, 3));
})");
    const auto& let = static_cast<const LetStmt&>(*program.functions[1].body.statements[0]);
    const auto& call = static_cast<const CallExpr&>(*let.init);
    EXPECT_EQ(call.callee, "add");
    ASSERT_EQ(call.args.size(), 2u);
    EXPECT_EQ(call.args[1]->kind, ExprKind::Call);
}

TEST(ParserTest, NodeIdsAssigned) {
    auto program = parse_ok("fn main() { let x = 1 + 2; }");
    const auto& let = static_cast<const LetStmt&>(*program.functions[0].body.statements[0]);
    EXPECT_NE(let.id, kInvalidNodeId);
    EXPECT_NE(let.init->id, kInvalidNodeId);
    EXPECT_GT(program.node_count(), 3u);
}

TEST(ParserTest, ErrorMissingSemicolon) { expect_parse_error("fn main() { let x = 1 }"); }
TEST(ParserTest, ErrorBadItem) { expect_parse_error("struct Foo {} fn main() { }"); }
TEST(ParserTest, ErrorUninitializedLet) { expect_parse_error("fn main() { let x; }"); }
TEST(ParserTest, ErrorRawPtrNeedsQualifier) {
    expect_parse_error("fn f(p: *i32) { } fn main() { }");
}
TEST(ParserTest, ErrorUnclosedBlock) { expect_parse_error("fn main() { let a = 1;"); }
TEST(ParserTest, ErrorEmptyArray) { expect_parse_error("fn main() { let a = []; }"); }

TEST(ParserTest, CloneProducesEqualProgram) {
    const auto program = parse_ok(R"(
static mut G: i64 = 0;
fn f(x: i32) -> i32 { return x * 2; }
fn main() {
    let mut i = 0;
    while i < 3 {
        unsafe { G = G + 1; }
        i = i + 1;
    }
})");
    const Program copy = program.clone();
    EXPECT_TRUE(equals(program, copy));
}

TEST(ParserTest, EqualityDetectsDifference) {
    const auto a = parse_ok("fn main() { let x = 1; }");
    const auto b = parse_ok("fn main() { let x = 2; }");
    EXPECT_FALSE(equals(a, b));
}

}  // namespace
}  // namespace rustbrain::lang
