// serve::Reactor — the epoll frontend serves the whole catalog over
// pipelined connections byte-identical to a serial BatchRunner sweep (and
// to the thread-per-connection reference frontend) at 1 and 4 workers,
// holds the per-connection response order under 32 concurrent pipelined
// connections, sheds overload with framed well-typed responses while
// non-shed results stay bit-identical, refuses over-cap connections with
// a framed response instead of a silent drop, and drains pipelined
// requests past the request budget before shutting down.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <thread>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "serve/client.hpp"
#include "serve/reactor.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace rustbrain::serve {
namespace {

/// Shared fixtures: one standard corpus and one seeded knowledge base per
/// process (seeding verifies every rule — not free).
const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const kb::KnowledgeBase& knowledge_base() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase fresh;
        kb::seed_from_corpus(corpus(), fresh);
        return fresh;
    }();
    return kbase;
}

/// The serial oracle: every corpus case rendered by a one-worker
/// BatchRunner, keyed by case id. Computed once per process.
const std::map<std::string, std::string>& serial_renderings() {
    static const std::map<std::string, std::string> renderings = [] {
        core::EngineBuildContext context;
        context.knowledge_base = &knowledge_base();
        const core::BatchRunner serial("rustbrain", {}, context,
                                       core::BatchOptions{1});
        const core::BatchReport report = serial.run(corpus());
        std::map<std::string, std::string> out;
        for (std::size_t i = 0; i < corpus().size(); ++i) {
            out[corpus().cases()[i].id] =
                render_case_result(report.results[i]);
        }
        return out;
    }();
    return renderings;
}

ServerOptions reactor_options(std::size_t workers) {
    ServerOptions options;
    options.service.workers = workers;
    options.service.knowledge_base = &knowledge_base();
    options.frontend = Frontend::Reactor;
    return options;
}

TEST(ServeReactorTest, TransientAcceptErrorsAreExactlyTheFdExhaustionClass) {
    EXPECT_TRUE(is_transient_accept_error(EMFILE));
    EXPECT_TRUE(is_transient_accept_error(ENFILE));
    EXPECT_TRUE(is_transient_accept_error(ENOBUFS));
    EXPECT_TRUE(is_transient_accept_error(ENOMEM));
    // Retried immediately by the accept loops, not via backoff:
    EXPECT_FALSE(is_transient_accept_error(EINTR));
    EXPECT_FALSE(is_transient_accept_error(ECONNABORTED));
    // Fatal:
    EXPECT_FALSE(is_transient_accept_error(EBADF));
    EXPECT_FALSE(is_transient_accept_error(EINVAL));
}

TEST(ServeReactorTest, FullCatalogPipelinedIsByteIdenticalToSerialSweep) {
    // The acceptance property: the reactor serves the whole catalog over
    // one fully pipelined connection (every request written before any
    // response is read), and the rendered results are byte-identical to
    // the serial sweep at both worker counts — and to the threads
    // frontend, which is checked through the same serial oracle.
    for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        RepairServer server(reactor_options(workers));
        RepairClient client(server.port());
        for (std::size_t i = 0; i < corpus().size(); ++i) {
            RepairRequest request;
            request.ticket = "t-" + std::to_string(i);
            request.ub_case = corpus().cases()[i];
            client.send_async(request);
        }
        for (std::size_t i = 0; i < corpus().size(); ++i) {
            const RepairResponse response = client.recv_one();
            ASSERT_TRUE(response.ok)
                << "workers=" << workers << ": " << response.error;
            // In-order responses: ticket i comes back ith.
            EXPECT_EQ(response.ticket, "t-" + std::to_string(i));
            EXPECT_EQ(render_case_result(response.result),
                      serial_renderings().at(corpus().cases()[i].id))
                << "workers=" << workers << " case "
                << corpus().cases()[i].id;
        }
        EXPECT_EQ(server.requests_served(), corpus().size());
        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.frames_read, corpus().size());
        EXPECT_EQ(stats.frames_written, corpus().size());
        EXPECT_EQ(stats.connections_accepted, 1u);
        EXPECT_GE(stats.max_pipeline_depth, 1u);
        server.stop();
    }
}

TEST(ServeReactorTest, ThreadsFrontendAnswersTheSameBytes) {
    // The reference oracle path stays alive and equivalent: a slice of the
    // catalog served by --frontend threads matches the serial renderings.
    ServerOptions options = reactor_options(/*workers=*/2);
    options.frontend = Frontend::Threads;
    RepairServer server(options);
    RepairClient client(server.port());
    const std::size_t kCases = 12;
    ASSERT_GE(corpus().size(), kCases);
    for (std::size_t i = 0; i < kCases; ++i) {
        RepairRequest request;
        request.ub_case = corpus().cases()[i];
        const RepairResponse response = client.repair(request);
        ASSERT_TRUE(response.ok) << response.error;
        EXPECT_EQ(render_case_result(response.result),
                  serial_renderings().at(corpus().cases()[i].id));
    }
    EXPECT_EQ(server.stats().connections_accepted, 1u);
    server.stop();
}

TEST(ServeReactorTest, ThirtyTwoConcurrentPipelinedConnections) {
    // 32 connections, each pipelining its own interleaved slice of the
    // catalog before anyone reads: the per-connection response order and
    // the bytes must both hold with every connection in flight at once.
    const std::size_t kConnections = 32;
    const std::size_t kPerConnection = 4;
    RepairServer server(reactor_options(/*workers=*/4));
    std::vector<std::unique_ptr<RepairClient>> clients;
    for (std::size_t c = 0; c < kConnections; ++c) {
        clients.push_back(std::make_unique<RepairClient>(server.port()));
    }
    for (std::size_t k = 0; k < kPerConnection; ++k) {
        for (std::size_t c = 0; c < kConnections; ++c) {
            const std::size_t index =
                (c * kPerConnection + k) % corpus().size();
            RepairRequest request;
            request.ticket = std::to_string(c) + ":" + std::to_string(k);
            request.ub_case = corpus().cases()[index];
            clients[c]->send_async(request);
        }
    }
    for (std::size_t c = 0; c < kConnections; ++c) {
        for (std::size_t k = 0; k < kPerConnection; ++k) {
            const std::size_t index =
                (c * kPerConnection + k) % corpus().size();
            const RepairResponse response = clients[c]->recv_one();
            ASSERT_TRUE(response.ok) << response.error;
            EXPECT_EQ(response.ticket,
                      std::to_string(c) + ":" + std::to_string(k));
            EXPECT_EQ(render_case_result(response.result),
                      serial_renderings().at(corpus().cases()[index].id));
        }
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.connections_accepted, kConnections);
    EXPECT_EQ(stats.frames_read, kConnections * kPerConnection);
    server.stop();
}

TEST(ServeReactorTest, OverloadShedsFramedResponsesAndKeepsTheConnection) {
    // workers=1 and max_inflight=1 with 16 requests pipelined in one
    // burst: admission control must shed most of them. Every shed comes
    // back as a framed, well-typed response in its pipeline slot; every
    // non-shed result stays bit-identical to the serial sweep; and the
    // connection survives to serve a post-burst request.
    ServerOptions options = reactor_options(/*workers=*/1);
    options.service.max_inflight = 1;
    RepairServer server(options);
    RepairClient client(server.port());
    const std::size_t kBurst = 16;
    const dataset::UbCase& ub_case = corpus().cases().front();
    for (std::size_t i = 0; i < kBurst; ++i) {
        RepairRequest request;
        request.ticket = "b-" + std::to_string(i);
        request.ub_case = ub_case;
        client.send_async(request);
    }
    std::size_t ok = 0;
    std::size_t shed = 0;
    for (std::size_t i = 0; i < kBurst; ++i) {
        const RepairResponse response = client.recv_one();
        EXPECT_EQ(response.ticket, "b-" + std::to_string(i));
        if (response.shed) {
            ++shed;
            EXPECT_FALSE(response.ok);
            EXPECT_GE(response.retry_after_ms, 1.0);
            EXPECT_NE(response.error.find("overloaded"), std::string::npos)
                << response.error;
            // A shed request was never run: no result attached.
            EXPECT_EQ(response.result.case_id, "");
        } else {
            ASSERT_TRUE(response.ok) << response.error;
            ++ok;
            EXPECT_EQ(render_case_result(response.result),
                      serial_renderings().at(ub_case.id));
        }
    }
    EXPECT_EQ(ok + shed, kBurst);
    EXPECT_GE(ok, 1u);    // the first request always fits under the cap
    EXPECT_GE(shed, 1u);  // a 16-deep burst cannot all fit through cap 1

    // Shedding answered over the connection — it never dropped it.
    RepairRequest after;
    after.ticket = "after";
    after.ub_case = ub_case;
    const RepairResponse response = client.repair(after);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(render_case_result(response.result),
              serial_renderings().at(ub_case.id));

    const ServiceStats stats = server.service().stats();
    EXPECT_EQ(stats.shed, shed);
    EXPECT_EQ(stats.submitted, kBurst + 1);
    EXPECT_EQ(stats.completed, ok + 1);
    server.stop();
}

TEST(ServeReactorTest, ConnectionCapRefusesWithAFramedShedResponse) {
    ServerOptions options = reactor_options(/*workers=*/1);
    options.max_connections = 1;
    RepairServer server(options);
    RepairClient first(server.port());
    // A completed round trip guarantees the reactor registered `first`
    // before the second connect is accepted.
    RepairRequest request;
    request.ub_case = corpus().cases().front();
    ASSERT_TRUE(first.repair(request).ok);

    RepairClient second(server.port());
    const RepairResponse refusal = second.recv_one();
    EXPECT_FALSE(refusal.ok);
    EXPECT_TRUE(refusal.shed);
    EXPECT_GT(refusal.retry_after_ms, 0.0);
    EXPECT_NE(refusal.error.find("connection cap"), std::string::npos)
        << refusal.error;
    EXPECT_EQ(server.stats().connections_rejected, 1u);

    // The capped-out connection never disturbed the first one.
    ASSERT_TRUE(first.repair(request).ok);
    server.stop();
}

TEST(ServeReactorTest, BudgetDrainsPipelinedRequestsBeforeShutdown) {
    // max_requests smaller than the pipeline depth: requests decoded
    // before the budget tripped are still answered, then wait() returns
    // without stop() ever being called externally.
    ServerOptions options = reactor_options(/*workers=*/1);
    options.max_requests = 2;
    RepairServer server(options);
    RepairClient client(server.port());
    const std::size_t kPipelined = 4;
    for (std::size_t i = 0; i < kPipelined; ++i) {
        RepairRequest request;
        request.ticket = "p-" + std::to_string(i);
        request.ub_case = corpus().cases().front();
        client.send_async(request);
    }
    // Frames decoded before the budget tripped are all answered, in
    // order; frames still in the socket when it tripped are not decoded,
    // and the server closes after the owed responses are flushed. Both
    // splits are legal — the invariant is "never fewer than the budget,
    // never a dropped owed response".
    std::size_t received = 0;
    try {
        for (; received < kPipelined; ++received) {
            const RepairResponse response = client.recv_one();
            ASSERT_TRUE(response.ok) << response.error;
            EXPECT_EQ(response.ticket, "p-" + std::to_string(received));
        }
    } catch (const std::runtime_error&) {
        // Clean close after the drain.
    }
    EXPECT_GE(received, 2u);
    server.wait();
    EXPECT_EQ(server.requests_served(), received);
}

TEST(ServeReactorTest, PartialVectoredWritesMidIovecKeepBytesExact) {
    // A tiny server send buffer plus a tiny-window client that reads
    // nothing until the whole catalog is in flight: multi-frame writev
    // batches must stop partway through an iovec, arm EPOLLOUT, and
    // resume across the partially written frame — and the byte stream
    // the client finally reads must still be exact and in order.
    ServerOptions options = reactor_options(/*workers=*/4);
    options.send_buffer_bytes = 4096;
    RepairServer server(options);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rcvbuf = 4096;  // set before connect so the window stays small
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                           sizeof rcvbuf),
              0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0);

    for (std::size_t i = 0; i < corpus().size(); ++i) {
        RepairRequest request;
        request.ticket = "t-" + std::to_string(i);
        request.ub_case = corpus().cases()[i];
        write_frame(fd, render_request(request));
    }
    // Let responses pile up behind the stalled writer so flushes have
    // multi-frame batches to gather once reading starts.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.stats().epollout_arms == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "writer never stalled despite the 4 KiB buffers";
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (std::size_t i = 0; i < corpus().size(); ++i) {
        std::string payload;
        ASSERT_TRUE(read_frame(fd, payload)) << "short stream at " << i;
        const RepairResponse response = parse_response(payload);
        ASSERT_TRUE(response.ok) << response.error;
        EXPECT_EQ(response.ticket, "t-" + std::to_string(i));
        EXPECT_EQ(render_case_result(response.result),
                  serial_renderings().at(corpus().cases()[i].id));
    }
    ::close(fd);
    const ServerStats stats = server.stats();
    EXPECT_GE(stats.epollout_arms, 1u);
    EXPECT_GE(stats.writev_batches, 2u);
    EXPECT_GE(stats.frames_per_writev_max, 2u);
    EXPECT_EQ(stats.frames_written, corpus().size());
    server.stop();
}

}  // namespace
}  // namespace rustbrain::serve
