// Property tests over randomly generated mini-Rust programs: the
// printer/parser round-trip, interpreter determinism, hallucination-
// mutation well-formedness, and pruning invariants hold for arbitrary
// programs, not just corpus shapes.
#include <gtest/gtest.h>

#include "analysis/prune.hpp"
#include "analysis/vectorize.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/typecheck.hpp"
#include "llm/hallucinate.hpp"
#include "miri/mirilite.hpp"
#include "support/rng.hpp"

namespace rustbrain {
namespace {

/// A small random-program generator producing type-correct mini-Rust:
/// integer arithmetic, mutable locals, while loops, branches, safe
/// references, prints and (optionally) unsafe raw-pointer round trips.
class ProgramGenerator {
  public:
    explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

    std::string generate() {
        source_.clear();
        names_ = 0;
        locals_.clear();
        source_ += "fn main() {\n";
        emit_let();  // guarantee at least one variable
        const int statements = static_cast<int>(rng_.next_range(2, 7));
        for (int i = 0; i < statements; ++i) {
            emit_statement();
        }
        source_ += "    print_int(" + pick_local() + " as i64);\n";
        source_ += "}\n";
        return source_;
    }

  private:
    std::string fresh_name() { return "v" + std::to_string(names_++); }

    std::string pick_local() {
        return locals_[rng_.next_below(locals_.size())];
    }

    /// Small arithmetic expression over existing locals and constants,
    /// shaped to avoid overflow/div-zero panics (guarded operations only).
    std::string expr() {
        if (locals_.empty()) {
            return std::to_string(rng_.next_range(0, 99));
        }
        switch (rng_.next_below(4)) {
            case 0: return std::to_string(rng_.next_range(0, 99));
            case 1: return pick_local();
            case 2:
                return "(" + pick_local() + " + " +
                       std::to_string(rng_.next_range(0, 9)) + ") % 1000";
            default:
                return "(" + pick_local() + " * 2 + 1) % 1000";
        }
    }

    void emit_let() {
        const std::string name = fresh_name();
        source_ += "    let mut " + name + ": i32 = " + expr() + ";\n";
        locals_.push_back(name);
    }

    void emit_statement() {
        switch (rng_.next_below(6)) {
            case 0:
                emit_let();
                break;
            case 1:
                source_ += "    " + pick_local() + " = " + expr() + ";\n";
                break;
            case 2: {  // bounded loop
                const std::string counter = fresh_name();
                source_ += "    let mut " + counter + ": i32 = 0;\n";
                source_ += "    while " + counter + " < " +
                           std::to_string(rng_.next_range(1, 5)) + " {\n";
                source_ += "        " + pick_local() + " = " + expr() + ";\n";
                source_ += "        " + counter + " = " + counter + " + 1;\n";
                source_ += "    }\n";
                break;
            }
            case 3:
                source_ += "    if " + pick_local() + " % 2 == 0 {\n";
                source_ += "        print_int((" + expr() + ") as i64);\n";
                source_ += "    } else {\n";
                source_ += "        print_int(0 - 1);\n";
                source_ += "    }\n";
                break;
            case 4: {  // safe reference round trip
                const std::string ref = fresh_name();
                source_ += "    let " + ref + " = &" + pick_local() + ";\n";
                source_ += "    print_int(*" + ref + " as i64);\n";
                break;
            }
            default: {  // well-behaved unsafe raw pointer use
                const std::string target = pick_local();
                const std::string ptr = fresh_name();
                source_ += "    let " + ptr + " = &mut " + target +
                           " as *mut i32;\n";
                source_ += "    unsafe {\n";
                source_ += "        *" + ptr + " = (*" + ptr + " + 1) % 1000;\n";
                source_ += "    }\n";
                break;
            }
        }
    }

    support::Rng rng_;
    std::string source_;
    int names_ = 0;
    std::vector<std::string> locals_;
};

class GeneratedPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratedPrograms, ParsesAndTypeChecks) {
    ProgramGenerator generator(GetParam());
    const std::string source = generator.generate();
    std::string error;
    auto program = lang::try_parse(source, &error);
    ASSERT_TRUE(program.has_value()) << error << "\n" << source;
    EXPECT_TRUE(lang::type_check(*program, &error)) << error << "\n" << source;
}

TEST_P(GeneratedPrograms, PrinterRoundTripIsIdentity) {
    ProgramGenerator generator(GetParam());
    const std::string source = generator.generate();
    auto program = lang::try_parse(source);
    ASSERT_TRUE(program.has_value());
    auto reparsed = lang::try_parse(lang::print_program(*program));
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_TRUE(lang::equals(*program, *reparsed)) << source;
}

TEST_P(GeneratedPrograms, InterpreterIsDeterministicAndClean) {
    ProgramGenerator generator(GetParam());
    const std::string source = generator.generate();
    miri::MiriLite miri;
    const miri::MiriReport a = miri.test_source(source, {{}});
    const miri::MiriReport b = miri.test_source(source, {{}});
    // Generated programs are well-behaved by construction.
    EXPECT_TRUE(a.passed()) << a.summary() << "\n" << source;
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.total_steps, b.total_steps);
}

TEST_P(GeneratedPrograms, MutationKeepsProgramParseable) {
    ProgramGenerator generator(GetParam());
    const std::string source = generator.generate();
    auto program = lang::try_parse(source);
    ASSERT_TRUE(program.has_value());
    support::Rng rng(GetParam() ^ 0xABCDEF);
    lang::Program mutated = program->clone();
    if (llm::mutate_program(mutated, rng)) {
        // Hallucinations damage semantics, never syntax.
        EXPECT_TRUE(lang::try_parse(lang::print_program(mutated)).has_value())
            << lang::print_program(mutated);
    }
}

TEST_P(GeneratedPrograms, PruneAndVectorizeInvariants) {
    ProgramGenerator generator(GetParam());
    const std::string source = generator.generate();
    auto program = lang::try_parse(source);
    ASSERT_TRUE(program.has_value());
    analysis::PruneStats stats;
    const lang::Program pruned = analysis::prune_ast(*program, &stats);
    EXPECT_LE(stats.pruned_nodes, stats.original_nodes);
    const analysis::AstVector vec = analysis::vectorize(*program);
    EXPECT_NEAR(analysis::cosine_similarity(vec, vec), 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedPrograms,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace rustbrain
