// BatchRunner: parallel sweeps must be bit-identical to serial execution —
// same CaseResult sequence, same aggregate SimClock — at any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/batch_runner.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"

namespace rustbrain::core {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const kb::KnowledgeBase& seeded_kb() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

RustBrainConfig flagship_config() {
    RustBrainConfig config;
    config.model = "gpt-4";
    config.use_knowledge_base = true;
    return config;
}

// Byte-for-byte equality of two result sequences, including the exact
// double bits of every virtual-time figure.
void expect_identical(const BatchReport& serial, const BatchReport& parallel) {
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        const CaseResult& a = serial.results[i];
        const CaseResult& b = parallel.results[i];
        EXPECT_EQ(a.case_id, b.case_id) << "index " << i;
        EXPECT_EQ(a.pass, b.pass) << a.case_id;
        EXPECT_EQ(a.exec, b.exec) << a.case_id;
        EXPECT_EQ(a.time_ms, b.time_ms) << a.case_id;  // exact, not near
        EXPECT_EQ(a.time_breakdown, b.time_breakdown) << a.case_id;
        EXPECT_EQ(a.solutions_generated, b.solutions_generated) << a.case_id;
        EXPECT_EQ(a.steps_executed, b.steps_executed) << a.case_id;
        EXPECT_EQ(a.rollbacks, b.rollbacks) << a.case_id;
        EXPECT_EQ(a.llm_calls, b.llm_calls) << a.case_id;
        EXPECT_EQ(a.kb_consulted, b.kb_consulted) << a.case_id;
        EXPECT_EQ(a.kb_skipped_by_feedback, b.kb_skipped_by_feedback) << a.case_id;
        EXPECT_EQ(a.thinking_switches, b.thinking_switches) << a.case_id;
        EXPECT_EQ(a.escalations, b.escalations) << a.case_id;
        EXPECT_EQ(a.early_stops, b.early_stops) << a.case_id;
        EXPECT_EQ(a.attempts_skipped, b.attempts_skipped) << a.case_id;
        EXPECT_EQ(a.error_trajectory, b.error_trajectory) << a.case_id;
        EXPECT_EQ(a.winning_rule, b.winning_rule) << a.case_id;
        EXPECT_EQ(a.final_source, b.final_source) << a.case_id;
    }
    // Aggregate clocks merge per-case charges in case-index order, so they
    // must match exactly as well.
    EXPECT_EQ(serial.clock.now_ms(), parallel.clock.now_ms());
    EXPECT_EQ(serial.clock.breakdown(), parallel.clock.breakdown());
}

TEST(BatchRunnerTest, EightWorkersBitIdenticalToSerialOverStandardCorpus) {
    const BatchRunner serial_runner(flagship_config(), &seeded_kb(),
                                    BatchOptions{1});
    const BatchRunner parallel_runner(flagship_config(), &seeded_kb(),
                                      BatchOptions{8});
    const BatchReport serial = serial_runner.run(corpus());
    const BatchReport parallel = parallel_runner.run(corpus());
    EXPECT_EQ(serial.workers_used, 1u);
    EXPECT_EQ(parallel.workers_used, 8u);
    expect_identical(serial, parallel);
}

TEST(BatchRunnerTest, OddWorkerCountAlsoIdentical) {
    const std::vector<const dataset::UbCase*> cases =
        corpus().by_category(miri::UbCategory::DanglingPointer);
    const BatchRunner serial_runner(flagship_config(), &seeded_kb(),
                                    BatchOptions{1});
    const BatchRunner parallel_runner(flagship_config(), &seeded_kb(),
                                      BatchOptions{3});
    expect_identical(serial_runner.run(cases), parallel_runner.run(cases));
}

TEST(BatchRunnerTest, WarmFeedbackSnapshotIsSchedulingInvariant) {
    // Learn a snapshot on the danglingpointer siblings, then sweep the
    // whole corpus from it: every case starts from a private copy, so
    // parallel and serial runs still agree bit-for-bit.
    FeedbackStore warm;
    {
        RustBrain learner(flagship_config(), &seeded_kb(), &warm);
        for (const dataset::UbCase* ub_case :
             corpus().by_category(miri::UbCategory::DanglingPointer)) {
            (void)learner.repair(*ub_case);
        }
    }
    ASSERT_GT(warm.records(), 0u);
    const BatchRunner serial_runner(flagship_config(), &seeded_kb(),
                                    BatchOptions{1}, &warm);
    const BatchRunner parallel_runner(flagship_config(), &seeded_kb(),
                                      BatchOptions{8}, &warm);
    const BatchReport serial = serial_runner.run(corpus());
    const BatchReport parallel = parallel_runner.run(corpus());
    expect_identical(serial, parallel);
    // The snapshot actually changes behaviour: confident shapes skip the KB.
    int kb_skips = 0;
    for (const CaseResult& result : serial.results) {
        kb_skips += result.kb_skipped_by_feedback;
    }
    EXPECT_GT(kb_skips, 0);
}

TEST(BatchRunnerTest, GenericFactoryMakesOneEnginePerWorker) {
    auto factory_calls = std::make_shared<std::atomic<int>>(0);
    const EngineFactory factory = [factory_calls](std::size_t) -> RepairFn {
        factory_calls->fetch_add(1);
        return [](const dataset::UbCase& ub_case) {
            CaseResult result;
            result.case_id = ub_case.id;
            result.pass = true;
            result.time_ms = 1.0;
            return result;
        };
    };
    const BatchRunner runner(factory, BatchOptions{4});
    const BatchReport report = runner.run(corpus());
    EXPECT_EQ(*factory_calls, 4);
    EXPECT_EQ(report.workers_used, 4u);
    EXPECT_EQ(report.pass_total(), static_cast<int>(corpus().size()));
    // Engines without a breakdown still contribute their totals.
    EXPECT_DOUBLE_EQ(report.clock.total_for("repair"),
                     static_cast<double>(corpus().size()));
}

TEST(BatchRunnerTest, WorkersClampedToCaseCount) {
    const std::vector<const dataset::UbCase*> two = {&corpus().cases()[0],
                                                     &corpus().cases()[1]};
    const BatchRunner runner(flagship_config(), &seeded_kb(), BatchOptions{16});
    const BatchReport report = runner.run(two);
    EXPECT_EQ(report.workers_used, 2u);
    EXPECT_EQ(report.results.size(), 2u);
}

TEST(BatchRunnerTest, EmptyCaseListYieldsEmptyReport) {
    const BatchRunner runner(flagship_config(), &seeded_kb(), BatchOptions{4});
    const BatchReport report = runner.run(std::vector<const dataset::UbCase*>{});
    EXPECT_TRUE(report.results.empty());
    EXPECT_EQ(report.pass_total(), 0);
    EXPECT_EQ(report.clock.now_ms(), 0.0);
}

TEST(BatchRunnerTest, RunSequentialSeesSharedEngineState) {
    // Ordered execution with a shared feedback store: the later datarace
    // siblings must benefit from the earlier ones — the effect parallel
    // sweeps deliberately exclude.
    FeedbackStore feedback;
    RustBrain engine(flagship_config(), &seeded_kb(), &feedback);
    const std::vector<const dataset::UbCase*> siblings =
        corpus().by_category(miri::UbCategory::DataRace);
    ASSERT_FALSE(siblings.empty());
    const BatchReport report = BatchRunner::run_sequential(
        siblings,
        [&](const dataset::UbCase& ub_case) { return engine.repair(ub_case); });
    bool any_skip = false;
    for (const CaseResult& result : report.results) {
        any_skip |= result.kb_skipped_by_feedback;
    }
    EXPECT_TRUE(any_skip);
    EXPECT_GT(feedback.records(), 0u);
}

}  // namespace
}  // namespace rustbrain::core
