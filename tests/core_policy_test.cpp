// ThinkingPolicy / PolicyRegistry — the pluggable fast↔slow switch.
//
// The load-bearing contract is bit-identity of the default: `policy=paper`
// sweeps of all four registry engines over the full standard corpus
// (serial and 4-worker) are byte-equal to goldens fingerprinted on the
// pre-refactor orchestrator, and omitting the option entirely is the same
// engine. On top of that: the registry's unknown-id/unknown-knob error
// paths, the spec parser, and the behavioral deltas of the non-default
// strategies (fast-only never escalates, slow-all deliberates past
// success without changing the verdict, budget stops early, and
// feedback-guided sheds overhead on confident shapes).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "core/thinking_policy.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "support/hashing.hpp"

namespace rustbrain::core {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const kb::KnowledgeBase& seeded_kb() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

EngineBuildContext kb_context() {
    EngineBuildContext context;
    context.knowledge_base = &seeded_kb();
    return context;
}

// --- golden fingerprints ----------------------------------------------------
// Canonical FNV-1a digest of every pre-policy CaseResult field, in case
// order. The constants below were captured from the orchestrator as it
// stood BEFORE the ThinkingPolicy refactor (commit "Add Verification
// Oracle..."), so they pin `policy=paper` to the pre-refactor behavior
// byte for byte. The new switch-count fields are deliberately excluded:
// they did not exist in the golden universe.

void feed_u64(std::uint64_t& h, std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
    h = support::fnv1a64(buf, h);
}

void feed_double(std::uint64_t& h, double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    feed_u64(h, bits);
}

std::uint64_t fingerprint(const BatchReport& report) {
    std::uint64_t h = support::kFnvOffsetBasis;
    for (const CaseResult& r : report.results) {
        h = support::fnv1a64(r.case_id, h);
        feed_u64(h, r.pass);
        feed_u64(h, r.exec);
        feed_double(h, r.time_ms);
        for (const auto& [category, ms] : r.time_breakdown) {
            h = support::fnv1a64(category, h);
            feed_double(h, ms);
        }
        feed_u64(h, static_cast<std::uint64_t>(r.solutions_generated));
        feed_u64(h, static_cast<std::uint64_t>(r.steps_executed));
        feed_u64(h, static_cast<std::uint64_t>(r.rollbacks));
        feed_u64(h, r.llm_calls);
        feed_u64(h, r.kb_consulted);
        feed_u64(h, r.kb_skipped_by_feedback);
        for (std::size_t n : r.error_trajectory) feed_u64(h, n);
        h = support::fnv1a64(r.winning_rule, h);
        h = support::fnv1a64(r.final_source, h);
    }
    return h;
}

struct Golden {
    const char* engine;
    std::uint64_t digest;
};

// Captured pre-refactor (see comment above). Serial and 4-worker sweeps
// agreed then, and must agree now.
constexpr Golden kPreRefactorGoldens[] = {
    {"expert", 0x97a944e45479ee0eULL},
    {"fixed-pipeline", 0x31bfc7125aae841eULL},
    {"rustbrain", 0x7e1b39d6f46566bcULL},
    {"standalone", 0x2e53be705735e142ULL},
};

TEST(PaperPolicyGoldenTest, AllEnginesMatchPreRefactorGoldensSerialAndParallel) {
    for (const Golden& golden : kPreRefactorGoldens) {
        SCOPED_TRACE(golden.engine);
        const EngineOptions options = EngineOptions::parse("policy=paper");
        const BatchRunner serial(golden.engine, options, kb_context(),
                                 BatchOptions{1});
        const BatchRunner parallel(golden.engine, options, kb_context(),
                                   BatchOptions{4});
        EXPECT_EQ(fingerprint(serial.run(corpus())), golden.digest);
        EXPECT_EQ(fingerprint(parallel.run(corpus())), golden.digest);
    }
}

TEST(PaperPolicyGoldenTest, ZeroStepGrantStillExecutesEachSolutionOnce) {
    // Pre-refactor, a max_steps at or below the solution's own rule count
    // was pad-only — every solution still executed its rules once. The
    // policy seam's truncation only applies when a policy deviates from
    // the configured grant, so under `paper` these two configs stay
    // bit-identical (as they were pre-refactor).
    const BatchRunner zero("rustbrain", EngineOptions::parse("max_steps=0"),
                           kb_context(), BatchOptions{1});
    const BatchRunner one("rustbrain", EngineOptions::parse("max_steps=1"),
                          kb_context(), BatchOptions{1});
    EXPECT_EQ(fingerprint(zero.run(corpus())), fingerprint(one.run(corpus())));
}

TEST(PaperPolicyGoldenTest, DefaultPolicyIsPaper) {
    // Omitting the option entirely is the same engine, byte for byte.
    for (const Golden& golden : kPreRefactorGoldens) {
        SCOPED_TRACE(golden.engine);
        const BatchRunner runner(golden.engine, {}, kb_context(), BatchOptions{1});
        EXPECT_EQ(fingerprint(runner.run(corpus())), golden.digest);
    }
}

// --- registry mechanics -----------------------------------------------------

TEST(PolicyRegistryTest, BuiltinListsTheSixStrategies) {
    const PolicyRegistry& registry = PolicyRegistry::builtin();
    for (const char* id : {"paper", "feedback-guided", "screened", "budget",
                           "fast-only", "slow-all"}) {
        EXPECT_TRUE(registry.contains(id)) << id;
        EXPECT_NE(registry.help().find(id), std::string::npos);
    }
    EXPECT_EQ(registry.ids().size(), 6u);
}

TEST(PolicyRegistryTest, UnknownIdThrowsListingAvailable) {
    try {
        (void)PolicyRegistry::builtin().build("papr");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("papr"), std::string::npos);
        EXPECT_NE(message.find("paper"), std::string::npos);
        EXPECT_NE(message.find("feedback-guided"), std::string::npos);
    }
}

TEST(PolicyRegistryTest, UnknownKnobThrowsNamingIt) {
    try {
        (void)parse_policy_spec("budget,millis=100");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("millis"), std::string::npos);
        EXPECT_NE(message.find("ms"), std::string::npos);
    }
    // The paper policy has no knobs at all.
    EXPECT_THROW((void)parse_policy_spec("paper,ms=1"), std::invalid_argument);
}

TEST(PolicyRegistryTest, SpecParserAcceptsBothSeparators) {
    EXPECT_EQ(parse_policy_spec("paper")->id(), "paper");
    EXPECT_EQ(parse_policy_spec("")->id(), "paper");  // empty = default
    const auto comma = parse_policy_spec("budget,ms=1500");
    const auto semicolon = parse_policy_spec("budget;ms=1500");
    EXPECT_EQ(comma->descriptor(), "budget(ms=1500)");
    EXPECT_EQ(semicolon->descriptor(), comma->descriptor());
    EXPECT_EQ(parse_policy_spec("feedback-guided")->descriptor(),
              "feedback-guided(threshold=4.0)");
    EXPECT_THROW((void)parse_policy_spec("budget,ms"), std::invalid_argument);
}

TEST(PolicyRegistryTest, ScreenedPolicyKnobsRoundTrip) {
    // Default threshold, both separators, and an explicit knob all round-
    // trip through the spec parser into the descriptor.
    EXPECT_EQ(parse_policy_spec("screened")->id(), "screened");
    EXPECT_EQ(parse_policy_spec("screened")->descriptor(),
              "screened(threshold=0.75)");
    const auto comma = parse_policy_spec("screened,threshold=0.9");
    const auto semicolon = parse_policy_spec("screened;threshold=0.9");
    EXPECT_EQ(comma->descriptor(), "screened(threshold=0.90)");
    EXPECT_EQ(semicolon->descriptor(), comma->descriptor());
    EXPECT_THROW((void)parse_policy_spec("screened,thresh=0.9"),
                 std::invalid_argument);
    // The CLI helper quotes the knobs for travel inside an engine spec.
    EngineOptions options;
    set_policy_option(options, "screened,threshold=0.9");
    EXPECT_EQ(options.get("policy", ""), "screened;threshold=0.9");
}

TEST(PolicyRegistryTest, ScreenedPolicyActsOnTheVerdict) {
    const auto policy = parse_policy_spec("screened,threshold=0.8");
    PolicySignals signals;
    signals.solution_count = 3;

    // No verdict (screening off, or nothing screened yet): paper behavior.
    EXPECT_EQ(policy->choose_mode(signals), ThinkingMode::Escalate);

    // A confident ProvenSafe verdict trusts the fast path...
    signals.screened = true;
    signals.screen_verdict = screen::VerdictKind::ProvenSafe;
    signals.screen_confidence = 1.0;
    EXPECT_EQ(policy->choose_mode(signals), ThinkingMode::FastOnly);
    // ...and any fast-only failure still escalates.
    EXPECT_TRUE(policy->escalate_on_failure(signals));

    // Unknown verdicts never shortcut, whatever their confidence.
    signals.screen_verdict = screen::VerdictKind::Unknown;
    signals.screen_confidence = 1.0;
    EXPECT_EQ(policy->choose_mode(signals), ThinkingMode::Escalate);

    // Below-threshold confidence escalates too.
    signals.screen_verdict = screen::VerdictKind::LikelyUB;
    signals.screen_confidence = 0.5;
    EXPECT_EQ(policy->choose_mode(signals), ThinkingMode::Escalate);

    // A LikelyUB verdict reorders the plan: solutions whose rules repair
    // the pinned category come first, original order otherwise (stable).
    signals.screen_confidence = 0.95;
    signals.screen_category = miri::UbCategory::Uninit;
    signals.solution_categories = {
        {miri::UbCategory::Panic},
        {miri::UbCategory::Uninit},
        {miri::UbCategory::Panic, miri::UbCategory::Uninit},
    };
    EXPECT_EQ(policy->plan_attempts(signals),
              (std::vector<std::size_t>{1, 2, 0}));

    // ProvenSafe pins nothing: the ranking order stands.
    signals.screen_verdict = screen::VerdictKind::ProvenSafe;
    EXPECT_EQ(policy->plan_attempts(signals),
              (std::vector<std::size_t>{0, 1, 2}));
}

TEST(PolicyRegistryTest, EngineRegistryRejectsUnknownPolicy) {
    // The policy error surfaces through every engine's policy= option.
    for (const std::string& engine_id : EngineRegistry::builtin().ids()) {
        SCOPED_TRACE(engine_id);
        try {
            (void)EngineRegistry::builtin().build(
                engine_id, EngineOptions::parse("policy=no-such-policy"),
                kb_context());
            FAIL() << "expected std::invalid_argument";
        } catch (const std::invalid_argument& error) {
            const std::string message = error.what();
            EXPECT_NE(message.find("no-such-policy"), std::string::npos);
            EXPECT_NE(message.find("slow-all"), std::string::npos);
        }
    }
}

TEST(PolicyRegistryTest, ConfigSummaryNamesThePolicy) {
    const auto engine = EngineRegistry::builtin().build(
        "rustbrain", EngineOptions::parse("policy=budget;ms=800"), kb_context());
    EXPECT_NE(engine->config_summary().find("policy=budget(ms=800)"),
              std::string::npos);
    const auto plain = EngineRegistry::builtin().build("standalone", {}, {});
    EXPECT_NE(plain->config_summary().find("policy=paper"), std::string::npos);
}

// --- behavioral deltas of the non-default strategies ------------------------

int total(const BatchReport& report, int CaseResult::*field) {
    int sum = 0;
    for (const CaseResult& result : report.results) sum += result.*field;
    return sum;
}

BatchReport sweep_policy(const std::string& spec) {
    const BatchRunner runner("rustbrain",
                             EngineOptions::parse("policy=" + spec),
                             kb_context(), BatchOptions{1});
    return runner.run(corpus());
}

TEST(PolicyBehaviorTest, PaperEscalatesEveryUbCaseAndNothingElse) {
    const BatchReport report = sweep_policy("paper");
    for (const CaseResult& result : report.results) {
        // Every case that needed repair records exactly the one escalation
        // decision; clean short-circuits record none.
        if (result.thinking_switches == 0) continue;
        EXPECT_EQ(result.thinking_switches, 1) << result.case_id;
        EXPECT_EQ(result.escalations, 1) << result.case_id;
        EXPECT_EQ(result.early_stops, 0) << result.case_id;
        EXPECT_EQ(result.attempts_skipped, 0) << result.case_id;
    }
    EXPECT_GT(total(report, &CaseResult::escalations), 0);
}

TEST(PolicyBehaviorTest, FastOnlyNeverEscalatesAndSpendsLess) {
    const BatchReport paper = sweep_policy("paper");
    const BatchReport fast = sweep_policy("fast-only");
    EXPECT_EQ(total(fast, &CaseResult::escalations), 0);
    // One application of the top-ranked solution per case, nothing more.
    for (const CaseResult& result : fast.results) {
        EXPECT_LE(result.steps_executed, 1) << result.case_id;
    }
    EXPECT_LT(fast.virtual_ms_total(), paper.virtual_ms_total());
    // Pure intuition cannot beat deliberate refinement.
    EXPECT_LE(fast.pass_total(), paper.pass_total());
}

TEST(PolicyBehaviorTest, SlowAllDeliberatesPastSuccessWithoutChangingVerdicts) {
    const BatchReport paper = sweep_policy("paper");
    const BatchReport slow_all = sweep_policy("slow-all");
    ASSERT_EQ(paper.results.size(), slow_all.results.size());
    int continued = 0;
    for (std::size_t i = 0; i < paper.results.size(); ++i) {
        const CaseResult& a = paper.results[i];
        const CaseResult& b = slow_all.results[i];
        // The winner is still the first acceptable repair, so verdicts and
        // final sources agree case by case...
        EXPECT_EQ(a.pass, b.pass) << a.case_id;
        EXPECT_EQ(a.exec, b.exec) << a.case_id;
        EXPECT_EQ(a.final_source, b.final_source) << a.case_id;
        EXPECT_EQ(a.winning_rule, b.winning_rule) << a.case_id;
        // ...but the exhaustive loop never does less work.
        EXPECT_GE(b.steps_executed, a.steps_executed) << a.case_id;
        continued += b.steps_executed > a.steps_executed;
    }
    EXPECT_GT(continued, 0);
    EXPECT_GT(slow_all.virtual_ms_total(), paper.virtual_ms_total());
}

TEST(PolicyBehaviorTest, BudgetStopsEarlyUnderATightBudget) {
    const BatchReport paper = sweep_policy("paper");
    const BatchReport budget = sweep_policy("budget;ms=900");
    EXPECT_GT(total(budget, &CaseResult::early_stops), 0);
    EXPECT_LT(budget.virtual_ms_total(), paper.virtual_ms_total());
    EXPECT_LE(budget.pass_total(), paper.pass_total());
    // The budget gate sits before each attempt, so a case's overhead can
    // overshoot by at most one attempt — every stop is recorded.
    for (const CaseResult& result : budget.results) {
        if (result.early_stops > 0) {
            EXPECT_GE(result.time_ms, 900.0) << result.case_id;
        }
    }
}

TEST(PolicyBehaviorTest, FeedbackGuidedShedsOverheadOnConfidentShapes) {
    // A sequential sibling campaign (the repair_campaign shape): once the
    // store is confident about the shared feature key, feedback-guided
    // runs on intuition where paper still deliberates.
    const std::vector<const dataset::UbCase*> siblings =
        corpus().by_category(miri::UbCategory::DataRace);
    ASSERT_GT(siblings.size(), 2u);

    const auto campaign = [&](const std::string& policy_spec) {
        EngineBuildContext context = kb_context();
        FeedbackStore feedback;
        context.feedback = &feedback;
        const auto engine = EngineRegistry::builtin().build(
            "rustbrain", EngineOptions::parse("policy=" + policy_spec), context);
        return BatchRunner::run_sequential(
            siblings, [&](const dataset::UbCase& ub_case) {
                return engine->repair(ub_case);
            });
    };

    const BatchReport paper = campaign("paper");
    const BatchReport guided = campaign("feedback-guided");
    int shortcuts = 0;
    for (const CaseResult& result : guided.results) {
        const bool shortcut =
            result.thinking_switches > 0 && result.escalations == 0;
        shortcuts += shortcut;
        // The shortcut exists because feedback was confident, and confident
        // shortcuts skip the KB consult — the reduced-KB-dependence stat
        // must say so even on the intuition arm.
        if (shortcut) {
            EXPECT_TRUE(result.kb_skipped_by_feedback) << result.case_id;
            EXPECT_FALSE(result.kb_consulted) << result.case_id;
        }
    }
    EXPECT_GT(shortcuts, 0);
    EXPECT_LT(guided.virtual_ms_total(), paper.virtual_ms_total());
    // The trade-off: intuition-only repeats may surrender a case paper's
    // exhaustive loop would have ground out, never more than the cases it
    // shortcut.
    EXPECT_GE(guided.pass_total(), paper.pass_total() - shortcuts);
}

TEST(PolicyBehaviorTest, BaselinesShareTheDecisionSeam) {
    // The budget gate works on the baselines' attempt loops too.
    const dataset::UbCase* hard = nullptr;
    const BatchRunner paper_runner("fixed-pipeline", {}, {}, BatchOptions{1});
    const BatchReport paper = paper_runner.run(corpus());
    for (std::size_t i = 0; i < paper.results.size(); ++i) {
        if (paper.results[i].time_ms > 600.0) {
            hard = &corpus().cases()[i];
            break;
        }
    }
    ASSERT_NE(hard, nullptr);

    const auto tight = EngineRegistry::builtin().build(
        "fixed-pipeline", EngineOptions::parse("policy=budget;ms=200"), {});
    const CaseResult gated = tight->repair(*hard);
    EXPECT_GT(gated.early_stops, 0) << hard->id;

    const auto fast = EngineRegistry::builtin().build(
        "standalone", EngineOptions::parse("policy=fast-only"), {});
    const CaseResult one_shot = fast->repair(*hard);
    EXPECT_LE(one_shot.steps_executed, 1);
    EXPECT_EQ(one_shot.escalations, 0);
}

TEST(PolicyBehaviorTest, SwitchCountsMatchTheTraceStream) {
    TraceRecorder recorder;
    EngineBuildContext context = kb_context();
    context.trace = &recorder;
    const auto engine = EngineRegistry::builtin().build(
        "rustbrain", EngineOptions::parse("policy=budget;ms=900"), context);
    const dataset::UbCase* ub_case = corpus().find("alloc/double_free_0");
    ASSERT_NE(ub_case, nullptr);
    const CaseResult result = engine->repair(*ub_case);
    EXPECT_EQ(recorder.count(TraceEventKind::ThinkingSwitch),
              static_cast<std::size_t>(result.thinking_switches));
    EXPECT_GT(result.thinking_switches, 0);
}

}  // namespace
}  // namespace rustbrain::core
