// Differential stress for the interpreter tiers: a 560-case forged corpus
// swept by every registry engine under RUSTBRAIN_INTERP=tree, slot, and vm
// — the vm tier both with and without the vm::optimize pass
// (RUSTBRAIN_VM_OPT) — must produce byte-identical CaseResult
// fingerprints, serial and 4-worker (the verify_oracle_test bit-identity
// pattern). Tier and optimizer are pure performance knobs — if any
// opcode, fused replay, kill order, or limit check drifted from the tree
// walk by even one step, some forged case's repair trajectory would
// diverge and the fingerprints would split.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "dataset/corpus.hpp"
#include "gen/forge.hpp"
#include "kb/seed.hpp"
#include "miri/mirilite.hpp"
#include "support/hashing.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::verify {
namespace {

/// Serialize every behavior field of every CaseResult (plus the merged
/// clock) into one FNV-1a fingerprint. Byte-identity of the blob is the
/// contract; the hash just makes the comparison one integer.
std::uint64_t fingerprint(const core::BatchReport& report) {
    std::string blob;
    for (const core::CaseResult& r : report.results) {
        blob += r.case_id;
        blob += '|';
        blob += r.pass ? '1' : '0';
        blob += r.exec ? '1' : '0';
        blob += std::to_string(r.time_ms);
        for (const auto& [category, ms] : r.time_breakdown) {
            blob += category + '=' + std::to_string(ms) + ';';
        }
        blob += std::to_string(r.solutions_generated) + ',';
        blob += std::to_string(r.steps_executed) + ',';
        blob += std::to_string(r.rollbacks) + ',';
        blob += std::to_string(r.llm_calls) + ',';
        blob += r.kb_consulted ? '1' : '0';
        blob += r.kb_skipped_by_feedback ? '1' : '0';
        blob += std::to_string(r.thinking_switches) + ',';
        blob += std::to_string(r.escalations) + ',';
        blob += std::to_string(r.early_stops) + ',';
        blob += std::to_string(r.attempts_skipped) + ',';
        for (const std::size_t errors : r.error_trajectory) {
            blob += std::to_string(errors) + ',';
        }
        blob += r.winning_rule;
        blob += '|';
        blob += r.final_source;
        blob += '\n';
    }
    blob += std::to_string(report.clock.now_ms());
    for (const auto& [category, ms] : report.clock.breakdown()) {
        blob += category + '=' + std::to_string(ms) + ';';
    }
    return support::fnv1a64(blob);
}

/// Oracle configured purely from RUSTBRAIN_INTERP (already set by the
/// caller): private cache, screening off so the selected tier actually
/// interprets every uncached verification.
std::shared_ptr<Oracle> env_gated_oracle(InterpTier expected) {
    OracleOptions options;
    options.cache = std::make_shared<VerifyCache>();
    options.caching = true;
    options.screening = false;
    auto oracle = std::make_shared<Oracle>(std::move(options));
    EXPECT_EQ(oracle->interp_tier(), expected);  // the env gate is live
    return oracle;
}

const dataset::Corpus& forged_corpus() {
    static const dataset::Corpus corpus = [] {
        gen::ForgeOptions options;
        options.seed = 21;
        options.count = 560;
        OracleOptions oracle_options;
        oracle_options.cache = std::make_shared<VerifyCache>();
        const Oracle forge_oracle(std::move(oracle_options));
        options.oracle = &forge_oracle;
        return gen::forge_corpus(options);
    }();
    return corpus;
}

TEST(VmDifferentialTest, ForgedCorpusMiriReportsAgreeAcrossAllTiers) {
    const dataset::Corpus& corpus = forged_corpus();
    ASSERT_EQ(corpus.size(), 560u);

    std::vector<std::unique_ptr<Oracle>> oracles;
    for (const InterpTier tier :
         {InterpTier::Tree, InterpTier::Slot, InterpTier::Vm,
          InterpTier::Vm}) {
        OracleOptions options;
        options.caching = false;
        options.screening = false;
        options.interp = tier;
        // Third oracle runs the optimized bytecode (the default), the
        // fourth pins the optimizer off — both must match the tree walk.
        options.vm_opt = oracles.size() < 3;
        oracles.push_back(std::make_unique<Oracle>(std::move(options)));
    }
    auto report_blob = [](const miri::MiriReport& report) {
        std::string blob = std::to_string(report.total_steps) + '\n';
        for (const auto& outputs : report.outputs) {
            for (const std::string& line : outputs) blob += line + '\n';
            blob += '|';
        }
        for (const miri::Finding& finding : report.findings) {
            blob += finding.to_string() + '@' +
                    std::to_string(finding.span.begin) + ':' +
                    std::to_string(finding.span.end) + '\n';
        }
        return blob;
    };
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        SCOPED_TRACE(ub_case.id);
        for (const std::string& source :
             {ub_case.buggy_source, ub_case.reference_fix}) {
            const std::string reference =
                report_blob(oracles[0]->test_source(source, ub_case.inputs));
            EXPECT_EQ(reference,
                      report_blob(oracles[1]->test_source(source, ub_case.inputs)))
                << source;
            EXPECT_EQ(reference,
                      report_blob(oracles[2]->test_source(source, ub_case.inputs)))
                << source;
            EXPECT_EQ(reference,
                      report_blob(oracles[3]->test_source(source, ub_case.inputs)))
                << source;
        }
    }
}

TEST(VmDifferentialTest, EveryEngineSweepsBitIdenticallyUnderEveryTier) {
    const dataset::Corpus& corpus = forged_corpus();
    ASSERT_EQ(corpus.size(), 560u);
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(dataset::Corpus::standard(), kbase);

    struct Config {
        const char* tier;
        InterpTier expected;
        std::size_t workers;
        const char* vm_opt = nullptr;  // RUSTBRAIN_VM_OPT (nullptr = unset)
    };
    const Config baseline_config{"tree", InterpTier::Tree, 1};
    const std::vector<Config> configs = {
        {"tree", InterpTier::Tree, 4},
        {"slot", InterpTier::Slot, 1},
        {"slot", InterpTier::Slot, 4},
        {"vm", InterpTier::Vm, 1, "on"},
        {"vm", InterpTier::Vm, 4, "on"},
        {"vm", InterpTier::Vm, 1, "off"},
        {"vm", InterpTier::Vm, 4, "off"},
    };

    for (const std::string& engine_id : core::EngineRegistry::builtin().ids()) {
        SCOPED_TRACE(engine_id);

        auto sweep = [&](const Config& config) {
            ::setenv("RUSTBRAIN_INTERP", config.tier, 1);
            if (config.vm_opt != nullptr) {
                ::setenv("RUSTBRAIN_VM_OPT", config.vm_opt, 1);
            } else {
                ::unsetenv("RUSTBRAIN_VM_OPT");
            }
            core::EngineBuildContext context;
            context.knowledge_base = &kbase;
            context.oracle = env_gated_oracle(config.expected);
            const core::BatchRunner runner(engine_id, {}, context,
                                           core::BatchOptions{config.workers});
            return fingerprint(runner.run(corpus));
        };

        const std::uint64_t want = sweep(baseline_config);
        for (const Config& config : configs) {
            SCOPED_TRACE(std::string(config.tier) + "/" +
                         std::to_string(config.workers) + "-worker" +
                         (config.vm_opt != nullptr
                              ? std::string("/opt-") + config.vm_opt
                              : std::string()));
            EXPECT_EQ(want, sweep(config));
        }
    }
    ::unsetenv("RUSTBRAIN_INTERP");
    ::unsetenv("RUSTBRAIN_VM_OPT");
}

}  // namespace
}  // namespace rustbrain::verify
