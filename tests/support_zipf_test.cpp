// support::ZipfSampler — the deterministic traffic shape of the
// traffic_replay bench: same seed + skew => same trace, skew 0 is uniform,
// and higher skew concentrates mass on the low ranks.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"
#include "support/zipf.hpp"

namespace rustbrain::support {
namespace {

TEST(ZipfSamplerTest, SameSeedSameTrace) {
    ZipfSampler sampler(50, 1.2);
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(sampler.sample(a), sampler.sample(b));
    }
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
    ZipfSampler sampler(5, 2.0);
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(sampler.sample(rng), 5u);
    }
}

TEST(ZipfSamplerTest, SkewZeroIsUniform) {
    const ZipfSampler sampler(8, 0.0);
    for (std::size_t rank = 0; rank < 8; ++rank) {
        EXPECT_NEAR(sampler.probability(rank), 1.0 / 8.0, 1e-12);
    }
}

TEST(ZipfSamplerTest, ProbabilityDecreasesWithRankAndConcentratesWithSkew) {
    const ZipfSampler mild(20, 0.5);
    const ZipfSampler steep(20, 2.0);
    for (std::size_t rank = 1; rank < 20; ++rank) {
        EXPECT_GE(mild.probability(rank - 1), mild.probability(rank));
        EXPECT_GE(steep.probability(rank - 1), steep.probability(rank));
    }
    // More skew => more mass on the head.
    EXPECT_GT(steep.probability(0), mild.probability(0));
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesTrackProbabilities) {
    const ZipfSampler sampler(10, 1.0);
    Rng rng(42);
    std::map<std::size_t, int> counts;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) ++counts[sampler.sample(rng)];
    for (std::size_t rank = 0; rank < 10; ++rank) {
        const double expected = sampler.probability(rank) * draws;
        EXPECT_NEAR(counts[rank], expected, 0.15 * draws)
            << "rank " << rank;
    }
    // Rank 0 is sampled strictly more often than the tail.
    EXPECT_GT(counts[0], counts[9]);
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
    const ZipfSampler sampler(33, 1.7);
    double total = 0.0;
    for (std::size_t rank = 0; rank < sampler.size(); ++rank) {
        total += sampler.probability(rank);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RejectsDegenerateParameters) {
    EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, std::numeric_limits<double>::quiet_NaN()),
                 std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

}  // namespace
}  // namespace rustbrain::support
