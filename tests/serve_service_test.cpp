// serve::RepairService + RepairServer/RepairClient — the service answers
// exactly what a directly-built registry engine answers, deterministic
// run_batch is byte-identical to a serial BatchRunner sweep at any worker
// count, strategy errors come back as ok=false responses, feedback warms
// across opted-in requests, stats add up, and the loopback socket path
// round-trips real repairs plus the bad-request error path.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace rustbrain::serve {
namespace {

/// Shared fixtures: one standard corpus and one seeded knowledge base per
/// process (seeding verifies every rule — not free).
const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const kb::KnowledgeBase& knowledge_base() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase fresh;
        kb::seed_from_corpus(corpus(), fresh);
        return fresh;
    }();
    return kbase;
}

ServiceOptions service_options(std::size_t workers = 1) {
    ServiceOptions options;
    options.workers = workers;
    options.knowledge_base = &knowledge_base();
    return options;
}

TEST(RepairServiceTest, RepairMatchesADirectlyBuiltRegistryEngine) {
    RepairService service(service_options());
    const dataset::UbCase& ub_case = corpus().cases().front();

    RepairRequest request;
    request.ticket = "direct-compare";
    request.ub_case = ub_case;
    const RepairResponse response = service.repair(request);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.ticket, "direct-compare");
    EXPECT_EQ(response.result.case_id, ub_case.id);

    core::EngineBuildContext context;
    context.knowledge_base = &knowledge_base();
    const auto engine = core::EngineRegistry::builtin().build(
        "rustbrain", {}, context);
    EXPECT_EQ(render_case_result(response.result),
              render_case_result(engine->repair(ub_case)));
}

TEST(RepairServiceTest, RunBatchAtFourWorkersIsByteIdenticalToSerialSweep) {
    // Deterministic mode: ordered merge + per-request engines + bit-identity
    // caches => the rendered results cannot depend on the worker count.
    const std::size_t kCases = 24;
    ASSERT_GE(corpus().size(), kCases);
    std::vector<dataset::UbCase> subset(corpus().cases().begin(),
                                        corpus().cases().begin() + kCases);

    RepairService service(service_options(/*workers=*/4));
    std::vector<RepairRequest> requests;
    for (const dataset::UbCase& ub_case : subset) {
        RepairRequest request;
        request.ub_case = ub_case;
        requests.push_back(std::move(request));
    }
    const std::vector<RepairResponse> responses =
        service.run_batch(std::move(requests));
    ASSERT_EQ(responses.size(), kCases);

    core::EngineBuildContext context;
    context.knowledge_base = &knowledge_base();
    const core::BatchRunner serial("rustbrain", {}, context,
                                   core::BatchOptions{1});
    const core::BatchReport report = serial.run(dataset::Corpus(subset));
    ASSERT_EQ(report.results.size(), kCases);
    for (std::size_t i = 0; i < kCases; ++i) {
        ASSERT_TRUE(responses[i].ok) << responses[i].error;
        EXPECT_EQ(render_case_result(responses[i].result),
                  render_case_result(report.results[i]))
            << subset[i].id;
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, kCases);
    EXPECT_EQ(stats.completed, kCases);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.scheduler.submitted, kCases);
    EXPECT_GE(stats.queue_ms_total, 0.0);
    EXPECT_GE(stats.queue_ms_max, 0.0);
    EXPECT_GE(stats.service_ms_total, stats.queue_ms_total);
    EXPECT_EQ(service.workers(), 4u);
}

TEST(RepairServiceTest, UnknownStrategyComesBackAsAnErrorResponse) {
    RepairService service(service_options());
    RepairRequest request;
    request.engine = "no-such-engine";
    request.ub_case = corpus().cases().front();
    const RepairResponse response = service.repair(request);
    EXPECT_FALSE(response.ok);
    // The registry's help text travels back to the client verbatim.
    EXPECT_NE(response.error.find("unknown engine id 'no-such-engine'"),
              std::string::npos)
        << response.error;
    EXPECT_NE(response.error.find("rustbrain"), std::string::npos);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 1u);

    // One typo never poisons the queue: the next request succeeds.
    request.engine.clear();
    EXPECT_TRUE(service.repair(request).ok);
}

TEST(RepairServiceTest, MistypedDefaultsFailAtConstructionNotPerRequest) {
    ServiceOptions bad_engine = service_options();
    bad_engine.default_engine = "no-such-engine";
    EXPECT_THROW((RepairService(bad_engine)), std::invalid_argument);

    ServiceOptions bad_policy = service_options();
    bad_policy.default_policy = "no-such-policy";
    EXPECT_THROW((RepairService(bad_policy)), std::invalid_argument);
}

TEST(RepairServiceTest, FeedbackWarmsAcrossOptedInRequests) {
    RepairService service(service_options());
    EXPECT_EQ(service.feedback_snapshot().records(), 0u);

    RepairRequest request;
    request.use_feedback = true;
    request.ub_case = corpus().cases().front();
    ASSERT_TRUE(service.repair(request).ok);

    // The repair's slow-thinking evaluations were journaled into the warm
    // store, and the service accounted for exactly that delta.
    const core::FeedbackStore after_one = service.feedback_snapshot();
    EXPECT_GT(after_one.records(), 0u);
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.feedback_requests, 1u);
    EXPECT_EQ(stats.feedback_records_absorbed, after_one.records());

    // A second opted-in request keeps absorbing only its own delta.
    ASSERT_TRUE(service.repair(request).ok);
    stats = service.stats();
    EXPECT_EQ(stats.feedback_requests, 2u);
    EXPECT_EQ(stats.feedback_records_absorbed,
              service.feedback_snapshot().records());

    // Requests that do not opt in leave the warm store untouched.
    request.use_feedback = false;
    const std::uint64_t before = service.feedback_snapshot().records();
    ASSERT_TRUE(service.repair(request).ok);
    EXPECT_EQ(service.feedback_snapshot().records(), before);
    EXPECT_EQ(service.stats().feedback_requests, 2u);
}

TEST(RepairServiceTest, SharedCachesWarmAcrossRepeatedRequests) {
    // Pin verify caching on explicitly: this test measures the warm path
    // itself, so it must hold even under RUSTBRAIN_VERIFY_CACHE=off runs.
    verify::OracleOptions oracle_options;
    oracle_options.cache = std::make_shared<verify::VerifyCache>();
    oracle_options.caching = true;
    ServiceOptions options = service_options();
    options.oracle =
        std::make_shared<const verify::Oracle>(std::move(oracle_options));
    RepairService service(options);
    RepairRequest request;
    request.ub_case = corpus().cases().front();
    const std::string first =
        render_case_result(service.repair(request).result);
    const ServiceStats cold = service.stats();
    const std::string second =
        render_case_result(service.repair(request).result);
    const ServiceStats warm = service.stats();
    // Bit-identity: the warm answer is the cold answer.
    EXPECT_EQ(first, second);
    // ... and it actually came from the shared stores.
    EXPECT_GT(warm.prompt_cache.hits, cold.prompt_cache.hits);
    EXPECT_GT(warm.verify_cache.report_hits, cold.verify_cache.report_hits);
}

TEST(RepairServerTest, LoopbackEndToEndIncludingTheBadRequestPath) {
    ServerOptions options;
    options.service = service_options();
    options.port = 0;  // ephemeral
    RepairServer server(options);
    ASSERT_GT(server.port(), 0u);

    RepairClient client(server.port());
    RepairRequest request;
    request.ticket = "e2e-0";
    request.ub_case = corpus().cases().front();
    const RepairResponse response = client.repair(request);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.ticket, "e2e-0");
    EXPECT_EQ(response.result.case_id, request.ub_case.id);
    // The socket hop is render/parse, so the result matches an in-process
    // repair byte for byte.
    EXPECT_EQ(render_case_result(response.result),
              render_case_result(
                  server.service().repair(request).result));

    // A garbage frame gets a well-formed error response, not a hangup.
    const RepairResponse bad =
        parse_response(client.roundtrip_raw("not a rustbrain request"));
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("wire format error"), std::string::npos)
        << bad.error;

    // The connection survived the bad frame.
    request.ticket = "e2e-1";
    EXPECT_TRUE(client.repair(request).ok);

    server.stop();
    EXPECT_EQ(server.requests_served(), 3u);
}

TEST(RepairServerTest, ServeOnceShutsDownAfterTheRequestBudget) {
    ServerOptions options;
    options.service = service_options();
    options.max_requests = 2;
    RepairServer server(options);

    RepairClient client(server.port());
    RepairRequest request;
    request.ub_case = corpus().cases().front();
    EXPECT_TRUE(client.repair(request).ok);
    EXPECT_TRUE(client.repair(request).ok);
    server.wait();  // returns because the budget is exhausted
    EXPECT_EQ(server.requests_served(), 2u);
}

TEST(RepairServiceTest, QueuePercentilesReportedAndStatsStayConsistent) {
    RepairService service(service_options(/*workers=*/2));
    const std::size_t kCases = 12;
    std::vector<RepairRequest> requests;
    for (std::size_t i = 0; i < kCases; ++i) {
        RepairRequest request;
        request.ub_case = corpus().cases()[i % corpus().size()];
        requests.push_back(std::move(request));
    }
    (void)service.run_batch(std::move(requests));
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, kCases);
    EXPECT_EQ(stats.shed, 0u);
    // Percentiles come from the reservoir of per-request queue_ms samples:
    // monotone in the fraction and bounded by the observed maximum.
    EXPECT_GE(stats.queue_ms_p50, 0.0);
    EXPECT_LE(stats.queue_ms_p50, stats.queue_ms_p95);
    EXPECT_LE(stats.queue_ms_p95, stats.queue_ms_p99);
    EXPECT_LE(stats.queue_ms_p99, stats.queue_ms_max);
}

TEST(RepairServiceTest, MaxInflightShedsSynchronouslyWithRetryAdvice) {
    ServiceOptions options = service_options(/*workers=*/1);
    options.max_inflight = 1;
    RepairService service(options);
    // Saturate the one admission slot, then submit more without waiting:
    // everything past the slot must shed immediately, synchronously on the
    // submitting thread, with the request never queued.
    std::vector<std::future<RepairResponse>> futures;
    for (std::size_t i = 0; i < 8; ++i) {
        RepairRequest request;
        request.ticket = "s-" + std::to_string(i);
        request.ub_case = corpus().cases().front();
        futures.push_back(service.submit(std::move(request)));
    }
    std::size_t ok = 0;
    std::size_t shed = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const RepairResponse response = futures[i].get();
        EXPECT_EQ(response.ticket, "s-" + std::to_string(i));
        if (response.shed) {
            ++shed;
            EXPECT_FALSE(response.ok);
            EXPECT_GE(response.retry_after_ms, 1.0);
        } else {
            ASSERT_TRUE(response.ok) << response.error;
            ++ok;
        }
    }
    EXPECT_GE(ok, 1u);
    EXPECT_GE(shed, 1u);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.shed, shed);
    EXPECT_EQ(stats.completed, ok);
}

}  // namespace
}  // namespace rustbrain::serve
