// The rule library's core guarantee: for every corpus case, at least one
// repair rule produces a patch that passes MiriLite AND matches the
// developer reference semantics. (SimLLM quality then only determines how
// reliably that rule gets selected and applied un-corrupted.)
#include <gtest/gtest.h>

#include "dataset/corpus.hpp"
#include "dataset/semantic.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "llm/rules.hpp"
#include "miri/mirilite.hpp"

namespace rustbrain::llm {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

miri::Finding first_finding(const dataset::UbCase& ub_case) {
    miri::MiriLite miri;
    const auto report = miri.test_source(ub_case.buggy_source, ub_case.inputs);
    EXPECT_FALSE(report.passed());
    return report.findings.empty() ? miri::Finding{} : report.findings[0];
}

TEST(RuleLibraryTest, LibraryIsPopulated) {
    EXPECT_GE(rule_library().size(), 25u);
    EXPECT_NE(find_rule("move-dealloc-to-end"), nullptr);
    EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

TEST(RuleLibraryTest, EveryCategoryHasRules) {
    for (miri::UbCategory category : miri::all_ub_categories()) {
        EXPECT_FALSE(rules_for_category(category).empty())
            << miri::ub_category_label(category);
    }
}

TEST(RuleLibraryTest, RuleIdsUnique) {
    std::set<std::string> seen;
    for (const RepairRule& rule : rule_library()) {
        EXPECT_TRUE(seen.insert(rule.id).second) << rule.id;
    }
}

TEST(RuleLibraryTest, AllThreeFamiliesPresent) {
    bool safe = false;
    bool assertion = false;
    bool modification = false;
    for (const RepairRule& rule : rule_library()) {
        if (rule.family == RuleFamily::SafeReplacement) safe = true;
        if (rule.family == RuleFamily::Assertion) assertion = true;
        if (rule.family == RuleFamily::Modification) modification = true;
    }
    EXPECT_TRUE(safe && assertion && modification);
}

// Per-case: some rule (searched among the category's affinity rules) fully
// repairs the case.
class RuleCoverage : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RuleCoverage, SomeRuleRepairsCase) {
    const dataset::UbCase& ub_case = corpus().cases()[GetParam()];
    const miri::Finding finding = first_finding(ub_case);
    auto program = lang::try_parse(ub_case.buggy_source);
    ASSERT_TRUE(program.has_value());

    std::string attempts;
    for (const RepairRule* rule : rules_for_category(ub_case.category)) {
        const auto patched = rule->apply(*program, finding);
        if (!patched) {
            attempts += rule->id + ": not applicable\n";
            continue;
        }
        const auto verdict = dataset::judge_semantics(*patched, ub_case);
        if (verdict.acceptable()) {
            SUCCEED();
            return;
        }
        attempts += rule->id + ": " +
                    (verdict.miri_pass ? "passes but trace diverges"
                                       : "still fails MiriLite") +
                    " (" + verdict.detail + ")\n";
    }
    FAIL() << "no rule repairs " << ub_case.id << "\n"
           << attempts << "--- buggy\n"
           << ub_case.buggy_source;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, RuleCoverage,
    ::testing::Range<std::size_t>(0, dataset::Corpus::standard().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
        std::string name = dataset::Corpus::standard().cases()[info.param].id;
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return name;
    });

TEST(RuleBehaviorTest, RulesDeclineOnIrrelevantPrograms) {
    auto program = lang::try_parse("fn main() { print_int(1); }");
    ASSERT_TRUE(program.has_value());
    miri::Finding finding;
    finding.category = miri::UbCategory::Alloc;
    int applicable = 0;
    for (const RepairRule& rule : rule_library()) {
        if (rule.apply(*program, finding).has_value()) ++applicable;
    }
    EXPECT_EQ(applicable, 0);
}

TEST(RuleBehaviorTest, ApplyDoesNotMutateInput) {
    const dataset::UbCase* ub_case = corpus().find("alloc/double_free_0");
    ASSERT_NE(ub_case, nullptr);
    auto program = lang::try_parse(ub_case->buggy_source);
    ASSERT_TRUE(program.has_value());
    const std::string before = lang::print_program(*program);
    const miri::Finding finding = first_finding(*ub_case);
    for (const RepairRule& rule : rule_library()) {
        rule.apply(*program, finding);
    }
    EXPECT_EQ(lang::print_program(*program), before);
}

TEST(RuleBehaviorTest, WrongStrategyCanPassButDivergeSemantics) {
    // guard-null-check applied to a use-after-free does not repair it; the
    // pipeline must notice via verification, not trust the model.
    const dataset::UbCase* ub_case =
        corpus().find("danglingpointer/use_after_free_0");
    ASSERT_NE(ub_case, nullptr);
    auto program = lang::try_parse(ub_case->buggy_source);
    ASSERT_TRUE(program.has_value());
    const RepairRule* rule = find_rule("guard-null-check");
    ASSERT_NE(rule, nullptr);
    const auto patched = rule->apply(*program, first_finding(*ub_case));
    if (patched) {
        const auto verdict = dataset::judge_semantics(*patched, *ub_case);
        EXPECT_FALSE(verdict.acceptable());
    }
}

TEST(RuleBehaviorTest, PatchedProgramsStillTypeCheck) {
    // Rules must emit well-formed programs (otherwise the repair loop counts
    // a compile error, which real tools try hard to avoid).
    int patches = 0;
    for (const auto& ub_case : corpus().cases()) {
        auto program = lang::try_parse(ub_case.buggy_source);
        ASSERT_TRUE(program.has_value());
        const miri::Finding finding = first_finding(ub_case);
        for (const RepairRule* rule : rules_for_category(ub_case.category)) {
            const auto patched = rule->apply(*program, finding);
            if (!patched) continue;
            ++patches;
            const std::string source = lang::print_program(*patched);
            std::string error;
            EXPECT_TRUE(lang::try_parse(source, &error).has_value())
                << rule->id << " on " << ub_case.id << ":\n"
                << error << "\n"
                << source;
        }
    }
    EXPECT_GT(patches, 100);
}

}  // namespace
}  // namespace rustbrain::llm
