// serve/wire — the framed text protocol: render/parse round-trip every
// field byte-exactly (hexfloat doubles included), malformed payloads fail
// naming the offending line, and framed fd I/O survives binary payloads,
// reports clean EOF, and rejects hostile length prefixes.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "serve/wire.hpp"

namespace rustbrain::serve {
namespace {

core::CaseResult full_result() {
    core::CaseResult result;
    result.case_id = "alloc/double_free_0";
    result.pass = true;
    result.exec = true;
    result.time_ms = 1234.5 + 1.0 / 3.0;  // not representable in decimal
    result.time_breakdown["llm"] = 0.1;
    result.time_breakdown["verify"] = 7.0 / 11.0;
    result.solutions_generated = 3;
    result.steps_executed = 5;
    result.rollbacks = 1;
    result.llm_calls = 9;
    result.kb_consulted = true;
    result.kb_skipped_by_feedback = false;
    result.thinking_switches = 2;
    result.escalations = 1;
    result.early_stops = 1;
    result.attempts_skipped = 4;
    result.screens = 6;
    result.screen_proven_safe = 2;
    result.screen_likely_ub = 3;
    result.screen_unknown = 1;
    result.error_trajectory = {3, 1, 0};
    result.winning_rule = "use-after-free/guard";
    // Multi-line source with a line that looks like the terminator — the
    // byte-counted block must carry it through untouched.
    result.final_source = "fn main() {\n    print_int(42);\n}\nend\n";
    return result;
}

TEST(ServeWireTest, CaseResultRoundTripsByteExactly) {
    const core::CaseResult original = full_result();
    const std::string rendered = render_case_result(original);
    const core::CaseResult parsed = parse_case_result(rendered);
    // Byte-exactness of the rendering is the property deterministic mode
    // byte-compares rest on: render(parse(render(x))) == render(x).
    EXPECT_EQ(render_case_result(parsed), rendered);
    EXPECT_EQ(parsed.case_id, original.case_id);
    EXPECT_EQ(parsed.pass, original.pass);
    EXPECT_EQ(parsed.exec, original.exec);
    EXPECT_EQ(parsed.time_ms, original.time_ms);  // exact, not NEAR
    EXPECT_EQ(parsed.time_breakdown, original.time_breakdown);
    EXPECT_EQ(parsed.solutions_generated, original.solutions_generated);
    EXPECT_EQ(parsed.steps_executed, original.steps_executed);
    EXPECT_EQ(parsed.rollbacks, original.rollbacks);
    EXPECT_EQ(parsed.llm_calls, original.llm_calls);
    EXPECT_EQ(parsed.kb_consulted, original.kb_consulted);
    EXPECT_EQ(parsed.kb_skipped_by_feedback, original.kb_skipped_by_feedback);
    EXPECT_EQ(parsed.thinking_switches, original.thinking_switches);
    EXPECT_EQ(parsed.escalations, original.escalations);
    EXPECT_EQ(parsed.early_stops, original.early_stops);
    EXPECT_EQ(parsed.attempts_skipped, original.attempts_skipped);
    EXPECT_EQ(parsed.screens, original.screens);
    EXPECT_EQ(parsed.screen_proven_safe, original.screen_proven_safe);
    EXPECT_EQ(parsed.screen_likely_ub, original.screen_likely_ub);
    EXPECT_EQ(parsed.screen_unknown, original.screen_unknown);
    EXPECT_EQ(parsed.error_trajectory, original.error_trajectory);
    EXPECT_EQ(parsed.winning_rule, original.winning_rule);
    EXPECT_EQ(parsed.final_source, original.final_source);
}

TEST(ServeWireTest, RequestRoundTripsIncludingTheCase) {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    RepairRequest request;
    request.ticket = "ticket with spaces\nand a newline";
    request.engine = "rustbrain";
    request.options = "seed=7,temperature=0.25";
    request.policy = "feedback-guided,threshold=2";
    request.use_feedback = true;
    request.ub_case = corpus.cases().front();

    const std::string rendered = render_request(request);
    const RepairRequest parsed = parse_request(rendered);
    EXPECT_EQ(render_request(parsed), rendered);
    EXPECT_EQ(parsed.ticket, request.ticket);
    EXPECT_EQ(parsed.engine, request.engine);
    EXPECT_EQ(parsed.options, request.options);
    EXPECT_EQ(parsed.policy, request.policy);
    EXPECT_EQ(parsed.use_feedback, request.use_feedback);
    EXPECT_EQ(parsed.ub_case.id, request.ub_case.id);
    EXPECT_EQ(parsed.ub_case.buggy_source, request.ub_case.buggy_source);
    EXPECT_EQ(parsed.ub_case.reference_fix, request.ub_case.reference_fix);
    EXPECT_EQ(parsed.ub_case.inputs, request.ub_case.inputs);
    EXPECT_EQ(parsed.ub_case.category, request.ub_case.category);
    EXPECT_EQ(parsed.ub_case.difficulty, request.ub_case.difficulty);
}

TEST(ServeWireTest, ResponseRoundTripsBothOutcomes) {
    RepairResponse ok;
    ok.ticket = "t-1";
    ok.ok = true;
    ok.result = full_result();
    ok.worker = 3;
    ok.queue_ms = 0.125;
    ok.service_ms = 17.375;
    const std::string ok_rendered = render_response(ok);
    const RepairResponse ok_parsed = parse_response(ok_rendered);
    EXPECT_EQ(render_response(ok_parsed), ok_rendered);
    EXPECT_TRUE(ok_parsed.ok);
    EXPECT_EQ(ok_parsed.ticket, "t-1");
    EXPECT_EQ(ok_parsed.worker, 3u);
    EXPECT_EQ(ok_parsed.queue_ms, 0.125);
    EXPECT_EQ(ok_parsed.service_ms, 17.375);
    EXPECT_EQ(render_case_result(ok_parsed.result),
              render_case_result(ok.result));

    RepairResponse failed;
    failed.ticket = "t-2";
    failed.ok = false;
    failed.error = "unknown engine 'nope'\navailable: rustbrain, ...";
    const RepairResponse failed_parsed =
        parse_response(render_response(failed));
    EXPECT_FALSE(failed_parsed.ok);
    EXPECT_EQ(failed_parsed.error, failed.error);
    EXPECT_EQ(failed_parsed.result.case_id, "");
}

TEST(ServeWireTest, MalformedPayloadsThrowNamingTheLine) {
    try {
        (void)parse_case_result("this is not a case result\n");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("wire format error (line"),
                  std::string::npos)
            << error.what();
    }
    EXPECT_THROW((void)parse_request("garbage\n"), std::runtime_error);
    EXPECT_THROW((void)parse_response(""), std::runtime_error);
    // A truncated but well-prefixed rendering fails too.
    const std::string rendered = render_case_result(full_result());
    EXPECT_THROW((void)parse_case_result(
                     rendered.substr(0, rendered.size() / 2)),
                 std::runtime_error);
}

TEST(ServeWireTest, NonCanonicalIntegersAreRejected) {
    // std::stoull would happily take leading whitespace and '+'; the wire
    // format is strict-canonical, so both must fail to parse.
    const std::string rendered = render_case_result(full_result());
    const std::string canonical = "solutions 3";
    for (const std::string lenient : {"solutions +3", "solutions  3"}) {
        std::string mutated = rendered;
        const std::size_t pos = mutated.find(canonical);
        ASSERT_NE(pos, std::string::npos);
        mutated.replace(pos, canonical.size(), lenient);
        EXPECT_THROW((void)parse_case_result(mutated), std::runtime_error)
            << "accepted '" << lenient << "'";
    }
}

TEST(ServeWireTest, FramePrefixIsBigEndianAndBounded) {
    const std::string framed = frame("abc");
    ASSERT_EQ(framed.size(), 7u);
    EXPECT_EQ(static_cast<unsigned char>(framed[0]), 0u);
    EXPECT_EQ(static_cast<unsigned char>(framed[1]), 0u);
    EXPECT_EQ(static_cast<unsigned char>(framed[2]), 0u);
    EXPECT_EQ(static_cast<unsigned char>(framed[3]), 3u);
    EXPECT_EQ(framed.substr(4), "abc");
    EXPECT_THROW((void)frame(std::string(kMaxFramePayload + 1, 'x')),
                 std::invalid_argument);
}

TEST(ServeWireTest, FramedFdIoRoundTripsBinaryAndReportsCleanEof) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string binary("\x00\xff\x01\nnot a line\x00tail", 19);
    write_frame(fds[1], binary);
    write_frame(fds[1], "");  // empty payloads are legal frames
    ::close(fds[1]);
    std::string payload;
    ASSERT_TRUE(read_frame(fds[0], payload));
    EXPECT_EQ(payload, binary);
    ASSERT_TRUE(read_frame(fds[0], payload));
    EXPECT_EQ(payload, "");
    EXPECT_FALSE(read_frame(fds[0], payload));  // clean EOF, no throw
    ::close(fds[0]);
}

TEST(ServeWireTest, WriteToDisconnectedPeerThrowsInsteadOfSigpipe) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[0]);  // client gone before the response is written
    // Without MSG_NOSIGNAL this raises SIGPIPE and kills the whole test
    // binary; the contract is a catchable exception instead. Two writes:
    // the first may be absorbed by the send buffer.
    EXPECT_THROW(
        {
            write_frame(fds[1], std::string(1 << 20, 'x'));
            write_frame(fds[1], std::string(1 << 20, 'x'));
        },
        std::runtime_error);
    ::close(fds[1]);
}

TEST(ServeWireTest, TruncatedFrameThrowsInsteadOfReturningEof) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // Prefix promises 10 bytes; only 3 arrive before EOF.
    const unsigned char prefix[4] = {0, 0, 0, 10};
    ASSERT_EQ(::write(fds[1], prefix, 4), 4);
    ASSERT_EQ(::write(fds[1], "abc", 3), 3);
    ::close(fds[1]);
    std::string payload;
    EXPECT_THROW((void)read_frame(fds[0], payload), std::runtime_error);
    ::close(fds[0]);
}

TEST(ServeWireTest, OversizedLengthPrefixIsRejectedBeforeAllocating) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB
    ASSERT_EQ(::write(fds[1], prefix, 4), 4);
    ::close(fds[1]);
    std::string payload;
    EXPECT_THROW((void)read_frame(fds[0], payload), std::runtime_error);
    ::close(fds[0]);
}

TEST(ServeWireTest, FrameReaderDecodesByteAtATime) {
    // The reactor's incremental decoder must produce the same frames no
    // matter how the stream is fragmented — here, maximally: one byte per
    // feed, across three frames including an empty payload and binary.
    const std::string binary("\x00\xff\x01\nnot a line\x00tail", 19);
    const std::string stream =
        frame("first payload") + frame("") + frame(binary);
    FrameReader reader;
    std::vector<std::string> frames;
    std::string payload;
    for (const char byte : stream) {
        reader.feed(&byte, 1);
        while (reader.next(payload)) frames.push_back(payload);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0], "first payload");
    EXPECT_EQ(frames[1], "");
    EXPECT_EQ(frames[2], binary);
    EXPECT_EQ(reader.frames_decoded(), 3u);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ServeWireTest, FrameReaderSurvivesEverySplitBoundary) {
    // Two frames split at every possible position, including inside the
    // second frame's length prefix — the decoder never loses or reorders.
    const std::string stream = frame("alpha") + frame("beta-payload");
    for (std::size_t split = 0; split <= stream.size(); ++split) {
        FrameReader reader;
        std::vector<std::string> frames;
        std::string payload;
        reader.feed(stream.data(), split);
        while (reader.next(payload)) frames.push_back(payload);
        reader.feed(stream.data() + split, stream.size() - split);
        while (reader.next(payload)) frames.push_back(payload);
        ASSERT_EQ(frames.size(), 2u) << "split at " << split;
        EXPECT_EQ(frames[0], "alpha") << "split at " << split;
        EXPECT_EQ(frames[1], "beta-payload") << "split at " << split;
    }
}

TEST(ServeWireTest, FrameReaderDrainsManyFramesFromOneFeed) {
    std::string stream;
    for (int i = 0; i < 50; ++i) stream += frame("payload " + std::to_string(i));
    FrameReader reader;
    reader.feed(stream.data(), stream.size());
    std::string payload;
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(reader.next(payload)) << "frame " << i;
        EXPECT_EQ(payload, "payload " + std::to_string(i));
    }
    EXPECT_FALSE(reader.next(payload));
    EXPECT_EQ(reader.frames_decoded(), 50u);
}

TEST(ServeWireTest, FrameReaderRejectsOversizedPrefix) {
    FrameReader reader;
    const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB
    reader.feed(reinterpret_cast<const char*>(prefix), 4);
    std::string payload;
    EXPECT_THROW((void)reader.next(payload), std::runtime_error);
}

TEST(ServeWireTest, FrameReaderReportsPartialFrameAsBuffered) {
    const std::string framed = frame("0123456789");
    FrameReader reader;
    reader.feed(framed.data(), 7);  // prefix + 3 payload bytes
    std::string payload;
    EXPECT_FALSE(reader.next(payload));
    EXPECT_EQ(reader.buffered(), 7u);
    reader.feed(framed.data() + 7, framed.size() - 7);
    ASSERT_TRUE(reader.next(payload));
    EXPECT_EQ(payload, "0123456789");
}

TEST(ServeWireTest, ResponseShedFieldsRoundTrip) {
    RepairResponse shed;
    shed.ticket = "t-3";
    shed.ok = false;
    shed.shed = true;
    shed.retry_after_ms = 12.5 + 1.0 / 3.0;  // not representable in decimal
    shed.error = "service overloaded; retry later";
    const std::string rendered = render_response(shed);
    const RepairResponse parsed = parse_response(rendered);
    EXPECT_EQ(render_response(parsed), rendered);
    EXPECT_FALSE(parsed.ok);
    EXPECT_TRUE(parsed.shed);
    EXPECT_EQ(parsed.retry_after_ms, shed.retry_after_ms);  // exact, not NEAR
    EXPECT_EQ(parsed.error, shed.error);
}

}  // namespace
}  // namespace rustbrain::serve
