#include "support/table.hpp"

#include <gtest/gtest.h>

namespace rustbrain::support {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
    TextTable table({"type", "pass", "exec"});
    table.add_row({"alloc", "94.3", "80.4"});
    table.add_row({"danglingpointer", "90", "75"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| type            |"), std::string::npos);
    EXPECT_NE(out.find("| alloc           |"), std::string::npos);
    EXPECT_NE(out.find("danglingpointer"), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, ShortRowsPadded) {
    TextTable table({"a", "b"});
    table.add_row({"only"});
    const std::string out = table.render();
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTableTest, RequiresColumns) {
    EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, HeaderOnlyRenders) {
    TextTable table({"col"});
    const std::string out = table.render();
    EXPECT_NE(out.find("col"), std::string::npos);
    EXPECT_EQ(table.row_count(), 0u);
}

}  // namespace
}  // namespace rustbrain::support
