// Bytecode VM tier: vm::Vm must be observationally identical to BOTH
// reference interpreters — the tree walk and the slot-lowered walk — over
// the whole corpus (buggy and fixed), the name-resolution/become/thread
// shapes from miri_lower_test.cpp, and the InterpLimits edges swept at
// every boundary (step-limit exhaustion at each possible program point,
// call-depth overflow at the exact frame, mid-`become`, mid-recursion).
// "Identical" is byte-level: categories, messages, spans, outputs, and
// step counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "miri/interp.hpp"
#include "miri/mirilite.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::miri {
namespace {

using Inputs = std::vector<std::vector<std::int64_t>>;

void expect_reports_equal(const MiriReport& want, const MiriReport& got,
                          const std::string& label) {
    ASSERT_EQ(want.findings.size(), got.findings.size()) << label;
    for (std::size_t i = 0; i < want.findings.size(); ++i) {
        EXPECT_EQ(want.findings[i].category, got.findings[i].category)
            << label;
        EXPECT_EQ(want.findings[i].message, got.findings[i].message) << label;
        EXPECT_EQ(want.findings[i].span.begin, got.findings[i].span.begin)
            << label;
        EXPECT_EQ(want.findings[i].span.end, got.findings[i].span.end)
            << label;
        EXPECT_EQ(want.findings[i].span.line, got.findings[i].span.line)
            << label;
        EXPECT_EQ(want.findings[i].span.column, got.findings[i].span.column)
            << label;
    }
    EXPECT_EQ(want.outputs, got.outputs) << label;
    EXPECT_EQ(want.total_steps, got.total_steps) << label;
}

/// Run `source` through the tree-walk MiriLite and through uncached,
/// unscreened slot and vm Oracles (screening off so the interpreter tier
/// under test actually executes), and require byte-equal reports.
void expect_tiers_agree(const std::string& source, const Inputs& inputs,
                        InterpLimits limits = {}) {
    const MiriLite tree_walk(limits);
    const MiriReport reference = tree_walk.test_source(source, inputs);

    // Four-way: slot lowering, the VM on raw bytecode, and the VM on
    // vm::optimize output all replay the tree walk byte for byte.
    struct Rung {
        verify::InterpTier tier;
        bool vm_opt;
        const char* label;
    };
    for (const Rung& rung :
         {Rung{verify::InterpTier::Slot, false, "slot"},
          Rung{verify::InterpTier::Vm, false, "vm"},
          Rung{verify::InterpTier::Vm, true, "vm-opt"}}) {
        verify::OracleOptions options;
        options.limits = limits;
        options.caching = false;
        options.screening = false;
        options.interp = rung.tier;
        options.vm_opt = rung.vm_opt;
        const verify::Oracle oracle(options);
        expect_reports_equal(reference, oracle.test_source(source, inputs),
                             std::string(rung.label) + "\n" + source);
    }
}

TEST(MiriVmTest, TierNamesRoundTrip) {
    EXPECT_EQ(verify::parse_interp_tier("tree"), verify::InterpTier::Tree);
    EXPECT_EQ(verify::parse_interp_tier("slot"), verify::InterpTier::Slot);
    EXPECT_EQ(verify::parse_interp_tier("vm"), verify::InterpTier::Vm);
    EXPECT_FALSE(verify::parse_interp_tier("bytecode").has_value());
    EXPECT_FALSE(verify::parse_interp_tier("").has_value());
    EXPECT_EQ(verify::interp_tier_names(), "tree, slot, vm");
    EXPECT_STREQ(verify::to_string(verify::InterpTier::Vm), "vm");
}

TEST(MiriVmTest, WholeCorpusAgreesBuggyAndFixed) {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        SCOPED_TRACE(ub_case.id);
        expect_tiers_agree(ub_case.buggy_source, ub_case.inputs);
        expect_tiers_agree(ub_case.reference_fix, ub_case.inputs);
    }
}

// --- Name-resolution / control-flow shapes (miri_lower_test's set) ---------

TEST(MiriVmTest, ShadowingResolvesToTheInnermostBinding) {
    expect_tiers_agree(R"(fn main() {
    let x = 1;
    let x = x + 10;
    print_int(x);
    {
        let x = 100;
        print_int(x);
    }
    print_int(x);
}
)",
                       {});
}

TEST(MiriVmTest, LoopRedeclarationGetsAFreshAllocationEachIteration) {
    expect_tiers_agree(R"(fn main() {
    let mut i = 0;
    while i < 3 {
        let x = i * 2;
        print_int(x);
        i = i + 1;
    }
}
)",
                       {});
}

TEST(MiriVmTest, StaticsAndLocalsShareNamespaceWithLocalsWinning) {
    expect_tiers_agree(R"(static G: i32 = 7;
fn main() {
    print_int(G as i64);
    let G = 40;
    print_int(G);
}
)",
                       {});
}

TEST(MiriVmTest, MutableStaticAccess) {
    expect_tiers_agree(R"(static mut COUNTER: i64 = 0;
fn bump() {
    unsafe {
        COUNTER = COUNTER + 1;
    }
}
fn main() {
    bump();
    bump();
    unsafe {
        print_int(COUNTER);
    }
}
)",
                       {});
}

TEST(MiriVmTest, FunctionPointersThroughLocalsAndIndirectCalls) {
    expect_tiers_agree(R"(fn double(x: i64) -> i64 {
    return x * 2;
}
fn main() {
    let f = double;
    print_int(f(21));
}
)",
                       {});
}

TEST(MiriVmTest, BecomeTailCallsReleaseSlotsBeforeTheCallee) {
    expect_tiers_agree(R"(fn countdown(n: i64) {
    if n == 0 {
        print_int(0);
        return;
    }
    become countdown(n - 1);
}
fn main() {
    countdown(5000);
}
)",
                       {});
}

TEST(MiriVmTest, SpawnedThreadsUseSlotFrames) {
    expect_tiers_agree(R"(static mut SHARED: i64 = 0;
fn worker() {
    unsafe {
        SHARED = 5;
    }
}
fn main() {
    let handle = spawn(worker);
    join(handle);
    unsafe {
        print_int(SHARED);
    }
}
)",
                       {});
}

TEST(MiriVmTest, InputsFlowIdentically) {
    expect_tiers_agree(R"(fn main() {
    print_int(input(0) + input(1));
}
)",
                       {{3, 4}, {10, 20}});
}

// --- Expression / operator coverage ----------------------------------------

TEST(MiriVmTest, ShortCircuitOperatorsSkipTheRightHandSide) {
    expect_tiers_agree(R"(fn loud(x: bool) -> bool {
    print_bool(x);
    return x;
}
fn main() {
    if loud(false) && loud(true) {
        print_int(1);
    }
    if loud(true) || loud(false) {
        print_int(2);
    }
    let a = loud(true) && loud(true);
    print_bool(a);
}
)",
                       {});
}

TEST(MiriVmTest, ArrayIndexingAndOutOfBounds) {
    expect_tiers_agree(R"(fn main() {
    let a = [10, 20, 30];
    let b = [7; 4];
    let mut i = 0;
    while i < 3 {
        print_int(a[i]);
        i = i + 1;
    }
    print_int(b[3]);
    print_int(a[input(0)]);
}
)",
                       {{1}, {9}});
}

TEST(MiriVmTest, CastLadderAgrees) {
    expect_tiers_agree(R"(fn id(x: i64) -> i64 {
    return x;
}
fn main() {
    let a: i32 = -7;
    print_int(a as i64);
    print_int(a as u8 as i64);
    print_int((a as u16) as i64);
    let p = 64 as *mut i64;
    print_int(p as i64);
    let f = id;
    let addr = f as i64;
    let g = addr as fn(i64) -> i64;
    print_int(g(5));
    let v = 9;
    let r = &v;
    let q = r as *const i64;
    unsafe {
        print_int(*q);
    }
}
)",
                       {});
}

TEST(MiriVmTest, ArithmeticEdgesAgree) {
    // Overflow/div-by-zero panics, negation edge, shifts — all driven by
    // inputs so each run trips a different rule.
    const std::string source = R"(fn main() {
    let a: i64 = input(0);
    let b: i64 = input(1);
    print_int(a + b);
    print_int(a - b);
    print_int(a * b);
    print_int(a / b);
    print_int(a % b);
    print_int(-a);
    print_int(a << (b as u8 as i64));
    print_int(a >> 1);
    let small: u8 = input(0) as u8;
    print_int((small + 1) as i64);
}
)";
    expect_tiers_agree(source, {{6, 3},
                                {9223372036854775807, 1},
                                {5, 0},
                                {-9223372036854775807 - 1, -1},
                                {255, 2},
                                {1, 200}});
}

// --- InterpLimits parity (satellite: boundary sweeps on the VM path) -------

/// Mixed workload: statics setup, a while loop, direct calls, and a
/// `become` chain — so a step-limit sweep crosses every kind of program
/// point, including mid-become.
constexpr const char* kMixedWorkload = R"(static mut ACC: i64 = 3;
fn add(n: i64) -> i64 {
    unsafe {
        ACC = ACC + n;
        return ACC;
    }
}
fn spin(n: i64) {
    if n == 0 {
        return;
    }
    become spin(n - 1);
}
fn main() {
    let mut i = 0;
    while i < 3 {
        i = i + 1;
    }
    spin(4);
    print_int(add(2));
}
)";

TEST(MiriVmTest, StepLimitExhaustionAgreesAtEveryBoundary) {
    // Learn the unconstrained step count, then sweep max_steps through
    // every value up to just past it: each sweep point dies (or completes)
    // at a different instruction, and all three tiers must report the same
    // finding, span, and step count at each one.
    const MiriLite reference;
    const MiriReport full = reference.test_source(kMixedWorkload, {});
    ASSERT_TRUE(full.passed()) << full.summary();
    ASSERT_GT(full.total_steps, 0u);
    ASSERT_LT(full.total_steps, 400u);  // keep the sweep cheap
    for (std::uint64_t max_steps = 1; max_steps <= full.total_steps + 2;
         ++max_steps) {
        SCOPED_TRACE(max_steps);
        InterpLimits limits;
        limits.max_steps = max_steps;
        expect_tiers_agree(kMixedWorkload, {}, limits);
    }
}

constexpr const char* kDeepRecursion = R"(fn recurse(n: i64) -> i64 {
    if n == 0 {
        return 0;
    }
    return recurse(n - 1) + 1;
}
fn main() {
    print_int(recurse(10));
}
)";

TEST(MiriVmTest, CallDepthOverflowAgreesAtTheExactBoundary) {
    // Recursion depth 10 needs max_call_depth 12 (main + 11 recurse
    // frames); sweep the limit through the boundary so the overflow fires
    // mid-recursion at every possible frame.
    for (std::uint32_t depth = 1; depth <= 14; ++depth) {
        SCOPED_TRACE(depth);
        InterpLimits limits;
        limits.max_call_depth = depth;
        expect_tiers_agree(kDeepRecursion, {}, limits);
    }
}

TEST(MiriVmTest, BecomeChainsStayFlatUnderTightDepthLimits) {
    // A become chain of 1000 must fit in the same depth budget as a single
    // call on every tier; the sweep also exercises exhaustion mid-become
    // when the budget is too small even for the entry call.
    const std::string source = R"(fn spin(n: i64) {
    if n == 0 {
        print_int(n);
        return;
    }
    become spin(n - 1);
}
fn main() {
    spin(1000);
}
)";
    for (std::uint32_t depth = 1; depth <= 4; ++depth) {
        SCOPED_TRACE(depth);
        InterpLimits limits;
        limits.max_call_depth = depth;
        expect_tiers_agree(source, {}, limits);
    }
    InterpLimits two;
    two.max_call_depth = 2;
    verify::OracleOptions options;
    options.limits = two;
    options.caching = false;
    options.screening = false;
    options.interp = verify::InterpTier::Vm;
    const verify::Oracle oracle(options);
    const MiriReport report = oracle.test_source(source, {});
    EXPECT_TRUE(report.passed()) << report.summary();
}

TEST(MiriVmTest, StepLimitMidBecomeAgrees) {
    // Pin the step limit inside the become chain specifically.
    const std::string source = R"(fn spin(n: i64) {
    if n == 0 {
        return;
    }
    become spin(n - 1);
}
fn main() {
    spin(100000);
}
)";
    for (const std::uint64_t max_steps : {50u, 51u, 52u, 53u, 500u}) {
        SCOPED_TRACE(max_steps);
        InterpLimits limits;
        limits.max_steps = max_steps;
        expect_tiers_agree(source, {}, limits);
    }
}

// --- Front-end and degenerate programs -------------------------------------

TEST(MiriVmTest, MissingMainReportsTheSameCompileError) {
    expect_tiers_agree("fn helper() {\n}\n", {});
}

TEST(MiriVmTest, FrontEndErrorsBypassTheVm) {
    expect_tiers_agree("fn main( {\n}\n", {});
    expect_tiers_agree("fn main() {\n    let x: bool = 3;\n}\n", {});
}

TEST(MiriVmTest, EnvGateSelectsTheVmTier) {
    // OracleOptions::interp wins over the env; unset env means slot.
    verify::OracleOptions options;
    options.interp = verify::InterpTier::Vm;
    const verify::Oracle oracle(options);
    EXPECT_EQ(oracle.interp_tier(), verify::InterpTier::Vm);
    const verify::Oracle plain;
    EXPECT_EQ(plain.interp_tier(),
              verify::parse_interp_tier(
                  std::getenv("RUSTBRAIN_INTERP") == nullptr
                      ? "slot"
                      : std::getenv("RUSTBRAIN_INTERP"))
                  .value_or(verify::InterpTier::Slot));
}

}  // namespace
}  // namespace rustbrain::miri
