// Corpus Forge: generator determinism, validity of everything forged, knob
// behavior, and end-to-end BatchRunner sweeps over generated corpora.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "gen/corpus_io.hpp"
#include "gen/forge.hpp"
#include "gen/registry.hpp"
#include "kb/seed.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "support/rng.hpp"

namespace rustbrain::gen {
namespace {

ForgeOptions small_forge(std::uint64_t seed, std::size_t count) {
    ForgeOptions options;
    options.seed = seed;
    options.count = count;
    return options;
}

TEST(ForgeTest, SameSeedIsByteIdentical) {
    const dataset::Corpus first = forge_corpus(small_forge(42, 64));
    const dataset::Corpus second = forge_corpus(small_forge(42, 64));
    EXPECT_EQ(corpus_to_string(first), corpus_to_string(second));
}

TEST(ForgeTest, DifferentSeedsProduceDistinctIdsAndContent) {
    const dataset::Corpus a = forge_corpus(small_forge(1, 32));
    const dataset::Corpus b = forge_corpus(small_forge(2, 32));
    ASSERT_EQ(a.size(), b.size());
    std::set<std::string> ids_a;
    for (const auto& c : a.cases()) ids_a.insert(c.id);
    for (const auto& c : b.cases()) {
        EXPECT_EQ(ids_a.count(c.id), 0u) << "seed-colliding id " << c.id;
    }
    EXPECT_NE(corpus_to_string(a), corpus_to_string(b));
}

TEST(ForgeTest, EveryForgedCaseValidates) {
    // One case per generator x4 — then hold the result to the standard
    // corpus's own bar, independently of the forge's internal sampling.
    const dataset::Corpus corpus = forge_corpus(small_forge(7, 64));
    EXPECT_EQ(corpus.size(), 64u);
    for (const dataset::CaseValidation& v : dataset::validate_corpus(corpus)) {
        EXPECT_TRUE(v.ok()) << v.id << ": " << v.detail;
    }
}

TEST(ForgeTest, ForgedCasesParseAndTypecheck) {
    const dataset::Corpus corpus = forge_corpus(small_forge(11, 32));
    for (const auto& c : corpus.cases()) {
        auto buggy = lang::try_parse(c.buggy_source);
        ASSERT_TRUE(buggy.has_value()) << c.id;
        EXPECT_TRUE(lang::type_check(*buggy)) << c.id;
        auto fix = lang::try_parse(c.reference_fix);
        ASSERT_TRUE(fix.has_value()) << c.id;
        EXPECT_TRUE(lang::type_check(*fix)) << c.id;
    }
}

TEST(ForgeTest, CoversEveryBuiltinGeneratorAndCategory) {
    ForgeOptions options = small_forge(3, 2 * 16);
    ForgeStats stats;
    const dataset::Corpus corpus = forge_corpus(options, &stats);
    // Round-robin over 16 generators: two cases each.
    EXPECT_EQ(stats.accepted_by_generator.size(),
              GeneratorRegistry::builtin().ids().size());
    for (const auto& [id, accepted] : stats.accepted_by_generator) {
        EXPECT_EQ(accepted, 2u) << id;
    }
    // All 14 UB categories appear (compositions fold into panic/dangling).
    EXPECT_EQ(corpus.categories().size(), 14u);
}

TEST(ForgeTest, GeneratorSubsetAndDeclaredCategories) {
    for (const std::string& id : GeneratorRegistry::builtin().ids()) {
        ForgeOptions options = small_forge(13, 3);
        options.generators = {id};
        const dataset::Corpus corpus = forge_corpus(options);
        ASSERT_EQ(corpus.size(), 3u) << id;
        const auto generator = GeneratorRegistry::builtin().build(id);
        for (const auto& c : corpus.cases()) {
            EXPECT_EQ(c.category, generator->category()) << c.id;
            EXPECT_EQ(c.id.rfind("gen/" + id + "/", 0), 0u) << c.id;
        }
    }
}

TEST(ForgeTest, MutationKnobsRespected) {
    // depth=0,padding=0,helpers=off must forge plain programs: no pads, no
    // helper functions. (Nesting is hard to assert textually; pads and
    // helpers have reserved name prefixes.)
    ForgeOptions options = small_forge(5, 32);
    options.generator_options = support::OptionMap::parse(
        "depth=0,padding=0,helpers=off");
    const dataset::Corpus plain = forge_corpus(options);
    const std::string text = corpus_to_string(plain);
    EXPECT_EQ(text.find("pad_"), std::string::npos);
    EXPECT_EQ(text.find("unused_"), std::string::npos);

    // The default knobs do produce structural mutations somewhere in a
    // decent sample.
    const dataset::Corpus mutated = forge_corpus(small_forge(5, 32));
    const std::string mutated_text = corpus_to_string(mutated);
    EXPECT_NE(mutated_text.find("pad_"), std::string::npos);
    EXPECT_NE(mutated_text.find("unused_"), std::string::npos);
}

TEST(ForgeTest, UnknownGeneratorIdThrows) {
    ForgeOptions options = small_forge(1, 4);
    options.generators = {"no-such-generator"};
    try {
        forge_corpus(options);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("no-such-generator"), std::string::npos);
        EXPECT_NE(message.find("alloc"), std::string::npos);  // lists options
    }
}

TEST(ForgeTest, UnknownGeneratorOptionThrows) {
    ForgeOptions options = small_forge(1, 4);
    options.generator_options = support::OptionMap::parse("nesting=3");
    try {
        forge_corpus(options);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("nesting"), std::string::npos);
        EXPECT_NE(message.find("depth"), std::string::npos);  // lists knobs
    }
}

TEST(ForgeTest, KnowledgeBaseSeedsFromForgedCorpus) {
    const dataset::Corpus corpus = forge_corpus(small_forge(21, 48));
    kb::KnowledgeBase kbase;
    const kb::SeedStats stats = kb::seed_from_corpus(corpus, kbase);
    EXPECT_EQ(stats.cases_processed, 48u);
    EXPECT_GT(stats.entries_added, 0u);
    EXPECT_GT(stats.rules_verified, 0u);
}

TEST(ForgeTest, EveryRegistryEngineSweepsAForgedCorpus) {
    const dataset::Corpus corpus = forge_corpus(small_forge(42, 32));
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(corpus, kbase);
    core::EngineBuildContext context;
    context.knowledge_base = &kbase;
    for (const std::string& id : core::EngineRegistry::builtin().ids()) {
        const core::BatchRunner runner(id, core::EngineOptions{}, context);
        const core::BatchReport report = runner.run(corpus);
        ASSERT_EQ(report.results.size(), corpus.size()) << id;
        EXPECT_GT(report.pass_total(), 0) << id;
        for (std::size_t i = 0; i < report.results.size(); ++i) {
            EXPECT_EQ(report.results[i].case_id, corpus.cases()[i].id) << id;
        }
    }
}

TEST(ForgeTest, ThousandCaseCorpusRunsThroughBatchRunner) {
    // The scale target from the roadmap: a 1000-case generated corpus,
    // end to end through the parallel BatchRunner. The expert engine keeps
    // the virtual-repair cost deterministic and the wall clock tame.
    const dataset::Corpus corpus = forge_corpus(small_forge(1000, 1000));
    ASSERT_EQ(corpus.size(), 1000u);
    const core::BatchRunner runner("expert", core::EngineOptions{},
                                   core::EngineBuildContext{});
    const core::BatchReport report = runner.run(corpus);
    ASSERT_EQ(report.results.size(), 1000u);
    EXPECT_EQ(report.pass_total(), 1000);  // the expert always succeeds
}

TEST(ForgeTest, ZeroCountYieldsEmptyCorpus) {
    const dataset::Corpus corpus = forge_corpus(small_forge(1, 0));
    EXPECT_EQ(corpus.size(), 0u);
    // Validation is not short-circuited by an empty request...
    ForgeOptions bad = small_forge(1, 0);
    bad.generators = {"no-such-generator"};
    EXPECT_THROW(forge_corpus(bad), std::invalid_argument);
    // ...and caller-provided stats are reset, not left stale.
    ForgeStats stats;
    forge_corpus(small_forge(1, 8), &stats);
    EXPECT_EQ(stats.accepted(), 8u);
    forge_corpus(small_forge(1, 0), &stats);
    EXPECT_EQ(stats.accepted(), 0u);
    EXPECT_EQ(stats.attempts, 0u);
}

TEST(GeneratorTest, GenerateIsPureInItsRng) {
    const auto generator = GeneratorRegistry::builtin().build("alloc");
    support::Rng a(123);
    support::Rng b(123);
    const dataset::UbCase first = generator->generate(a);
    const dataset::UbCase second = generator->generate(b);
    EXPECT_EQ(first.id, second.id);
    EXPECT_EQ(first.buggy_source, second.buggy_source);
    EXPECT_EQ(first.reference_fix, second.reference_fix);
    EXPECT_EQ(first.inputs, second.inputs);
    EXPECT_EQ(first.difficulty, second.difficulty);
}

}  // namespace
}  // namespace rustbrain::gen
