// The LlmBackend boundary: SimLLM's per-call purity, CachingBackend's
// bit-identical memoization over a full-corpus sweep, and the
// RecordingBackend/ReplayBackend golden-transcript round trip.
#include <gtest/gtest.h>

#include <memory>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "llm/caching_backend.hpp"
#include "llm/replay_backend.hpp"
#include "llm/simllm.hpp"

namespace rustbrain::llm {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const kb::KnowledgeBase& seeded_kb() {
    static const kb::KnowledgeBase kbase = [] {
        kb::KnowledgeBase k;
        kb::seed_from_corpus(corpus(), k);
        return k;
    }();
    return kbase;
}

core::EngineBuildContext context_with(BackendFactory factory) {
    core::EngineBuildContext context;
    context.knowledge_base = &seeded_kb();
    context.backend_factory = std::move(factory);
    return context;
}

void expect_identical(const core::BatchReport& a, const core::BatchReport& b) {
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const core::CaseResult& x = a.results[i];
        const core::CaseResult& y = b.results[i];
        EXPECT_EQ(x.case_id, y.case_id) << "index " << i;
        EXPECT_EQ(x.pass, y.pass) << x.case_id;
        EXPECT_EQ(x.exec, y.exec) << x.case_id;
        EXPECT_EQ(x.time_ms, y.time_ms) << x.case_id;  // exact, not near
        EXPECT_EQ(x.time_breakdown, y.time_breakdown) << x.case_id;
        EXPECT_EQ(x.solutions_generated, y.solutions_generated) << x.case_id;
        EXPECT_EQ(x.steps_executed, y.steps_executed) << x.case_id;
        EXPECT_EQ(x.rollbacks, y.rollbacks) << x.case_id;
        EXPECT_EQ(x.llm_calls, y.llm_calls) << x.case_id;
        EXPECT_EQ(x.kb_consulted, y.kb_consulted) << x.case_id;
        EXPECT_EQ(x.kb_skipped_by_feedback, y.kb_skipped_by_feedback)
            << x.case_id;
        EXPECT_EQ(x.thinking_switches, y.thinking_switches) << x.case_id;
        EXPECT_EQ(x.escalations, y.escalations) << x.case_id;
        EXPECT_EQ(x.early_stops, y.early_stops) << x.case_id;
        EXPECT_EQ(x.attempts_skipped, y.attempts_skipped) << x.case_id;
        EXPECT_EQ(x.error_trajectory, y.error_trajectory) << x.case_id;
        EXPECT_EQ(x.winning_rule, y.winning_rule) << x.case_id;
        EXPECT_EQ(x.final_source, y.final_source) << x.case_id;
    }
    EXPECT_EQ(a.clock.now_ms(), b.clock.now_ms());
    EXPECT_EQ(a.clock.breakdown(), b.clock.breakdown());
}

core::BatchReport corpus_sweep(const core::EngineBuildContext& context,
                               std::size_t workers = 1) {
    const core::BatchRunner runner("rustbrain",
                                   core::EngineOptions::parse("model=gpt-4"),
                                   context, core::BatchOptions{workers});
    return runner.run(corpus());
}

TEST(SimBackendTest, FactoryOpensIndependentDeterministicSessions) {
    const BackendFactory factory = sim_backend_factory();
    const auto a = factory(gpt4_profile(), 7);
    const auto b = factory(gpt4_profile(), 7);
    EXPECT_EQ(a->description(), "sim:gpt-4");
    ChatRequest request;
    request.sequence = 3;
    request.messages.push_back({Role::User, "task: extract_ast\ncode:\nfn main() { }\n"});
    const ChatResponse first = a->complete(request);
    const ChatResponse second = b->complete(request);
    EXPECT_EQ(first.content, second.content);
    EXPECT_EQ(first.latency_ms, second.latency_ms);
    EXPECT_EQ(a->calls_served(), 1u);
}

TEST(CachingBackendTest, FullCorpusSweepBitIdenticalWithAndWithoutCache) {
    // The acceptance property: a sweep through CachingBackend is
    // indistinguishable from an uncached one, and a repeat sweep answers
    // from cache while still reproducing the same bytes.
    const core::BatchReport uncached = corpus_sweep(context_with({}));

    const auto cache = std::make_shared<PromptCache>();
    const auto cached_context = context_with(caching_backend_factory(cache));
    const core::BatchReport first = corpus_sweep(cached_context);
    expect_identical(uncached, first);
    const PromptCacheStats after_first = cache->stats();
    EXPECT_GT(after_first.entries, 0u);
    EXPECT_EQ(after_first.hits, 0u);  // nothing to hit on a cold cache

    const core::BatchReport second = corpus_sweep(cached_context, 4);
    expect_identical(uncached, second);
    const PromptCacheStats after_second = cache->stats();
    // The repeat sweep re-issues exactly the same call identities: all hits,
    // no new entries.
    EXPECT_EQ(after_second.entries, after_first.entries);
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_EQ(after_second.hits, after_first.misses);
}

TEST(CachingBackendTest, HitsPreserveResponseBytes) {
    const auto cache = std::make_shared<PromptCache>();
    const BackendFactory factory = caching_backend_factory(cache);
    ChatRequest request;
    request.temperature = 0.8;
    request.sequence = 2;
    request.messages.push_back(
        {Role::User, "task: generate_solutions\nerror_category: alloc\n"});
    const auto first_session = factory(gpt4_profile(), 11);
    const ChatResponse live = first_session->complete(request);
    const auto second_session = factory(gpt4_profile(), 11);
    const ChatResponse cached = second_session->complete(request);
    EXPECT_EQ(cache->stats().hits, 1u);
    EXPECT_EQ(live.content, cached.content);
    EXPECT_EQ(live.prompt_tokens, cached.prompt_tokens);
    EXPECT_EQ(live.completion_tokens, cached.completion_tokens);
    EXPECT_EQ(live.latency_ms, cached.latency_ms);
    EXPECT_EQ(second_session->description(), "cache(sim:gpt-4)");
    // A different session seed is a different identity: no false hit.
    const auto other_session = factory(gpt4_profile(), 12);
    (void)other_session->complete(request);
    EXPECT_EQ(cache->stats().hits, 1u);
}

TEST(CachingBackendTest, FullShardFlushesAndCounts) {
    // Legacy policy knob: keys are sharded key % 16; hammering one shard
    // past its cap must flush it (bit-identity makes dropping entries
    // safe) and count the event in stats — never grow without bound.
    PromptCache cache(support::EvictionPolicy::FlushOnCap);
    ChatResponse response;
    response.content = "cached";
    constexpr std::uint64_t kShardStride = 16;
    // 40k same-shard inserts comfortably exceeds the 32768 per-shard cap.
    constexpr std::uint64_t kInserts = 40'000;
    for (std::uint64_t i = 0; i < kInserts; ++i) {
        cache.insert(i * kShardStride, response);
    }
    const PromptCacheStats stats = cache.stats();
    EXPECT_EQ(stats.flushes, 1u);
    EXPECT_LT(stats.entries, kInserts);
    // Survivors (inserted after the flush) still answer.
    EXPECT_TRUE(cache.lookup((kInserts - 1) * kShardStride).has_value());
    // Flushed entries miss and would be re-inserted, not corrupted.
    EXPECT_FALSE(cache.lookup(0).has_value());
}

TEST(ReplayBackendTest, GoldenTranscriptReproducesCaseResults) {
    // Record a sweep over one category, then replay it with no model
    // behind the boundary at all: bit-identical CaseResults prove the
    // transcript captures everything the pipeline consumed.
    const std::vector<const dataset::UbCase*> cases =
        corpus().by_category(miri::UbCategory::DanglingPointer);
    ASSERT_FALSE(cases.empty());

    const auto transcript = std::make_shared<Transcript>();
    const auto record_engine = core::EngineRegistry::builtin().build(
        "rustbrain", core::EngineOptions::parse("model=gpt-4"),
        context_with(recording_backend_factory(transcript)));
    std::vector<core::CaseResult> recorded;
    for (const dataset::UbCase* ub_case : cases) {
        recorded.push_back(record_engine->repair(*ub_case));
    }
    ASSERT_GT(transcript->size(), 0u);

    const auto replay_engine = core::EngineRegistry::builtin().build(
        "rustbrain", core::EngineOptions::parse("model=gpt-4"),
        context_with(replay_backend_factory(transcript)));
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const core::CaseResult replayed = replay_engine->repair(*cases[i]);
        const core::CaseResult& original = recorded[i];
        EXPECT_EQ(replayed.pass, original.pass) << original.case_id;
        EXPECT_EQ(replayed.exec, original.exec) << original.case_id;
        EXPECT_EQ(replayed.time_ms, original.time_ms) << original.case_id;
        EXPECT_EQ(replayed.time_breakdown, original.time_breakdown)
            << original.case_id;
        EXPECT_EQ(replayed.llm_calls, original.llm_calls) << original.case_id;
        EXPECT_EQ(replayed.error_trajectory, original.error_trajectory)
            << original.case_id;
        EXPECT_EQ(replayed.winning_rule, original.winning_rule)
            << original.case_id;
        EXPECT_EQ(replayed.final_source, original.final_source)
            << original.case_id;
    }
}

TEST(ReplayBackendTest, DivergenceFromRecordingThrows) {
    const auto transcript = std::make_shared<Transcript>();
    ReplayBackend replay(transcript, "gpt-4", 3);
    ChatRequest request;
    request.messages.push_back({Role::User, "task: apply_rule\n"});
    EXPECT_THROW((void)replay.complete(request), std::out_of_range);
}

TEST(ReplayBackendTest, RecordingDelegatesAndStores) {
    const auto transcript = std::make_shared<Transcript>();
    RecordingBackend recorder(transcript,
                              std::make_unique<SimLLM>(gpt4_profile(), 5),
                              "gpt-4", 5);
    ChatRequest request;
    request.sequence = 1;
    request.messages.push_back(
        {Role::User, "task: extract_features\nerror_category: alloc\n"});
    const ChatResponse live = recorder.complete(request);
    EXPECT_EQ(transcript->size(), 1u);
    EXPECT_EQ(recorder.description(), "record(sim:gpt-4)");

    ReplayBackend replay(transcript, "gpt-4", 5);
    const ChatResponse replayed = replay.complete(request);
    EXPECT_EQ(replayed.content, live.content);
    EXPECT_EQ(replayed.latency_ms, live.latency_ms);
}

}  // namespace
}  // namespace rustbrain::llm
