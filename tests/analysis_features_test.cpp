#include <gtest/gtest.h>

#include "analysis/ast_edit.hpp"
#include "analysis/features.hpp"
#include "analysis/walk.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace rustbrain::analysis {
namespace {

lang::Program parse(const std::string& source) {
    auto program = lang::try_parse(source);
    EXPECT_TRUE(program.has_value());
    return program ? std::move(*program) : lang::Program{};
}

TEST(WalkTest, VisitsEveryStatement) {
    const auto program = parse(R"(
fn main() {
    let a = 1;
    if a > 0 {
        while a < 5 { print_int(1); }
    } else {
        unsafe { print_int(2); }
    }
})");
    int statements = 0;
    int unsafe_statements = 0;
    WalkCallbacks callbacks;
    callbacks.on_stmt = [&](const lang::Stmt&, bool in_unsafe) {
        ++statements;
        if (in_unsafe) ++unsafe_statements;
    };
    walk_program(program, callbacks);
    EXPECT_EQ(statements, 6);  // let, if, while, print, unsafe, print
    EXPECT_EQ(unsafe_statements, 1);  // the print inside the unsafe block
}

TEST(WalkTest, UnsafeFnBodyIsUnsafe) {
    const auto program = parse(
        "unsafe fn f() { print_int(1); } fn main() { unsafe { f(); } }");
    int unsafe_statements = 0;
    WalkCallbacks callbacks;
    callbacks.on_stmt = [&](const lang::Stmt&, bool in_unsafe) {
        if (in_unsafe) ++unsafe_statements;
    };
    walk_program(program, callbacks);
    EXPECT_EQ(unsafe_statements, 2);  // print inside unsafe fn, unsafe stmt's body
}

TEST(WalkTest, NamesUsedInUnsafe) {
    const auto program = parse(R"(
fn main() {
    let x = 5;
    let outside = 1;
    let p = &x as *const i32;
    unsafe {
        print_int(*p as i64);
    }
})");
    const auto names = names_used_in_unsafe(program);
    EXPECT_NE(std::find(names.begin(), names.end(), "p"), names.end());
    EXPECT_EQ(std::find(names.begin(), names.end(), "outside"), names.end());
}

TEST(FeaturesTest, CountsShapeSignals) {
    const auto program = parse(R"(
static mut G: i64 = 0;
fn worker() { unsafe { G = G + 1; } }
fn main() {
    unsafe {
        let p = alloc(8, 8);
        let q = offset(p, 1);
        dealloc(p, 8, 8);
    }
    let h = spawn(worker);
    join(h);
})");
    miri::Finding finding;
    finding.category = miri::UbCategory::DataRace;
    const ErrorFeatures features = extract_features(program, finding);
    EXPECT_EQ(features.category, miri::UbCategory::DataRace);
    EXPECT_EQ(features.alloc_calls, 1);
    EXPECT_EQ(features.dealloc_calls, 1);
    EXPECT_EQ(features.offset_calls, 1);
    EXPECT_EQ(features.spawn_calls, 1);
    EXPECT_GE(features.static_mut_accesses, 2);
    EXPECT_GE(features.unsafe_blocks, 2);
    EXPECT_GT(features.node_count, 10u);
}

TEST(FeaturesTest, FeedbackKeyStableAndDiscriminative) {
    const auto program_a = parse(
        "fn main() { unsafe { let p = alloc(8, 8); dealloc(p, 8, 8); } }");
    const auto program_b = parse(
        "fn f() { } fn main() { let h = spawn(f); join(h); }");
    miri::Finding alloc_finding;
    alloc_finding.category = miri::UbCategory::Alloc;
    miri::Finding race_finding;
    race_finding.category = miri::UbCategory::DataRace;
    const auto key_a = extract_features(program_a, alloc_finding).feedback_key();
    const auto key_a2 = extract_features(program_a, alloc_finding).feedback_key();
    const auto key_b = extract_features(program_b, race_finding).feedback_key();
    EXPECT_EQ(key_a, key_a2);
    EXPECT_NE(key_a, key_b);
    EXPECT_NE(key_a.find("alloc"), std::string::npos);
}

TEST(AstEditTest, BuildersProduceValidCode) {
    auto program = parse("fn main() { let mut x = 1; }");
    for_each_block(program, [&](lang::Block& block) {
        std::vector<lang::ExprPtr> args;
        args.push_back(mk_cast(mk_var("x"), lang::Type::i64()));
        block.statements.push_back(mk_expr_stmt(mk_call("print_int", std::move(args))));
        return true;
    });
    const std::string printed = lang::print_program(program);
    EXPECT_TRUE(lang::try_parse(printed).has_value()) << printed;
    EXPECT_NE(printed.find("print_int(x as i64);"), std::string::npos);
}

TEST(AstEditTest, GuardBuilderShape) {
    lang::Block body;
    body.statements.push_back(mk_print_sentinel());
    auto guard = mk_guard(mk_binary(lang::BinaryOp::Lt, mk_var("i"), mk_int(4)),
                          std::move(body), true);
    EXPECT_EQ(guard->kind, lang::StmtKind::If);
    const auto& node = static_cast<const lang::IfStmt&>(*guard);
    EXPECT_TRUE(node.else_block.has_value());
}

TEST(AstEditTest, RewriteExprsReplacesAllMatches) {
    auto program = parse("fn main() { let a = 1 + 1; let b = 1; }");
    const int count = rewrite_exprs(
        program, [](const lang::Expr& expr) -> std::optional<lang::ExprPtr> {
            if (expr.kind == lang::ExprKind::IntLit &&
                static_cast<const lang::IntLitExpr&>(expr).value == 1) {
                return mk_int(2);
            }
            return std::nullopt;
        });
    EXPECT_EQ(count, 3);
    EXPECT_NE(lang::print_program(program).find("2 + 2"), std::string::npos);
}

TEST(AstEditTest, MoveStmtReorders) {
    auto program = parse("fn main() { print_int(1); print_int(2); print_int(3); }");
    for_each_block(program, [](lang::Block& block) {
        move_stmt(block, 2, 0);
        return true;
    });
    const std::string printed = lang::print_program(program);
    EXPECT_LT(printed.find("print_int(3)"), printed.find("print_int(1)"));
}

TEST(AstEditTest, FindLetAndMentions) {
    auto program = parse(R"(
fn main() {
    let target = 5;
    let other = 6;
    print_int(target as i64);
})");
    EXPECT_NE(find_let_by_name(program, "target"), nullptr);
    EXPECT_EQ(find_let_by_name(program, "missing"), nullptr);
    bool found_mention = false;
    for_each_block(program, [&](lang::Block& block) {
        found_mention = stmt_mentions(*block.statements[2], "target");
        return true;
    });
    EXPECT_TRUE(found_mention);
    EXPECT_EQ(count_statements(program), 3);
}

}  // namespace
}  // namespace rustbrain::analysis
