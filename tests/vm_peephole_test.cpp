// vm::optimize — the legality contract of DESIGN.md §11, tested from both
// ends: structurally (each superinstruction is actually emitted for its
// pattern, jump targets survive the rewrite, promoted frames get
// registers) and observationally (for every fused opcode, findings,
// outputs, spans, and above all *step counts* are byte-identical to the
// tree walk and to the unoptimized VM; five forged corpora render
// bit-identically under RUSTBRAIN_VM_OPT=on and off; and the tree tier
// never pays for a bytecode compile at all).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_runner.hpp"
#include "dataset/corpus.hpp"
#include "gen/forge.hpp"
#include "kb/seed.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "miri/lower.hpp"
#include "miri/mirilite.hpp"
#include "serve/wire.hpp"
#include "verify/oracle.hpp"
#include "vm/bytecode.hpp"
#include "vm/peephole.hpp"

namespace rustbrain {
namespace {

using Inputs = std::vector<std::vector<std::int64_t>>;

/// Parse → typecheck → lower → compile → optimize, keeping every owner
/// alive together (VmProgram borrows type and name storage from program).
struct Compiled {
    lang::Program program;
    miri::LoweredProgram lowered;
    vm::VmProgram raw;
    vm::VmProgram optimized;

    explicit Compiled(const std::string& source)
        : program([&] {
              std::string error;
              auto parsed = lang::try_parse(source, &error);
              if (!parsed) throw std::runtime_error("parse: " + error);
              return std::move(*parsed);
          }()) {
        std::string error;
        if (!lang::type_check(program, &error)) {
            throw std::runtime_error("typecheck: " + error);
        }
        lowered = miri::lower_program(program);
        raw = vm::compile(program, lowered);
        optimized = vm::optimize(raw);
    }
};

std::size_t count_ops(const vm::VmProgram& program, vm::Op op) {
    std::size_t n = 0;
    for (const vm::Instr& instr : program.code) {
        if (instr.op == op) ++n;
    }
    return n;
}

void expect_reports_equal(const miri::MiriReport& want,
                          const miri::MiriReport& got,
                          const std::string& context) {
    EXPECT_EQ(want.total_steps, got.total_steps) << context;
    EXPECT_EQ(want.outputs, got.outputs) << context;
    ASSERT_EQ(want.findings.size(), got.findings.size()) << context;
    for (std::size_t i = 0; i < want.findings.size(); ++i) {
        EXPECT_EQ(want.findings[i].to_string(), got.findings[i].to_string())
            << context;
        EXPECT_EQ(want.findings[i].span.begin, got.findings[i].span.begin)
            << context;
        EXPECT_EQ(want.findings[i].span.end, got.findings[i].span.end)
            << context;
    }
}

/// Tree walk vs unoptimized VM vs optimized VM, all three byte-compared.
void expect_opt_exact(const std::string& source, const Inputs& inputs = {},
                      miri::InterpLimits limits = {}) {
    const miri::MiriLite tree_walk(limits);
    const miri::MiriReport reference = tree_walk.test_source(source, inputs);
    for (const bool opt : {false, true}) {
        verify::OracleOptions options;
        options.limits = limits;
        options.caching = false;
        options.screening = false;
        options.interp = verify::InterpTier::Vm;
        options.vm_opt = opt;
        const verify::Oracle oracle(options);
        expect_reports_equal(reference, oracle.test_source(source, inputs),
                             std::string(opt ? "vm-opt" : "vm") + "\n" +
                                 source);
    }
}

/// One pattern exemplar per fused opcode: the source must make the
/// optimizer emit the opcode (asserted structurally — a silently dead
/// pattern would make the step-count assertion vacuous), and the fused
/// replay must report the exact step count of its unfused expansion.
struct FusedCase {
    vm::Op op;
    const char* name;
    const char* source;
};

const std::vector<FusedCase>& fused_cases() {
    static const std::vector<FusedCase> cases = {
        {vm::Op::BinaryLocals, "BinaryLocals",
         "fn main() { let a = 3; let b = 4; let c = a + b; print_int(c); }"},
        {vm::Op::BinaryLocalImm, "BinaryLocalImm",
         "fn main() { let a = 3; let c = a * 10; print_int(c); }"},
        {vm::Op::StoreLocal, "StoreLocal",
         "fn main() { let mut x = 0; x = 5; print_int(x); }"},
        {vm::Op::CompareBranch, "CompareBranch",
         "fn main() { let mut i = 0; let n = 4;\n"
         "  while i * 2 < n * 3 { i = i + 1; } print_int(i); }"},
        {vm::Op::StepN, "StepN",
         "fn main() { let x = ((1 + 2) + 3) + 4; print_int(x); }"},
        {vm::Op::BinaryAccImm, "BinaryAccImm",
         "fn main() { let a = 3; let b = 4;\n"
         "  let y = a * 31 + b * 2; print_int(y); }"},
        {vm::Op::BinaryStackImm, "BinaryStackImm",
         "fn main() { let a = 3; let b = 4;\n"
         "  let y = (a + b) % 7; print_int(y); }"},
        {vm::Op::LocalsBranch, "LocalsBranch",
         "fn main() { let mut i = 0; let n = 5;\n"
         "  while i < n { i = i + 1; } print_int(i); }"},
        {vm::Op::LocalImmBranch, "LocalImmBranch",
         "fn main() { let mut i = 0;\n"
         "  while i < 5 { i = i + 1; } print_int(i); }"},
    };
    return cases;
}

TEST(VmPeepholeTest, EveryFusedOpcodeIsEmittedForItsPattern) {
    for (const FusedCase& fused : fused_cases()) {
        SCOPED_TRACE(fused.name);
        const Compiled compiled(fused.source);
        EXPECT_EQ(count_ops(compiled.raw, fused.op), 0u)
            << "vm::compile must never emit superinstructions";
        EXPECT_GE(count_ops(compiled.optimized, fused.op), 1u)
            << fused.source;
    }
}

TEST(VmPeepholeTest, EveryFusedOpcodeReplaysItsExpansionStepCounts) {
    for (const FusedCase& fused : fused_cases()) {
        SCOPED_TRACE(fused.name);
        expect_opt_exact(fused.source);
    }
}

TEST(VmPeepholeTest, StepLimitPanicsIdenticallyInsideFusedWindows) {
    // Crossing max_steps mid-superinstruction forces the slow replay
    // paths of StepN / step2: the panic's span and the step snapshot must
    // match the tree walk at every possible crossing point.
    const char* source =
        "fn main() { let mut i = 0; let mut acc = 1;\n"
        "  while i < 100000 {\n"
        "    acc = (acc * 31 + i * 2) % 1000003;\n"
        "    i = i + 1;\n"
        "  } print_int(acc); }";
    for (const std::uint64_t max_steps :
         {std::uint64_t{7}, std::uint64_t{50}, std::uint64_t{51},
          std::uint64_t{52}, std::uint64_t{53}, std::uint64_t{54},
          std::uint64_t{200}, std::uint64_t{2001}}) {
        SCOPED_TRACE(max_steps);
        miri::InterpLimits limits;
        limits.max_steps = max_steps;
        expect_opt_exact(source, {}, limits);
    }
}

TEST(VmPeepholeTest, JumpTargetsAreRemappedAcrossFusedWindows) {
    // Branch-dense control flow: every if/else arm and loop back-edge
    // lands on a window *boundary* after fusion shrinks the code, or the
    // remap would throw / the outputs would diverge.
    const char* source =
        "fn main() {\n"
        "  let mut i = 0; let mut evens = 0; let mut odds = 0;\n"
        "  while i < 25 {\n"
        "    if (i % 2) == 0 { evens = evens + i; }\n"
        "    else { if i > 12 { odds = odds + i * 3; }\n"
        "           else { odds = odds + 1; } }\n"
        "    i = i + 1;\n"
        "  }\n"
        "  print_int(evens); print_int(odds);\n"
        "}";
    const Compiled compiled(source);
    EXPECT_LT(compiled.optimized.code.size(), compiled.raw.code.size())
        << "fusion must actually shrink this program";
    expect_opt_exact(source);
}

TEST(VmPeepholeTest, PromotionKeepsTheObservableAddressStreamExact) {
    // `a` is a promotable integer local; `b` escapes through &b. The
    // printed address of b is part of the observable output, so register
    // promotion must keep the allocation (address/id) stream of promoted
    // slots via shadow allocations — or the printed value would shift.
    const char* source =
        "fn main() {\n"
        "  let a: i64 = 41;\n"
        "  let b: i64 = 1;\n"
        "  let p = &b as *const i64;\n"
        "  print_int((p as usize) as i64);\n"
        "  print_int(a + b);\n"
        "}";
    const Compiled compiled(source);
    ASSERT_GE(compiled.optimized.main_fn, 0);
    const vm::VmFunction& main_fn =
        compiled.optimized.functions[static_cast<std::size_t>(
            compiled.optimized.main_fn)];
    EXPECT_GE(main_fn.reg_count, 1u) << "`a` must be register-promoted";
    expect_opt_exact(source);
}

TEST(VmPeepholeTest, TreeTierNeverCompilesBytecode) {
    // Laziness is part of the contract: bytecode (and the optimize pass)
    // are built on first vm-tier use, so a tree-tier oracle must leave
    // both process-wide counters untouched.
    const char* source = "fn main() { print_int(6 * 7); }";
    ::setenv("RUSTBRAIN_INTERP", "tree", 1);
    const std::uint64_t compiles_before =
        vm::CompileStats::bytecode_compiles.load();
    const std::uint64_t passes_before =
        vm::CompileStats::optimize_passes.load();
    {
        verify::OracleOptions options;
        options.caching = false;
        options.screening = false;
        const verify::Oracle oracle(options);
        EXPECT_EQ(oracle.interp_tier(), verify::InterpTier::Tree);
        for (int i = 0; i < 3; ++i) {
            const miri::MiriReport report = oracle.test_source(source, {});
            EXPECT_EQ(report.outputs.front().front(), "42");
        }
    }
    ::unsetenv("RUSTBRAIN_INTERP");
    EXPECT_EQ(vm::CompileStats::bytecode_compiles.load(), compiles_before);
    EXPECT_EQ(vm::CompileStats::optimize_passes.load(), passes_before);

    // The unoptimized vm tier compiles bytecode but must not pay for the
    // optimizer; the optimized tier runs exactly one pass per program.
    {
        verify::OracleOptions options;
        options.caching = false;
        options.screening = false;
        options.interp = verify::InterpTier::Vm;
        options.vm_opt = false;
        const verify::Oracle oracle(options);
        (void)oracle.test_source(source, {});
    }
    EXPECT_GT(vm::CompileStats::bytecode_compiles.load(), compiles_before);
    EXPECT_EQ(vm::CompileStats::optimize_passes.load(), passes_before);
    {
        verify::OracleOptions options;
        options.caching = false;
        options.screening = false;
        options.interp = verify::InterpTier::Vm;
        options.vm_opt = true;
        const verify::Oracle oracle(options);
        (void)oracle.test_source(source, {});
    }
    EXPECT_GT(vm::CompileStats::optimize_passes.load(), passes_before);
}

TEST(VmPeepholeTest, FiveForgedCorporaRenderByteIdenticalOptOnVsOff) {
    // The torture screw: five independently forged corpora, every case
    // swept through the full repair engine under the vm tier, rendered
    // with the serving codec, and byte-compared between RUSTBRAIN_VM_OPT
    // on and off. Any divergence in any fused replay shows up here.
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(dataset::Corpus::standard(), kbase);
    for (const unsigned seed : {11u, 22u, 33u, 44u, 55u}) {
        SCOPED_TRACE(seed);
        gen::ForgeOptions forge_options;
        forge_options.seed = seed;
        forge_options.count = 32;
        verify::OracleOptions forge_oracle_options;
        forge_oracle_options.cache =
            std::make_shared<verify::VerifyCache>();
        const verify::Oracle forge_oracle(std::move(forge_oracle_options));
        forge_options.oracle = &forge_oracle;
        const dataset::Corpus corpus = gen::forge_corpus(forge_options);
        ASSERT_EQ(corpus.size(), 32u);

        auto render_all = [&](const char* vm_opt) {
            ::setenv("RUSTBRAIN_INTERP", "vm", 1);
            ::setenv("RUSTBRAIN_VM_OPT", vm_opt, 1);
            verify::OracleOptions oracle_options;
            oracle_options.cache = std::make_shared<verify::VerifyCache>();
            oracle_options.caching = true;
            oracle_options.screening = false;
            core::EngineBuildContext context;
            context.knowledge_base = &kbase;
            context.oracle =
                std::make_shared<verify::Oracle>(std::move(oracle_options));
            const core::BatchRunner runner("rustbrain", {}, context,
                                           core::BatchOptions{1});
            const core::BatchReport report = runner.run(corpus);
            std::vector<std::string> rendered;
            rendered.reserve(report.results.size());
            for (const core::CaseResult& result : report.results) {
                rendered.push_back(serve::render_case_result(result));
            }
            return rendered;
        };
        const std::vector<std::string> with_opt = render_all("on");
        const std::vector<std::string> without_opt = render_all("off");
        ASSERT_EQ(with_opt.size(), without_opt.size());
        for (std::size_t i = 0; i < with_opt.size(); ++i) {
            EXPECT_EQ(with_opt[i], without_opt[i])
                << "case " << corpus.cases()[i].id;
        }
    }
    ::unsetenv("RUSTBRAIN_INTERP");
    ::unsetenv("RUSTBRAIN_VM_OPT");
}

}  // namespace
}  // namespace rustbrain
