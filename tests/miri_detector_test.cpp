// One positive (UB detected) and one negative (fixed code passes) test per
// UB category — the ground truth the whole repair pipeline rests on.
#include <gtest/gtest.h>

#include "miri/mirilite.hpp"

namespace rustbrain::miri {
namespace {

MiriReport run(const std::string& source,
               std::vector<std::vector<std::int64_t>> inputs = {}) {
    MiriLite miri;
    return miri.test_source(source, inputs);
}

void expect_ub(const std::string& source, UbCategory category,
               std::vector<std::vector<std::int64_t>> inputs = {}) {
    const MiriReport report = run(source, std::move(inputs));
    ASSERT_FALSE(report.passed()) << "expected UB in:\n" << source;
    EXPECT_TRUE(report.has_category(category))
        << "expected " << ub_category_label(category) << ", got:\n"
        << report.summary() << "\nsource:\n"
        << source;
}

void expect_pass(const std::string& source,
                 std::vector<std::vector<std::int64_t>> inputs = {}) {
    const MiriReport report = run(source, std::move(inputs));
    EXPECT_TRUE(report.passed()) << report.summary() << "\nsource:\n" << source;
}

// --- alloc -----------------------------------------------------------------

TEST(MiriAlloc, DoubleFree) {
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8);
        dealloc(p, 8, 8);
        dealloc(p, 8, 8);
    }
})",
              UbCategory::Alloc);
}

TEST(MiriAlloc, WrongLayoutFree) {
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(16, 8);
        dealloc(p, 8, 8);
    }
})",
              UbCategory::Alloc);
}

TEST(MiriAlloc, Leak) {
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8);
    }
})",
              UbCategory::Alloc);
}

TEST(MiriAlloc, FreeingStackMemory) {
    expect_ub(R"(
fn main() {
    let mut x = 5;
    unsafe {
        let p = &mut x as *mut i32 as *mut u8;
        dealloc(p, 4, 4);
    }
})",
              UbCategory::Alloc);
}

TEST(MiriAlloc, DeallocNotAtStart) {
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(16, 8);
        let q = offset(p, 8);
        dealloc(q, 16, 8);
    }
})",
              UbCategory::Alloc);
}

TEST(MiriAlloc, InvalidAlignment) {
    expect_ub("fn main() { unsafe { let p = alloc(8, 3); dealloc(p, 8, 3); } }",
              UbCategory::Alloc);
}

TEST(MiriAlloc, CorrectLifecyclePasses) {
    expect_pass(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8);
        let q = p as *mut i64;
        *q = 41;
        print_int(*q + 1);
        dealloc(p, 8, 8);
    }
})");
}

// --- dangling pointer -------------------------------------------------------

TEST(MiriDangling, UseAfterFree) {
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8) as *mut i64;
        *p = 1;
        dealloc(p as *mut u8, 8, 8);
        print_int(*p);
    }
})",
              UbCategory::DanglingPointer);
}

TEST(MiriDangling, EscapedStackPointer) {
    expect_ub(R"(
fn main() {
    let mut p = 0 as *const i32;
    {
        let x = 5;
        p = &x as *const i32;
    }
    unsafe {
        print_int(*p as i64);
    }
})",
              UbCategory::DanglingPointer);
}

TEST(MiriDangling, NullDeref) {
    expect_ub(R"(
fn main() {
    let p = 0 as *const i32;
    unsafe {
        let x = *p;
    }
})",
              UbCategory::DanglingPointer);
}

TEST(MiriDangling, CopyBeforeScopeEndPasses) {
    expect_pass(R"(
fn main() {
    let mut v = 0;
    {
        let x = 5;
        let p = &x as *const i32;
        unsafe { v = *p; }
    }
    print_int(v as i64);
})");
}

// --- panic -------------------------------------------------------------------

TEST(MiriPanic, ExplicitPanic) {
    expect_ub("fn main() { panic(); }", UbCategory::Panic);
}

TEST(MiriPanic, AssertFailure) {
    expect_ub("fn main() { assert(1 == 2); }", UbCategory::Panic);
}

TEST(MiriPanic, DivideByZero) {
    expect_ub("fn main() { let x = input(0) as i32; let y = 10 / x; }",
              UbCategory::Panic, {{0}});
}

TEST(MiriPanic, IndexOutOfBounds) {
    expect_ub(R"(
fn main() {
    let a = [1, 2, 3];
    let i = input(0) as usize;
    print_int(a[i] as i64);
})",
              UbCategory::Panic, {{5}});
}

TEST(MiriPanic, AddOverflow) {
    expect_ub(R"(
fn main() {
    let big: i32 = 2147483647;
    let x = big + 1;
})",
              UbCategory::Panic);
}

TEST(MiriPanic, MulOverflowI64) {
    expect_ub(R"(
fn main() {
    let big: i64 = 4611686018427387904;
    let x = big * 4;
})",
              UbCategory::Panic);
}

TEST(MiriPanic, UnsignedSubOverflow) {
    expect_ub("fn main() { let a: u32 = 1; let b = a - 2; }", UbCategory::Panic);
}

TEST(MiriPanic, ShiftOverflow) {
    expect_ub("fn main() { let a: i32 = 1; let s = input(0) as usize; let b = a << s; }",
              UbCategory::Panic, {{40}});
}

TEST(MiriPanic, NegateMinValue) {
    expect_ub("fn main() { let m: i32 = -2147483647 - 1; let x = -m; }",
              UbCategory::Panic);
}

TEST(MiriPanic, StepLimitAsInfiniteLoop) {
    expect_ub("fn main() { let mut i = 0; while i < 10 { i = i * 1; } }",
              UbCategory::Panic);
}

TEST(MiriPanic, StackOverflow) {
    expect_ub(R"(
fn rec(n: i64) -> i64 {
    return rec(n + 1);
}
fn main() { let x = rec(0); })",
              UbCategory::Panic);
}

TEST(MiriPanic, GuardedIndexPasses) {
    expect_pass(R"(
fn main() {
    let a = [1, 2, 3];
    let i = input(0) as usize;
    if i < 3 {
        print_int(a[i] as i64);
    } else {
        print_int(0 - 1);
    }
})",
                {{5}, {1}});
}

// --- provenance ---------------------------------------------------------------

TEST(MiriProvenance, IntToPtrRoundTrip) {
    expect_ub(R"(
fn main() {
    let x = 5;
    let addr = &x as *const i32 as usize;
    let p = addr as *const i32;
    unsafe {
        print_int(*p as i64);
    }
})",
              UbCategory::Provenance);
}

TEST(MiriProvenance, OutOfBoundsOffset) {
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8);
        let q = offset(p, 16);
        dealloc(p, 8, 8);
    }
})",
              UbCategory::Provenance);
}

TEST(MiriProvenance, OutOfBoundsAccessOnePastEnd) {
    // offset to one-past-end is legal; dereferencing it is not.
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8);
        let q = offset(p, 8);
        let v = *q;
        dealloc(p, 8, 8);
    }
})",
              UbCategory::Provenance);
}

TEST(MiriProvenance, InBoundsOffsetPasses) {
    expect_pass(R"(
fn main() {
    unsafe {
        let p = alloc(4, 4);
        let q = offset(p, 3);
        *q = 7;
        print_int(*q as i64);
        dealloc(p, 4, 4);
    }
})");
}

// --- uninit ---------------------------------------------------------------------

TEST(MiriUninit, ReadFreshHeap) {
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8) as *mut i64;
        print_int(*p);
        dealloc(p as *mut u8, 8, 8);
    }
})",
              UbCategory::Uninit);
}

TEST(MiriUninit, PartialInit) {
    expect_ub(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8);
        let first = p as *mut u8;
        *first = 1;
        let wide = p as *mut i64;
        print_int(*wide);
        dealloc(p, 8, 8);
    }
})",
              UbCategory::Uninit);
}

TEST(MiriUninit, FullInitPasses) {
    expect_pass(R"(
fn main() {
    unsafe {
        let p = alloc(8, 8) as *mut i64;
        *p = 99;
        print_int(*p);
        dealloc(p as *mut u8, 8, 8);
    }
})");
}

// --- both borrow -----------------------------------------------------------------

TEST(MiriBothBorrow, SharedInvalidatedByMut) {
    expect_ub(R"(
fn main() {
    let mut x = 5;
    let r1 = &x;
    let r2 = &mut x;
    *r2 = 6;
    print_int(*r1 as i64);
})",
              UbCategory::BothBorrow);
}

TEST(MiriBothBorrow, ReadAfterPlaceWrite) {
    // Writing through the variable itself invalidates the live shared ref.
    expect_ub(R"(
fn main() {
    let mut x = 5;
    let r = &x;
    x = 6;
    print_int(*r as i64);
})",
              UbCategory::BothBorrow);
}

TEST(MiriStackBorrowExtra, WriteThroughSharedDerivedRaw) {
    // A raw pointer derived from `&` is read-only; writing through it is a
    // stacked-borrows violation (raw-tag origin -> stackborrow).
    expect_ub(R"(
fn main() {
    let mut x = 5;
    let r = &x;
    let p = r as *const i32 as *mut i32;
    unsafe { *p = 6; }
})",
              UbCategory::StackBorrow);
}

TEST(MiriBothBorrow, SequentialBorrowsPass) {
    expect_pass(R"(
fn main() {
    let mut x = 5;
    let r1 = &x;
    print_int(*r1 as i64);
    let r2 = &mut x;
    *r2 = 6;
    print_int(x as i64);
})");
}

// --- data race --------------------------------------------------------------------

TEST(MiriDataRace, UnsyncStaticCounter) {
    expect_ub(R"(
static mut COUNTER: i64 = 0;
fn worker() {
    unsafe {
        COUNTER = COUNTER + 1;
    }
}
fn main() {
    let h1 = spawn(worker);
    let h2 = spawn(worker);
    join(h1);
    join(h2);
    unsafe { print_int(COUNTER); }
})",
              UbCategory::DataRace);
}

TEST(MiriDataRace, RacyReadVsWrite) {
    expect_ub(R"(
static mut FLAG: i64 = 0;
fn writer() {
    unsafe { FLAG = 1; }
}
fn reader() {
    unsafe { let v = FLAG; }
}
fn main() {
    let h1 = spawn(writer);
    let h2 = spawn(reader);
    join(h1);
    join(h2);
})",
              UbCategory::DataRace);
}

TEST(MiriDataRace, AtomicFixPasses) {
    expect_pass(R"(
static mut COUNTER: i64 = 0;
fn worker() {
    unsafe {
        let p = &mut COUNTER as *mut i64;
        let old = atomic_fetch_add(p, 1);
    }
}
fn main() {
    let h1 = spawn(worker);
    let h2 = spawn(worker);
    join(h1);
    join(h2);
    unsafe {
        let p = &mut COUNTER as *mut i64;
        print_int(atomic_load(p as *const i64));
    }
})");
}

TEST(MiriDataRace, MutexFixPasses) {
    expect_pass(R"(
static mut COUNTER: i64 = 0;
static mut LOCK: i64 = 0;
fn worker() {
    unsafe {
        mutex_lock(LOCK);
        COUNTER = COUNTER + 1;
        mutex_unlock(LOCK);
    }
}
fn main() {
    unsafe { LOCK = mutex_new(); }
    let h1 = spawn(worker);
    let h2 = spawn(worker);
    join(h1);
    join(h2);
    unsafe {
        mutex_lock(LOCK);
        print_int(COUNTER);
        mutex_unlock(LOCK);
    }
})");
}

TEST(MiriDataRace, JoinOrderingPasses) {
    // Sequential spawn+join: accesses ordered by the join edge.
    expect_pass(R"(
static mut V: i64 = 0;
fn worker() {
    unsafe { V = V + 1; }
}
fn main() {
    let h1 = spawn(worker);
    join(h1);
    let h2 = spawn(worker);
    join(h2);
    unsafe { print_int(V); }
})");
}

// --- func.call ------------------------------------------------------------------

TEST(MiriFuncCall, BogusAddress) {
    expect_ub(R"(
fn main() {
    unsafe {
        let f = 4096 as fn();
        f();
    }
})",
              UbCategory::FuncCall);
}

TEST(MiriFuncCall, DataPointerAsFunction) {
    expect_ub(R"(
fn main() {
    let x = 5;
    unsafe {
        let a = &x as *const i32 as usize;
        let f = a as fn();
        f();
    }
})",
              UbCategory::FuncCall);
}

TEST(MiriFuncCall, ValidRoundTripPasses) {
    expect_pass(R"(
fn hello() { print_int(7); }
fn main() {
    unsafe {
        let a = hello as usize;
        let f = a as fn();
        f();
    }
})");
}

// --- func.pointer ----------------------------------------------------------------

TEST(MiriFuncPointer, WrongSignature) {
    expect_ub(R"(
fn takes_i64(x: i64) -> i64 { return x; }
fn main() {
    unsafe {
        let a = takes_i64 as usize;
        let f = a as fn(i32) -> i32;
        let y = f(1);
    }
})",
              UbCategory::FuncPointer);
}

TEST(MiriFuncPointer, WrongArity) {
    expect_ub(R"(
fn two(a: i64, b: i64) -> i64 { return a + b; }
fn main() {
    unsafe {
        let addr = two as usize;
        let f = addr as fn(i64) -> i64;
        let y = f(1);
    }
})",
              UbCategory::FuncPointer);
}

TEST(MiriFuncPointer, MatchingSignaturePasses) {
    expect_pass(R"(
fn double(x: i64) -> i64 { return x * 2; }
fn main() {
    unsafe {
        let a = double as usize;
        let f = a as fn(i64) -> i64;
        print_int(f(21));
    }
})");
}

// --- stack borrow ------------------------------------------------------------------

TEST(MiriStackBorrow, RawInvalidatedByNewMutBorrow) {
    expect_ub(R"(
fn main() {
    let mut x = 5;
    let r1 = &mut x;
    let p = r1 as *mut i32;
    let r2 = &mut x;
    *r2 = 6;
    unsafe { *p = 7; }
})",
              UbCategory::StackBorrow);
}

TEST(MiriStackBorrow, RawOutlivesReborrow) {
    expect_ub(R"(
fn main() {
    let mut x = 1;
    let p = &mut x as *mut i32;
    let r = &mut x;
    *r = 2;
    unsafe { print_int(*p as i64); }
})",
              UbCategory::StackBorrow);
}

TEST(MiriStackBorrow, WellNestedRawUsePasses) {
    expect_pass(R"(
fn main() {
    let mut x = 5;
    let p = &mut x as *mut i32;
    unsafe {
        *p = 6;
        print_int(*p as i64);
    }
    let r2 = &mut x;
    *r2 = 7;
    print_int(x as i64);
})");
}

// --- validity ----------------------------------------------------------------------

TEST(MiriValidity, BadBool) {
    expect_ub(R"(
fn main() {
    let a: [u8; 1] = [2];
    let p = &a as *const u8 as *const bool;
    unsafe {
        let b = *p;
        print_bool(b);
    }
})",
              UbCategory::Validity);
}

TEST(MiriValidity, GoodBoolPasses) {
    expect_pass(R"(
fn main() {
    let a: [u8; 1] = [1];
    let p = &a as *const u8 as *const bool;
    unsafe {
        print_bool(*p);
    }
})");
}

// --- unaligned ----------------------------------------------------------------------

TEST(MiriUnaligned, MisalignedWideLoad) {
    expect_ub(R"(
fn main() {
    let a: [u32; 2] = [1, 2];
    unsafe {
        let p = &a as *const u32 as *const u8;
        let q = offset(p, 1) as *const u32;
        let v = *q;
    }
})",
              UbCategory::Unaligned);
}

TEST(MiriUnaligned, AlignedAccessPasses) {
    expect_pass(R"(
fn main() {
    let a: [u32; 2] = [1, 2];
    unsafe {
        let p = &a as *const u32 as *const u8;
        let q = offset(p, 4) as *const u32;
        print_int(*q as i64);
    }
})");
}

// --- concurrency ------------------------------------------------------------------

TEST(MiriConcurrency, DoubleJoin) {
    expect_ub(R"(
fn work() { }
fn main() {
    let h = spawn(work);
    join(h);
    join(h);
})",
              UbCategory::Concurrency);
}

TEST(MiriConcurrency, ThreadLeak) {
    expect_ub(R"(
fn work() { }
fn main() {
    let h = spawn(work);
})",
              UbCategory::Concurrency);
}

TEST(MiriConcurrency, SelfDeadlock) {
    expect_ub(R"(
static mut LOCK: i64 = 0;
fn main() {
    unsafe {
        LOCK = mutex_new();
        mutex_lock(LOCK);
        mutex_lock(LOCK);
    }
})",
              UbCategory::Concurrency);
}

TEST(MiriConcurrency, UnlockNotHeld) {
    expect_ub(R"(
static mut LOCK: i64 = 0;
fn main() {
    unsafe {
        LOCK = mutex_new();
        mutex_unlock(LOCK);
    }
})",
              UbCategory::Concurrency);
}

TEST(MiriConcurrency, InvalidJoinHandle) {
    expect_ub("fn main() { join(42); }", UbCategory::Concurrency);
}

TEST(MiriConcurrency, SpawnJoinPasses) {
    expect_pass(R"(
fn work() { print_int(3); }
fn main() {
    let h = spawn(work);
    join(h);
})");
}

// --- tail call ---------------------------------------------------------------------

TEST(MiriTailCall, SignatureMismatch) {
    expect_ub(R"(
fn real(x: i64) -> i64 { return x; }
fn trampoline() -> i32 {
    unsafe {
        let a = real as usize;
        let k = a as fn() -> i32;
        become k();
    }
}
fn main() {
    let v = trampoline();
})",
              UbCategory::TailCall);
}

TEST(MiriTailCall, BogusTarget) {
    expect_ub(R"(
fn trampoline() -> i32 {
    unsafe {
        let k = 4096 as fn() -> i32;
        become k();
    }
}
fn main() { let v = trampoline(); })",
              UbCategory::TailCall);
}

TEST(MiriTailCall, LocalEscapesIntoTailCallee) {
    // become kills the caller frame before the callee runs; a pointer to a
    // caller local handed to the callee (even as an argument, which is
    // evaluated before the frame dies) is dangling inside the callee.
    expect_ub(R"(
fn use_it(p: *const i32) -> i32 {
    unsafe {
        return *p;
    }
}
fn trampoline() -> i32 {
    let local = 42;
    become use_it(&local as *const i32);
}
fn main() {
    let v = trampoline();
})",
              UbCategory::TailCall);
}

TEST(MiriTailCall, DeepBecomeDoesNotOverflow) {
    // become must not grow the call stack: 5000 iterations with depth cap 200.
    expect_pass(R"(
fn count(n: i64) -> i64 {
    if n <= 0 {
        return 0;
    }
    become count(n - 1);
}
fn main() {
    print_int(count(5000));
})");
}

TEST(MiriTailCall, MatchingBecomePasses) {
    expect_pass(R"(
fn is_even(n: i64) -> bool {
    if n == 0 { return true; }
    become is_odd(n - 1);
}
fn is_odd(n: i64) -> bool {
    if n == 0 { return false; }
    become is_even(n - 1);
}
fn main() {
    print_bool(is_even(10));
    print_bool(is_odd(7));
})");
}

TEST(MiriTailCall, DeepMutualBecomeChainDoesNotOverflow) {
    // The trampoline must also flatten chains that alternate between
    // functions: 20000 mutual tail calls with depth cap 200.
    expect_pass(R"(
fn is_even(n: i64) -> bool {
    if n == 0 { return true; }
    become is_odd(n - 1);
}
fn is_odd(n: i64) -> bool {
    if n == 0 { return false; }
    become is_even(n - 1);
}
fn main() {
    print_bool(is_even(20000));
})");
}

TEST(MiriTailCall, BecomeNestedInBlocksUnwindsCleanly) {
    // A become buried in nested blocks: every enclosing scope must unwind
    // normally on the way out to the trampoline, at any chain length.
    expect_pass(R"(
fn count(n: i64) -> i64 {
    if n > 0 {
        unsafe {
            become count(n - 1);
        }
    }
    return 0;
}
fn main() {
    print_int(count(5000));
})");
}

TEST(MiriTailCall, ChainEndingInPanicKeepsFaultSiteSpan) {
    // UB at the end of a become chain must be attributed to the faulting
    // expression in the final callee, not to any become site the
    // trampoline flattened away.
    const MiriReport report = run(
        "fn h(n: i64) -> i64 { return 100 / n; }\n"
        "fn g(n: i64) -> i64 { become h(n); }\n"
        "fn f(n: i64) -> i64 { become g(n); }\n"
        "fn main() { let v = f(0); }\n");
    ASSERT_FALSE(report.passed());
    EXPECT_TRUE(report.has_category(UbCategory::Panic)) << report.summary();
    EXPECT_EQ(report.findings.front().span.line, 1u) << report.summary();
}

TEST(MiriTailCall, ChainEndingInDanglingAccessKeepsFaultSiteSpan) {
    // A caller local handed through two becomes: the access in the final
    // callee is TailCall UB, attributed to the deref site on line 1.
    const MiriReport report = run(
        "fn h(p: *const i32) -> i32 { unsafe { return *p; } }\n"
        "fn g(p: *const i32) -> i32 { become h(p); }\n"
        "fn f() -> i32 { let local = 7; become g(&local as *const i32); }\n"
        "fn main() { let v = f(); }\n");
    ASSERT_FALSE(report.passed());
    EXPECT_TRUE(report.has_category(UbCategory::TailCall)) << report.summary();
    EXPECT_EQ(report.findings.front().span.line, 1u) << report.summary();
}

TEST(MiriTailCall, BadTargetAttributedToBecomeSite) {
    // The become statement itself is the fault site when the target is
    // bogus — resolution happens before the trampoline bounces.
    const MiriReport report = run(
        "fn f() -> i64 {\n"
        "    unsafe {\n"
        "        let k = 4096 as fn() -> i64;\n"
        "        become k();\n"
        "    }\n"
        "}\n"
        "fn main() { let v = f(); }\n");
    ASSERT_FALSE(report.passed());
    EXPECT_TRUE(report.has_category(UbCategory::TailCall)) << report.summary();
    EXPECT_EQ(report.findings.front().span.line, 4u) << report.summary();
}

// --- compile errors & outputs ------------------------------------------------------

TEST(MiriDriver, CompileErrorReported) {
    const MiriReport report = run("fn main() { let x: i32 = true; }");
    ASSERT_FALSE(report.passed());
    EXPECT_TRUE(report.has_category(UbCategory::CompileError));
}

TEST(MiriDriver, ParseErrorReported) {
    const MiriReport report = run("fn main( {");
    ASSERT_FALSE(report.passed());
    EXPECT_TRUE(report.has_category(UbCategory::CompileError));
}

TEST(MiriDriver, OutputsCollectedPerInput) {
    const MiriReport report = run(R"(
fn main() {
    print_int(input(0) * 2);
})",
                                  {{3}, {10}});
    ASSERT_TRUE(report.passed()) << report.summary();
    ASSERT_EQ(report.outputs.size(), 2u);
    EXPECT_EQ(report.outputs[0], std::vector<std::string>{"6"});
    EXPECT_EQ(report.outputs[1], std::vector<std::string>{"20"});
}

TEST(MiriDriver, FindingsDedupAcrossInputs) {
    const MiriReport report = run("fn main() { panic(); }", {{1}, {2}, {3}});
    EXPECT_EQ(report.error_count(), 1u);
}

TEST(MiriDriver, DistinctFindingsPerInput) {
    const MiriReport report = run(R"(
fn main() {
    let sel = input(0);
    if sel == 0 {
        panic();
    } else {
        let p = 0 as *const i32;
        unsafe { let v = *p; }
    }
})",
                                  {{0}, {1}});
    EXPECT_EQ(report.error_count(), 2u);
}

TEST(MiriDriver, DeterministicAcrossRuns) {
    const std::string source = R"(
static mut COUNTER: i64 = 0;
fn worker() { unsafe { COUNTER = COUNTER + 1; } }
fn main() {
    let h = spawn(worker);
    join(h);
    unsafe { print_int(COUNTER); }
})";
    const MiriReport a = run(source);
    const MiriReport b = run(source);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.total_steps, b.total_steps);
}

}  // namespace
}  // namespace rustbrain::miri
