// Concurrency stress for the shared stores: N threads hammering one
// verify::Oracle and one llm::PromptCache with overlapping keys must (a)
// get answers identical to a serial uncached run — the bit-identity
// contract under racing insert/lookup — and (b) leave stats that add up
// to exactly the work submitted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataset/corpus.hpp"
#include "llm/caching_backend.hpp"
#include "miri/mirilite.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::verify {
namespace {

/// Field-wise MiriReport comparison (no operator==): findings, outputs and
/// step counts are the full observable surface.
bool report_matches(const miri::MiriReport& a, const miri::MiriReport& b) {
    if (a.total_steps != b.total_steps) return false;
    if (a.outputs != b.outputs) return false;
    if (a.findings.size() != b.findings.size()) return false;
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        if (a.findings[i].to_string() != b.findings[i].to_string()) {
            return false;
        }
    }
    return true;
}

TEST(VerifyStressTest, ConcurrentOracleMatchesSerialAndStatsAddUp) {
    // A small overlapping working set: every thread verifies every case,
    // offset so different threads race on different keys at any moment.
    const dataset::Corpus corpus = dataset::Corpus::standard();
    const std::size_t kCases = 6;
    ASSERT_GE(corpus.size(), kCases);
    std::vector<const dataset::UbCase*> cases;
    for (std::size_t i = 0; i < kCases; ++i) {
        cases.push_back(&corpus.cases()[i]);
    }

    // Serial reference: recompute everything, screening off so the
    // accounting below is purely cache lookups.
    OracleOptions serial_options;
    serial_options.caching = false;
    serial_options.screening = false;
    const Oracle serial(std::move(serial_options));
    std::vector<miri::MiriReport> expected;
    expected.reserve(kCases);
    for (const dataset::UbCase* ub_case : cases) {
        expected.push_back(
            serial.test_source(ub_case->buggy_source, ub_case->inputs));
    }

    OracleOptions shared_options;
    shared_options.cache = std::make_shared<VerifyCache>();
    shared_options.caching = true;
    shared_options.screening = false;
    const Oracle shared(std::move(shared_options));

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kRounds = 25;
    std::atomic<std::uint64_t> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t round = 0; round < kRounds; ++round) {
                for (std::size_t i = 0; i < kCases; ++i) {
                    const std::size_t index = (i + t) % kCases;
                    const miri::MiriReport report = shared.test_source(
                        cases[index]->buggy_source, cases[index]->inputs);
                    if (!report_matches(report, expected[index])) {
                        ++mismatches;
                    }
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0u);

    // Every test_source call is exactly one program lookup and one report
    // lookup; racing threads may each miss the same cold key (both then
    // compute — still correct), so misses are bounded below by the distinct
    // keys and above by the thread count times that.
    const VerifyCacheStats stats = shared.stats();
    const std::uint64_t calls = kThreads * kRounds * kCases;
    EXPECT_EQ(stats.program_hits + stats.program_misses, calls);
    EXPECT_EQ(stats.report_hits + stats.report_misses, calls);
    EXPECT_GE(stats.program_misses, kCases);
    EXPECT_LE(stats.program_misses, kThreads * kCases);
    EXPECT_GE(stats.report_misses, kCases);
    EXPECT_LE(stats.report_misses, kThreads * kCases);
    EXPECT_GT(stats.report_hits, 0u);
    EXPECT_LE(stats.programs, kCases);
    EXPECT_LE(stats.reports, kCases);
}

TEST(VerifyStressTest, ConcurrentPromptCacheKeepsValuesAndCountsEveryLookup) {
    llm::PromptCache cache;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kOps = 2000;
    constexpr std::uint64_t kKeys = 64;  // heavily overlapping
    std::atomic<std::uint64_t> wrong_values{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t op = 0; op < kOps; ++op) {
                const std::uint64_t key = (op * 7 + t) % kKeys;
                const std::string want = "response-" + std::to_string(key);
                if (const auto hit = cache.lookup(key)) {
                    if (hit->content != want) ++wrong_values;
                } else {
                    llm::ChatResponse response;
                    response.content = want;
                    cache.insert(key, response);
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(wrong_values.load(), 0u);

    const llm::PromptCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, kThreads * kOps);
    EXPECT_GE(stats.misses, kKeys);             // each key cold once
    EXPECT_LE(stats.misses, kThreads * kKeys);  // racing cold misses at most
    EXPECT_EQ(stats.entries, kKeys);
    EXPECT_EQ(stats.evictions, 0u);  // default capacity dwarfs the key set
    EXPECT_EQ(stats.flushes, 0u);
    // Every key is retrievable with its value after the stampede.
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        const auto hit = cache.lookup(key);
        ASSERT_TRUE(hit.has_value()) << "key " << key;
        EXPECT_EQ(hit->content, "response-" + std::to_string(key));
    }
}

}  // namespace
}  // namespace rustbrain::verify
