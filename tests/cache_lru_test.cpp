// support::LruMap and the shared caches built on it: true LRU keeps hot
// entries alive under eviction pressure (the regression the flush-on-cap
// behavior failed), FlushOnCap stays reachable behind the policy knob, and
// the eviction/age stats surface what was dropped.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "llm/caching_backend.hpp"
#include "support/lru.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::support {
namespace {

TEST(LruMapTest, FindPromotesAndInsertEvictsTheColdest) {
    LruMap<int, std::string> map;
    map.configure(EvictionPolicy::Lru, 3);
    map.insert(1, "one");
    map.insert(2, "two");
    map.insert(3, "three");
    // Touch 1 so 2 becomes the least recently used.
    ASSERT_NE(map.find(1), nullptr);
    map.insert(4, "four");
    EXPECT_EQ(map.find(2), nullptr);  // evicted
    EXPECT_NE(map.find(1), nullptr);
    EXPECT_NE(map.find(3), nullptr);
    EXPECT_NE(map.find(4), nullptr);
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.stats().evictions, 1u);
    EXPECT_EQ(map.stats().flushes, 0u);
}

TEST(LruMapTest, HotKeySurvivesSustainedEvictionPressure) {
    // The regression flush-on-cap failed: a key touched on every access
    // must survive arbitrarily many cold inserts.
    LruMap<int, int> map;
    map.configure(EvictionPolicy::Lru, 4);
    map.insert(0, 0);
    for (int cold = 1; cold <= 100; ++cold) {
        ASSERT_NE(map.find(0), nullptr) << "hot key evicted at " << cold;
        map.insert(cold, cold);
    }
    EXPECT_NE(map.find(0), nullptr);
    EXPECT_EQ(map.stats().evictions, 97u);  // 101 inserts into capacity 4
}

TEST(LruMapTest, PeekDoesNotPromote) {
    // The collision-check probe: VerifyCache peeks, validates the source,
    // and only a validated hit may refresh the entry's LRU position. A
    // mismatching probe (counted as a miss) must leave the order alone.
    LruMap<int, std::string> map;
    map.configure(EvictionPolicy::Lru, 2);
    map.insert(1, "one");
    map.insert(2, "two");
    // 1 is the LRU victim; repeated peeks must not rescue it.
    for (int i = 0; i < 5; ++i) ASSERT_NE(map.peek(1), nullptr);
    map.insert(3, "three");
    EXPECT_EQ(map.peek(1), nullptr);  // evicted: peeks were not accesses
    EXPECT_NE(map.peek(2), nullptr);
    EXPECT_NE(map.peek(3), nullptr);
}

TEST(LruMapTest, FlushOnCapDropsEverythingAndCounts) {
    LruMap<int, int> map;
    map.configure(EvictionPolicy::FlushOnCap, 3);
    map.insert(1, 1);
    map.insert(2, 2);
    map.insert(3, 3);
    map.insert(4, 4);  // cap reached: whole map dropped first
    EXPECT_EQ(map.find(1), nullptr);
    EXPECT_EQ(map.find(2), nullptr);
    EXPECT_EQ(map.find(3), nullptr);
    EXPECT_NE(map.find(4), nullptr);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.stats().flushes, 1u);
    EXPECT_EQ(map.stats().evictions, 0u);
}

TEST(LruMapTest, EvictedIdleTicksMeasureVictimColdness) {
    LruMap<int, int> map;
    map.configure(EvictionPolicy::Lru, 2);
    map.insert(1, 1);
    map.insert(2, 2);
    // Several accesses to 2 age entry 1 before it gets evicted.
    for (int i = 0; i < 5; ++i) ASSERT_NE(map.find(2), nullptr);
    map.insert(3, 3);  // evicts 1, idle for the 5 finds + this insert's tick
    EXPECT_EQ(map.stats().evictions, 1u);
    EXPECT_GE(map.stats().evicted_idle_ticks, 5u);
}

TEST(PromptCacheLruTest, HotPromptSurvivesEvictionPressure) {
    llm::PromptCache cache(EvictionPolicy::Lru, /*capacity_per_shard=*/4);
    llm::ChatResponse response;
    response.content = "hot";
    constexpr std::uint64_t kShardStride = 16;  // all keys land in shard 0
    cache.insert(0, response);
    for (std::uint64_t cold = 1; cold <= 64; ++cold) {
        ASSERT_TRUE(cache.lookup(0).has_value())
            << "hot prompt evicted after " << cold << " cold inserts";
        llm::ChatResponse filler;
        filler.content = "cold";
        cache.insert(cold * kShardStride, filler);
    }
    EXPECT_TRUE(cache.lookup(0).has_value());
    EXPECT_EQ(cache.lookup(0)->content, "hot");
    const llm::PromptCacheStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_EQ(stats.flushes, 0u);
    EXPECT_GT(stats.evicted_idle_ticks, 0u);
    // An early cold key is long gone.
    EXPECT_FALSE(cache.lookup(1 * kShardStride).has_value());
}

TEST(VerifyCacheLruTest, HotProgramSurvivesAndEvictionsAreCounted) {
    verify::OracleOptions options;
    options.cache = std::make_shared<verify::VerifyCache>(
        EvictionPolicy::Lru, /*programs_per_shard=*/2, /*reports_per_shard=*/2);
    options.caching = true;
    const verify::Oracle oracle(std::move(options));

    const std::string hot = "fn main() {\n    print_int(1);\n}\n";
    (void)oracle.compile(hot);
    for (int cold = 0; cold < 40; ++cold) {
        // Touch the hot program, then push a fresh source through the same
        // (sharded) store.
        verify::VerifyOutcome outcome;
        (void)oracle.compile(hot, &outcome);
        EXPECT_TRUE(outcome.program_cached)
            << "hot program fell out of the cache at " << cold;
        const std::string fresh = "fn main() {\n    print_int(" +
                                  std::to_string(100 + cold) + ");\n}\n";
        (void)oracle.compile(fresh);
    }
    const verify::VerifyCacheStats stats = oracle.stats();
    EXPECT_GT(stats.program_evictions, 0u);
    EXPECT_EQ(stats.program_flushes, 0u);
    EXPECT_GT(stats.program_hits, 0u);
}

TEST(VerifyCacheLruTest, FlushOnCapKnobStillFlushesShards) {
    verify::OracleOptions options;
    options.cache = std::make_shared<verify::VerifyCache>(
        EvictionPolicy::FlushOnCap, /*programs_per_shard=*/2,
        /*reports_per_shard=*/2);
    options.caching = true;
    const verify::Oracle oracle(std::move(options));
    for (int i = 0; i < 64; ++i) {
        (void)oracle.compile("fn main() {\n    print_int(" +
                             std::to_string(i) + ");\n}\n");
    }
    const verify::VerifyCacheStats stats = oracle.stats();
    EXPECT_GT(stats.program_flushes, 0u);
    EXPECT_EQ(stats.program_evictions, 0u);
}

}  // namespace
}  // namespace rustbrain::support
