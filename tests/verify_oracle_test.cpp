// verify::Oracle — compile-once, memoized verification.
//
// The load-bearing contract is bit-identity: with the cache on or off, at
// any worker count, every consumer (engine sweeps, the semantic judge, the
// forge) produces byte-identical results; the cache only changes how fast
// the answer arrives. Plus: the semantic judge interprets a case's
// reference fix exactly once per process (counted through a counting
// oracle double), front-end failures match MiriLite verbatim, and the
// stats counters behave.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "dataset/corpus.hpp"
#include "dataset/semantic.hpp"
#include "gen/corpus_io.hpp"
#include "gen/forge.hpp"
#include "kb/seed.hpp"
#include "miri/mirilite.hpp"
#include "support/hashing.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::verify {
namespace {

using Inputs = std::vector<std::vector<std::int64_t>>;

/// Oracle with a private store, cache on.
std::shared_ptr<Oracle> cached_oracle() {
    OracleOptions options;
    options.cache = std::make_shared<VerifyCache>();
    options.caching = true;
    return std::make_shared<Oracle>(std::move(options));
}

/// Oracle that recomputes everything (the escape-hatch behavior).
std::shared_ptr<Oracle> uncached_oracle() {
    OracleOptions options;
    options.caching = false;
    return std::make_shared<Oracle>(std::move(options));
}

void expect_identical(const core::BatchReport& a, const core::BatchReport& b) {
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const core::CaseResult& x = a.results[i];
        const core::CaseResult& y = b.results[i];
        EXPECT_EQ(x.case_id, y.case_id);
        EXPECT_EQ(x.pass, y.pass) << x.case_id;
        EXPECT_EQ(x.exec, y.exec) << x.case_id;
        EXPECT_EQ(x.time_ms, y.time_ms) << x.case_id;
        EXPECT_EQ(x.time_breakdown, y.time_breakdown) << x.case_id;
        EXPECT_EQ(x.final_source, y.final_source) << x.case_id;
        EXPECT_EQ(x.winning_rule, y.winning_rule) << x.case_id;
        EXPECT_EQ(x.llm_calls, y.llm_calls) << x.case_id;
        EXPECT_EQ(x.solutions_generated, y.solutions_generated) << x.case_id;
        EXPECT_EQ(x.steps_executed, y.steps_executed) << x.case_id;
        EXPECT_EQ(x.rollbacks, y.rollbacks) << x.case_id;
        EXPECT_EQ(x.thinking_switches, y.thinking_switches) << x.case_id;
        EXPECT_EQ(x.escalations, y.escalations) << x.case_id;
        EXPECT_EQ(x.early_stops, y.early_stops) << x.case_id;
        EXPECT_EQ(x.attempts_skipped, y.attempts_skipped) << x.case_id;
        EXPECT_EQ(x.error_trajectory, y.error_trajectory) << x.case_id;
    }
    EXPECT_EQ(a.clock.now_ms(), b.clock.now_ms());
    EXPECT_EQ(a.clock.breakdown(), b.clock.breakdown());
}

// --- bit-identity across the stack -----------------------------------------

TEST(VerifyOracleTest, EveryRegistryEngineSweepsBitIdenticallyCachedOrNot) {
    const dataset::Corpus& corpus = []() -> const dataset::Corpus& {
        static const dataset::Corpus c = dataset::Corpus::standard();
        return c;
    }();
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(corpus, kbase);

    for (const std::string& engine_id : core::EngineRegistry::builtin().ids()) {
        SCOPED_TRACE(engine_id);
        core::EngineBuildContext uncached_context;
        uncached_context.knowledge_base = &kbase;
        uncached_context.oracle = uncached_oracle();
        core::EngineBuildContext cached_context = uncached_context;
        cached_context.oracle = cached_oracle();

        const core::BatchRunner uncached(engine_id, {}, uncached_context,
                                         core::BatchOptions{1});
        const core::BatchRunner cached(engine_id, {}, cached_context,
                                       core::BatchOptions{1});
        expect_identical(uncached.run(corpus), cached.run(corpus));
    }
}

TEST(VerifyOracleTest, ParallelSweepSharesOneOracleAndMatchesSerial) {
    const dataset::Corpus corpus = dataset::Corpus::standard();

    core::EngineBuildContext serial_context;
    serial_context.oracle = uncached_oracle();
    const core::BatchRunner serial("rustbrain", {}, serial_context,
                                   core::BatchOptions{1});

    // One cached oracle shared by all four workers.
    core::EngineBuildContext parallel_context;
    parallel_context.oracle = cached_oracle();
    const core::BatchRunner parallel("rustbrain", {}, parallel_context,
                                     core::BatchOptions{4});

    expect_identical(serial.run(corpus), parallel.run(corpus));
    const VerifyCacheStats stats = parallel_context.oracle->stats();
    EXPECT_GT(stats.report_hits + stats.report_misses, 0u);
}

TEST(VerifyOracleTest, ForgedCorpusIsByteIdenticalCachedOrNot) {
    gen::ForgeOptions options;
    options.seed = 9;
    options.count = 32;

    const auto cached = cached_oracle();
    options.oracle = cached.get();
    const std::string with_cache = gen::corpus_to_string(gen::forge_corpus(options));

    const auto uncached = uncached_oracle();
    options.oracle = uncached.get();
    const std::string without_cache =
        gen::corpus_to_string(gen::forge_corpus(options));

    EXPECT_EQ(with_cache, without_cache);
    // The forge's rejection sampler actually exercised the cache: the
    // front-end compile is shared with validate_case's two runs.
    EXPECT_GT(cached->stats().program_hits, 0u);
    EXPECT_EQ(uncached->stats().program_hits + uncached->stats().report_hits, 0u);
}

// --- semantic judge: reference fix interpreted once -------------------------

class CountingOracle final : public Oracle {
  public:
    explicit CountingOracle(OracleOptions options)
        : Oracle(std::move(options)) {}

    mutable std::map<std::uint64_t, int> interpretations;

  protected:
    miri::MiriReport interpret(const CompiledProgram& compiled,
                               const Inputs& input_sets) const override {
        ++interpretations[compiled.fingerprint];
        return Oracle::interpret(compiled, input_sets);
    }
};

TEST(VerifyOracleTest, JudgeInterpretsTheReferenceFixOncePerCase) {
    dataset::UbCase ub_case;
    ub_case.id = "oracle/ref_memo";
    ub_case.category = miri::UbCategory::Panic;
    ub_case.inputs = {{}};
    ub_case.reference_fix = "fn main() {\n    print_int(42);\n}\n";

    OracleOptions options;
    options.cache = std::make_shared<VerifyCache>();
    options.caching = true;
    // Screening off: this test counts interpret() calls, and the screener
    // would (correctly) skip them for these trivially-safe candidates.
    options.screening = false;
    const CountingOracle oracle(std::move(options));

    const std::vector<std::string> candidates = {
        "fn main() {\n    print_int(40 + 2);\n}\n",
        "fn main() {\n    print_int(21 * 2);\n}\n",
        "fn main() {\n    let x = 42;\n    print_int(x);\n}\n",
        "fn main() {\n    print_int(43);\n}\n",  // passes, diverges
    };
    int acceptable = 0;
    for (const std::string& candidate : candidates) {
        acceptable +=
            dataset::judge_semantics(candidate, ub_case, oracle).acceptable();
    }
    EXPECT_EQ(acceptable, 3);

    // Four candidate interpretations, ONE reference interpretation: the
    // three later judgments reuse the memoized reference report.
    const std::uint64_t reference_key =
        support::fnv1a64(ub_case.reference_fix);
    EXPECT_EQ(oracle.interpretations.at(reference_key), 1);
    for (const std::string& candidate : candidates) {
        EXPECT_EQ(oracle.interpretations.at(support::fnv1a64(candidate)), 1)
            << candidate;
    }
}

TEST(VerifyOracleTest, WithoutCachingTheReferenceFixRunsPerCandidate) {
    // The pre-Oracle behavior, kept reachable through the escape hatch —
    // the contrast that proves the memoization is what drops the count.
    dataset::UbCase ub_case;
    ub_case.id = "oracle/ref_uncached";
    ub_case.category = miri::UbCategory::Panic;
    ub_case.inputs = {{}};
    ub_case.reference_fix = "fn main() {\n    print_int(7);\n}\n";

    OracleOptions options;
    options.caching = false;
    options.screening = false;  // same reason as the cached counting test
    const CountingOracle oracle(std::move(options));

    const std::vector<std::string> candidates = {
        "fn main() {\n    print_int(3 + 4);\n}\n",
        "fn main() {\n    print_int(14 / 2);\n}\n",
        "fn main() {\n    print_int(8 - 1);\n}\n",
    };
    for (const std::string& candidate : candidates) {
        EXPECT_TRUE(
            dataset::judge_semantics(candidate, ub_case, oracle).acceptable());
    }
    EXPECT_EQ(oracle.interpretations.at(support::fnv1a64(ub_case.reference_fix)),
              3);
}

// --- front-end parity and cache mechanics ----------------------------------

TEST(VerifyOracleTest, FrontEndFailuresMatchMiriLiteVerbatim) {
    const miri::MiriLite reference;
    const auto oracle = cached_oracle();
    const std::vector<std::string> broken = {
        "fn main( {",                    // parse error
        "fn main() {\n    x = 1;\n}\n",  // typecheck error
        "fn not_main() {}\n",            // no main
    };
    for (const std::string& source : broken) {
        SCOPED_TRACE(source);
        const miri::MiriReport a = reference.test_source(source, {});
        // Twice: the second answer comes from the program cache.
        for (int round = 0; round < 2; ++round) {
            const miri::MiriReport b = oracle->test_source(source, {});
            ASSERT_EQ(a.findings.size(), b.findings.size());
            ASSERT_EQ(a.findings.size(), 1u);
            EXPECT_EQ(a.findings.front().category, b.findings.front().category);
            EXPECT_EQ(a.findings.front().message, b.findings.front().message);
        }
    }
}

TEST(VerifyOracleTest, ReportCacheHitsAreObservableAndCounted) {
    const auto oracle = cached_oracle();
    const std::string source = "fn main() {\n    print_int(1);\n}\n";

    VerifyOutcome first;
    const miri::MiriReport a = oracle->test_source(source, {{}}, &first);
    EXPECT_FALSE(first.report_cached);
    EXPECT_FALSE(first.program_cached);

    VerifyOutcome second;
    const miri::MiriReport b = oracle->test_source(source, {{}}, &second);
    EXPECT_TRUE(second.report_cached);
    EXPECT_TRUE(second.program_cached);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.total_steps, b.total_steps);

    // Distinct inputs are a distinct report key over the same compile.
    VerifyOutcome other_inputs;
    (void)oracle->test_source(source, {{1, 2}}, &other_inputs);
    EXPECT_TRUE(other_inputs.program_cached);
    EXPECT_FALSE(other_inputs.report_cached);

    const VerifyCacheStats stats = oracle->stats();
    EXPECT_EQ(stats.programs, 1u);
    EXPECT_EQ(stats.reports, 2u);
    EXPECT_EQ(stats.report_hits, 1u);
    EXPECT_EQ(stats.report_misses, 2u);
    EXPECT_DOUBLE_EQ(stats.report_hit_rate(), 1.0 / 3.0);
}

TEST(VerifyOracleTest, CompileSharesOneCanonicalProgram) {
    const auto oracle = cached_oracle();
    const std::string source = "fn main() {\n    print_int(2);\n}\n";
    const auto first = oracle->compile(source);
    const auto second = oracle->compile(source);
    EXPECT_EQ(first.get(), second.get());
    ASSERT_TRUE(first->ok());
    EXPECT_EQ(first->lowering.fn_slot_counts.size(), 1u);
}

TEST(VerifyOracleTest, DisabledCachingStoresNothing) {
    OracleOptions options;
    options.cache = std::make_shared<VerifyCache>();
    options.caching = false;
    const Oracle oracle(std::move(options));
    const std::string source = "fn main() {\n    print_int(3);\n}\n";
    (void)oracle.test_source(source, {{}});
    (void)oracle.test_source(source, {{}});
    const VerifyCacheStats stats = oracle.stats();
    EXPECT_EQ(stats.programs, 0u);
    EXPECT_EQ(stats.reports, 0u);
    EXPECT_EQ(stats.report_hits + stats.report_misses, 0u);
}

TEST(VerifyOracleTest, DifferentLimitsNeverShareAReport) {
    OracleOptions strict_options;
    strict_options.cache = std::make_shared<VerifyCache>();
    strict_options.caching = true;
    strict_options.limits.max_steps = 50;
    const Oracle strict(std::move(strict_options));

    OracleOptions roomy_options;
    roomy_options.cache = strict.cache();  // same store, different limits
    roomy_options.caching = true;
    const Oracle roomy(OracleOptions{roomy_options});

    const std::string source = R"(fn main() {
    let mut i = 0;
    while i < 100 {
        i = i + 1;
    }
}
)";
    EXPECT_TRUE(roomy.test_source(source, {}).passed());
    const miri::MiriReport limited = strict.test_source(source, {});
    ASSERT_EQ(limited.findings.size(), 1u);
    EXPECT_EQ(limited.findings.front().message,
              "step limit exceeded (possible infinite loop)");
}

}  // namespace
}  // namespace rustbrain::verify
