#include <gtest/gtest.h>

#include "dataset/corpus.hpp"
#include "lang/parser.hpp"
#include "llm/hallucinate.hpp"
#include "llm/rules.hpp"
#include "llm/simllm.hpp"
#include "miri/mirilite.hpp"

namespace rustbrain::llm {
namespace {

ChatRequest make_request(const std::string& task,
                         std::map<std::string, std::string> fields,
                         const std::string& code, double temperature = 0.5,
                         std::vector<std::string> exemplars = {},
                         std::vector<std::string> preferred = {},
                         std::uint64_t sequence = 0) {
    PromptSpec spec;
    spec.task = task;
    spec.fields = std::move(fields);
    spec.code = code;
    spec.exemplar_rules = std::move(exemplars);
    spec.preferred_rules = std::move(preferred);
    ChatRequest request;
    request.temperature = temperature;
    request.sequence = sequence;
    request.messages.push_back({Role::User, spec.render()});
    return request;
}

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

const std::string kBuggy =
    corpus().find("danglingpointer/use_after_free_0")->buggy_source;

TEST(PromptSpecTest, RenderParseRoundTrip) {
    PromptSpec spec;
    spec.task = "apply_rule";
    spec.fields["rule"] = "move-dealloc-to-end";
    spec.fields["error_category"] = "danglingpointer";
    spec.exemplar_rules = {"a-rule", "b-rule"};
    spec.preferred_rules = {"c-rule"};
    spec.code = "fn main() { }\n";
    const PromptSpec parsed = PromptSpec::parse(spec.render());
    EXPECT_EQ(parsed.task, "apply_rule");
    EXPECT_EQ(parsed.fields.at("rule"), "move-dealloc-to-end");
    EXPECT_EQ(parsed.exemplar_rules.size(), 2u);
    EXPECT_EQ(parsed.preferred_rules.size(), 1u);
    EXPECT_EQ(parsed.code, "fn main() { }\n");
}

TEST(SimLlmTest, DeterministicForSameSeed) {
    SimLLM a(gpt4_profile(), 7);
    SimLLM b(gpt4_profile(), 7);
    const auto request = make_request(
        "generate_solutions",
        {{"error_category", "danglingpointer"}, {"count", "5"}}, kBuggy);
    EXPECT_EQ(a.complete(request).content, b.complete(request).content);
}

TEST(SimLlmTest, ResponseIsPureFunctionOfCallIdentity) {
    // The LlmBackend contract: the response depends only on (session seed,
    // sequence, prompt, temperature) — never on what the session answered
    // before. `divergent` serves two extra calls first; call identity 5
    // still answers identically.
    SimLLM fresh(gpt4_profile(), 7);
    SimLLM divergent(gpt4_profile(), 7);
    const auto probe = make_request(
        "generate_solutions",
        {{"error_category", "danglingpointer"}, {"count", "4"}}, kBuggy, 0.5, {},
        {}, 5);
    (void)divergent.complete(make_request(
        "extract_features", {{"error_category", "alloc"}}, kBuggy, 0.5, {}, {}, 0));
    (void)divergent.complete(make_request(
        "apply_rule", {{"rule", "guard-divisor"}}, kBuggy, 0.9, {}, {}, 1));
    const auto a = fresh.complete(probe);
    const auto b = divergent.complete(probe);
    EXPECT_EQ(a.content, b.content);
    EXPECT_EQ(a.latency_ms, b.latency_ms);
    // A different sequence is a different identity: a retry of the same
    // prompt may sample differently.
    EXPECT_EQ(fresh.calls_served(), 1u);
}

TEST(SimLlmTest, FeatureExtractionNamesCategory) {
    SimLLM llm(gpt4_profile(), 3);
    const auto response = llm.complete(make_request(
        "extract_features",
        {{"error_category", "danglingpointer"}, {"error_message", "use after free"}},
        kBuggy));
    EXPECT_NE(response.content.find("category: danglingpointer"), std::string::npos);
    EXPECT_NE(response.content.find("feature_key:"), std::string::npos);
}

TEST(SimLlmTest, SolutionsAreKnownRules) {
    SimLLM llm(gpt4_profile(), 11);
    const auto response = llm.complete(make_request(
        "generate_solutions",
        {{"error_category", "danglingpointer"}, {"count", "6"}}, kBuggy));
    const auto solutions = parse_solution_lines(response.content);
    ASSERT_FALSE(solutions.empty());
    for (const auto& id : solutions) {
        EXPECT_NE(find_rule(id), nullptr) << id;
    }
}

TEST(SimLlmTest, PreferredRulesDominateSampling) {
    SimLLM llm(gpt4_profile(), 13);
    int hits = 0;
    const int trials = 30;
    for (int i = 0; i < trials; ++i) {
        const auto response = llm.complete(make_request(
            "generate_solutions",
            {{"error_category", "danglingpointer"}, {"count", "1"}}, kBuggy, 0.5,
            {}, {"move-dealloc-to-end"}, static_cast<std::uint64_t>(i)));
        const auto solutions = parse_solution_lines(response.content);
        if (!solutions.empty() && solutions[0] == "move-dealloc-to-end") ++hits;
    }
    EXPECT_GT(hits, trials / 2);
}

TEST(SimLlmTest, LowTemperatureCollapsesDiversity) {
    SimLLM cold(gpt4_profile(), 17);
    SimLLM hot(gpt4_profile(), 17);
    std::set<std::string> cold_rules;
    std::set<std::string> hot_rules;
    for (int i = 0; i < 12; ++i) {
        const auto cold_resp = cold.complete(make_request(
            "generate_solutions",
            {{"error_category", "danglingpointer"}, {"count", "2"}}, kBuggy, 0.1,
            {}, {}, static_cast<std::uint64_t>(i)));
        const auto hot_resp = hot.complete(make_request(
            "generate_solutions",
            {{"error_category", "danglingpointer"}, {"count", "2"}}, kBuggy, 0.9,
            {}, {}, static_cast<std::uint64_t>(i)));
        for (const auto& id : parse_solution_lines(cold_resp.content)) {
            cold_rules.insert(id);
        }
        for (const auto& id : parse_solution_lines(hot_resp.content)) {
            hot_rules.insert(id);
        }
    }
    EXPECT_LE(cold_rules.size(), hot_rules.size());
}

TEST(SimLlmTest, ApplyRuleProducesParseableCode) {
    SimLLM llm(gpt4_profile(), 19);
    const auto response = llm.complete(make_request(
        "apply_rule",
        {{"rule", "move-dealloc-to-end"}, {"error_category", "danglingpointer"}},
        kBuggy, 0.1));
    const std::string code = parse_code_block(response.content);
    std::string error;
    EXPECT_TRUE(lang::try_parse(code, &error).has_value()) << error << code;
}

TEST(SimLlmTest, ApplyRuleAtLowTempUsuallyFixes) {
    // With gpt-4 at temperature 0.1 and the correct rule named, the patch
    // should usually pass MiriLite.
    SimLLM llm(gpt4_profile(), 23);
    miri::MiriLite miri;
    const auto* ub_case = corpus().find("danglingpointer/use_after_free_0");
    int fixed = 0;
    const int trials = 20;
    for (int i = 0; i < trials; ++i) {
        const auto response = llm.complete(make_request(
            "apply_rule",
            {{"rule", "move-dealloc-to-end"}, {"error_category", "danglingpointer"}},
            ub_case->buggy_source, 0.1, {}, {}, static_cast<std::uint64_t>(i)));
        const auto report =
            miri.test_source(parse_code_block(response.content), ub_case->inputs);
        if (report.passed()) ++fixed;
    }
    EXPECT_GE(fixed, trials * 7 / 10);
}

TEST(SimLlmTest, HighTemperatureCorruptsMoreOften) {
    const auto* ub_case = corpus().find("danglingpointer/use_after_free_0");
    miri::MiriLite miri;
    // Sample the marginal corruption rate across independent sessions:
    // within one session a low-temperature model mostly repeats itself
    // (retry fixation), so per-session retries are not independent draws.
    auto count_failures = [&](double temperature) {
        int failures = 0;
        for (int i = 0; i < 30; ++i) {
            SimLLM llm(gpt35_profile(), 29 + static_cast<std::uint64_t>(i));
            const auto response = llm.complete(make_request(
                "apply_rule",
                {{"rule", "move-dealloc-to-end"},
                 {"error_category", "danglingpointer"}},
                ub_case->buggy_source, temperature));
            const auto report = miri.test_source(
                parse_code_block(response.content), ub_case->inputs);
            if (!report.passed()) ++failures;
        }
        return failures;
    };
    EXPECT_LE(count_failures(0.1), count_failures(0.9));
}

TEST(SimLlmTest, InapplicableRuleMayImprovise) {
    SimLLM llm(gpt35_profile(), 31);
    bool saw_unchanged = false;
    bool saw_improvised = false;
    for (int i = 0; i < 30; ++i) {
        const auto response = llm.complete(make_request(
            "apply_rule",
            {{"rule", "guard-divisor"}, {"error_category", "danglingpointer"}},
            kBuggy, 0.9, {}, {}, static_cast<std::uint64_t>(i)));
        if (response.content.find("code unchanged") != std::string::npos) {
            saw_unchanged = true;
        }
        if (response.content.find("improvised") != std::string::npos) {
            saw_improvised = true;
        }
    }
    EXPECT_TRUE(saw_unchanged || saw_improvised);
}

TEST(SimLlmTest, LatencyScalesWithModel) {
    SimLLM fast(gpt35_profile(), 37);
    SimLLM slow(gpt_o1_profile(), 37);
    const auto request = make_request(
        "extract_features", {{"error_category", "alloc"}}, kBuggy);
    EXPECT_LT(fast.complete(request).latency_ms, slow.complete(request).latency_ms);
}

TEST(SimLlmTest, ExtractAstReturnsProgram) {
    SimLLM llm(gpt4_profile(), 41);
    const auto response =
        llm.complete(make_request("extract_ast", {}, kBuggy, 0.1));
    const std::string code = parse_code_block(response.content);
    EXPECT_TRUE(lang::try_parse(code).has_value());
}

TEST(ProfileTest, CompetenceOrdering) {
    const auto category = miri::UbCategory::DanglingPointer;
    const double weak = gpt35_profile().effective_competence(category, false,
                                                             false, false, 1);
    const double strong =
        gpt4_profile().effective_competence(category, false, false, false, 1);
    EXPECT_LT(weak, strong);
    // Scaffolding (features+exemplars) lifts the weak model substantially.
    const double lifted = gpt35_profile().effective_competence(category, true,
                                                               true, true, 1);
    EXPECT_GT(lifted, weak + 0.2);
}

TEST(ProfileTest, O1WeakOnPanic) {
    const double o1_panic = gpt_o1_profile().effective_competence(
        miri::UbCategory::Panic, true, false, false, 1);
    const double gpt4_panic = gpt4_profile().effective_competence(
        miri::UbCategory::Panic, true, false, false, 1);
    EXPECT_LT(o1_panic, gpt4_panic);
}

TEST(ProfileTest, HallucinationGrowsWithTemperature) {
    const auto& profile = gpt4_profile();
    EXPECT_LT(profile.hallucination_rate(0.1), profile.hallucination_rate(0.5));
    EXPECT_LT(profile.hallucination_rate(0.5), profile.hallucination_rate(0.9));
}

TEST(HallucinateTest, MutationChangesProgram) {
    auto program = lang::try_parse(kBuggy);
    ASSERT_TRUE(program.has_value());
    support::Rng rng(99);
    lang::Program copy = program->clone();
    const auto kind = mutate_program(copy, rng);
    ASSERT_TRUE(kind.has_value());
    EXPECT_FALSE(lang::equals(*program, copy));
}

TEST(HallucinateTest, DeterministicGivenSeed) {
    auto program = lang::try_parse(kBuggy);
    support::Rng rng1(5);
    support::Rng rng2(5);
    lang::Program a = program->clone();
    lang::Program b = program->clone();
    mutate_program(a, rng1);
    mutate_program(b, rng2);
    EXPECT_TRUE(lang::equals(a, b));
}

}  // namespace
}  // namespace rustbrain::llm
