// Static pre-screener soundness (screen/screen.hpp).
//
// The load-bearing contract: ProvenSafe must never contradict MiriLite —
// not in pass/fail, not in outputs, not in step counts (the synthesized
// report replaces interpretation byte for byte). LikelyUB must name a
// category MiriLite actually finds. Unknown is always sound. Asserted
// over the full hand-written corpus plus a 560-case forged corpus (the
// miri_lower_test observational-identity pattern), then end to end:
// every registry engine sweeps bit-identically screen-on vs screen-off,
// serial and 4-worker. Plus: unsupported constructs degrade to Unknown
// (never throw), and the Oracle's screening tier synthesizes/replays
// verdicts the way its header promises.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/engine_registry.hpp"
#include "dataset/corpus.hpp"
#include "gen/forge.hpp"
#include "kb/seed.hpp"
#include "miri/mirilite.hpp"
#include "screen/screen.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::screen {
namespace {

using Inputs = std::vector<std::vector<std::int64_t>>;

struct Observed {
    bool compiled_ok = false;
    ScreenResult screened;
    miri::MiriReport miri;
};

/// Screen `source` and interpret it through a screening-off Oracle (the
/// ground truth; bit-identical to MiriLite per verify_oracle_test).
Observed observe(const std::string& source, const Inputs& inputs,
                 miri::InterpLimits limits = {}, ScreenOptions options = {}) {
    verify::OracleOptions oracle_options;
    oracle_options.limits = limits;
    oracle_options.caching = false;
    oracle_options.screening = false;
    const verify::Oracle oracle(oracle_options);

    Observed out;
    const auto compiled = oracle.compile(source);
    out.compiled_ok = compiled->ok();
    if (!out.compiled_ok) return out;
    out.screened = screen_program(compiled->program, compiled->lowering,
                                  inputs, limits, options);
    out.miri = oracle.test_source(source, inputs);
    return out;
}

/// The soundness contract for one already-observed (source, inputs) pair.
void expect_sound_observed(const Observed& o, const std::string& source) {
    if (!o.compiled_ok) return;  // nothing to screen
    switch (o.screened.verdict.kind) {
        case VerdictKind::ProvenSafe:
            EXPECT_TRUE(o.miri.passed()) << source;
            EXPECT_EQ(o.screened.report.outputs, o.miri.outputs) << source;
            EXPECT_EQ(o.screened.report.total_steps, o.miri.total_steps)
                << source;
            EXPECT_TRUE(o.screened.report.findings.empty()) << source;
            EXPECT_DOUBLE_EQ(o.screened.verdict.confidence, 1.0);
            break;
        case VerdictKind::LikelyUB:
            EXPECT_FALSE(o.miri.passed()) << source;
            EXPECT_TRUE(o.miri.has_category(o.screened.verdict.category))
                << source << "\nscreener pinned "
                << miri::ub_category_label(o.screened.verdict.category)
                << " (" << o.screened.verdict.detail << ")";
            break;
        case VerdictKind::Unknown:
            break;  // always sound
    }
}

void expect_sound(const std::string& source, const Inputs& inputs,
                  miri::InterpLimits limits = {}) {
    expect_sound_observed(observe(source, inputs, limits), source);
}

// --- soundness over the corpora ---------------------------------------------

TEST(ScreenSoundnessTest, HandWrittenCorpusIsSound) {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        SCOPED_TRACE(ub_case.id);
        expect_sound(ub_case.buggy_source, ub_case.inputs);
        expect_sound(ub_case.reference_fix, ub_case.inputs);
    }
}

TEST(ScreenSoundnessTest, ForgedCorpusOf560CasesIsSound) {
    gen::ForgeOptions options;
    options.seed = 11;
    options.count = 560;
    verify::OracleOptions oracle_options;
    oracle_options.cache = std::make_shared<verify::VerifyCache>();
    const verify::Oracle forge_oracle(std::move(oracle_options));
    options.oracle = &forge_oracle;
    const dataset::Corpus corpus = gen::forge_corpus(options);
    ASSERT_EQ(corpus.cases().size(), 560u);

    std::size_t proven_safe = 0;
    std::size_t likely_ub = 0;
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        SCOPED_TRACE(ub_case.id);
        const Observed buggy = observe(ub_case.buggy_source, ub_case.inputs);
        expect_sound_observed(buggy, ub_case.buggy_source);
        const Observed fix = observe(ub_case.reference_fix, ub_case.inputs);
        expect_sound_observed(fix, ub_case.reference_fix);
        proven_safe +=
            fix.screened.verdict.kind == VerdictKind::ProvenSafe ? 1 : 0;
        likely_ub +=
            buggy.screened.verdict.kind == VerdictKind::LikelyUB ? 1 : 0;
    }
    // The screener must be useful, not just sound: a decisive share of the
    // forged corpus screens to a definite verdict.
    EXPECT_GT(proven_safe, 0u);
    EXPECT_GT(likely_ub, 0u);
}

// --- end-to-end bit-identity -------------------------------------------------

std::shared_ptr<verify::Oracle> oracle_with_screening(bool screening) {
    verify::OracleOptions options;
    options.cache = std::make_shared<verify::VerifyCache>();
    options.caching = true;
    options.screening = screening;
    return std::make_shared<verify::Oracle>(std::move(options));
}

/// CaseResult equality over every behavior field. The screen_* counters
/// are deliberately absent: they are pure observability and legitimately
/// differ screen-on vs screen-off.
void expect_identical(const core::BatchReport& a, const core::BatchReport& b) {
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const core::CaseResult& x = a.results[i];
        const core::CaseResult& y = b.results[i];
        EXPECT_EQ(x.case_id, y.case_id);
        EXPECT_EQ(x.pass, y.pass) << x.case_id;
        EXPECT_EQ(x.exec, y.exec) << x.case_id;
        EXPECT_EQ(x.time_ms, y.time_ms) << x.case_id;
        EXPECT_EQ(x.time_breakdown, y.time_breakdown) << x.case_id;
        EXPECT_EQ(x.final_source, y.final_source) << x.case_id;
        EXPECT_EQ(x.winning_rule, y.winning_rule) << x.case_id;
        EXPECT_EQ(x.llm_calls, y.llm_calls) << x.case_id;
        EXPECT_EQ(x.solutions_generated, y.solutions_generated) << x.case_id;
        EXPECT_EQ(x.steps_executed, y.steps_executed) << x.case_id;
        EXPECT_EQ(x.rollbacks, y.rollbacks) << x.case_id;
        EXPECT_EQ(x.thinking_switches, y.thinking_switches) << x.case_id;
        EXPECT_EQ(x.escalations, y.escalations) << x.case_id;
        EXPECT_EQ(x.early_stops, y.early_stops) << x.case_id;
        EXPECT_EQ(x.attempts_skipped, y.attempts_skipped) << x.case_id;
        EXPECT_EQ(x.error_trajectory, y.error_trajectory) << x.case_id;
    }
    EXPECT_EQ(a.clock.now_ms(), b.clock.now_ms());
    EXPECT_EQ(a.clock.breakdown(), b.clock.breakdown());
}

TEST(ScreenSoundnessTest, EveryRegistryEngineSweepsBitIdenticallyScreenOnOrOff) {
    const dataset::Corpus& corpus = []() -> const dataset::Corpus& {
        static const dataset::Corpus c = dataset::Corpus::standard();
        return c;
    }();
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(corpus, kbase);

    for (const std::string& engine_id : core::EngineRegistry::builtin().ids()) {
        SCOPED_TRACE(engine_id);
        core::EngineBuildContext off_context;
        off_context.knowledge_base = &kbase;
        off_context.oracle = oracle_with_screening(false);
        core::EngineBuildContext on_context = off_context;
        on_context.oracle = oracle_with_screening(true);
        core::EngineBuildContext parallel_context = off_context;
        parallel_context.oracle = oracle_with_screening(true);

        const core::BatchRunner off(engine_id, {}, off_context,
                                    core::BatchOptions{1});
        const core::BatchRunner on(engine_id, {}, on_context,
                                   core::BatchOptions{1});
        // Screen-on with 4 workers sharing one oracle: the screening tier
        // must stay deterministic under the report cache's thread races.
        const core::BatchRunner on_parallel(engine_id, {}, parallel_context,
                                            core::BatchOptions{4});

        const core::BatchReport baseline = off.run(corpus);
        expect_identical(baseline, on.run(corpus));
        expect_identical(baseline, on_parallel.run(corpus));
        // The screen-on sweep actually screened (not vacuous identity) —
        // except for expert, which never verifies at all.
        if (engine_id != "expert") {
            EXPECT_GT(on_context.oracle->screen_stats().screens, 0u);
        }
    }
}

// --- error paths: degrade to Unknown, never throw ----------------------------

ScreenVerdict screen_only(const std::string& source, const Inputs& inputs = {},
                          miri::InterpLimits limits = {},
                          ScreenOptions options = {}) {
    const Observed o = observe(source, inputs, limits, options);
    EXPECT_TRUE(o.compiled_ok) << source;
    return o.screened.verdict;
}

TEST(ScreenSoundnessTest, UnsupportedConstructsDegradeToUnknown) {
    const std::vector<std::string> out_of_domain = {
        // references / borrows / deref
        "fn main() { let x = 5; let p = &x as *const i32; "
        "unsafe { let y = *p; } }",
        // raw-pointer casts (no deref, still out of the modelled domain)
        "fn main() { let p = 4096 as *const i32; }",
        // heap intrinsics
        "fn main() { unsafe { let p = alloc(8, 8); dealloc(p, 8, 8); } }",
        // threads
        "fn f() { } fn main() { let h = spawn(f); join(h); }",
        // mutexes
        "static mut LOCK: i64 = 0; fn main() { unsafe { LOCK = mutex_new(); "
        "mutex_lock(LOCK); mutex_unlock(LOCK); } }",
        // guaranteed tail calls
        "fn loop_fn(n: i32) -> i32 { if n <= 0 { return 0; } "
        "become loop_fn(n - 1); } fn main() { let r = loop_fn(3); }",
    };
    for (const std::string& source : out_of_domain) {
        SCOPED_TRACE(source);
        const ScreenVerdict verdict = screen_only(source);
        EXPECT_EQ(verdict.kind, VerdictKind::Unknown);
        EXPECT_DOUBLE_EQ(verdict.confidence, 0.0);
        EXPECT_FALSE(verdict.detail.empty());
    }
}

TEST(ScreenSoundnessTest, DeepRecursionIsADefiniteStackOverflow) {
    const std::string source =
        "fn spin(n: i64) -> i64 {\n    return spin(n + 1);\n}\n"
        "fn main() {\n    print_int(spin(0));\n}\n";
    const ScreenVerdict verdict = screen_only(source);
    EXPECT_EQ(verdict.kind, VerdictKind::LikelyUB);
    EXPECT_EQ(verdict.category, miri::UbCategory::Panic);
    EXPECT_NE(verdict.detail.find("stack overflow"), std::string::npos);
    expect_sound(source, {});
}

TEST(ScreenSoundnessTest, StepLimitExhaustionIsADefinitePanic) {
    miri::InterpLimits limits;
    limits.max_steps = 100;
    const std::string source =
        "fn main() {\n    let mut i = 0;\n    while i >= 0 {\n"
        "        i = i + 1;\n    }\n}\n";
    const ScreenVerdict verdict = screen_only(source, {}, limits);
    EXPECT_EQ(verdict.kind, VerdictKind::LikelyUB);
    EXPECT_EQ(verdict.category, miri::UbCategory::Panic);
    EXPECT_NE(verdict.detail.find("step limit exceeded"), std::string::npos);
    expect_sound(source, {}, limits);
}

TEST(ScreenSoundnessTest, OpBudgetExhaustionDegradesToUnknown) {
    ScreenOptions options;
    options.max_ops = 50;  // far below the honest cost of the loop
    const std::string source =
        "fn main() {\n    let mut i = 0;\n    while i < 1000 {\n"
        "        i = i + 1;\n    }\n    print_int(i);\n}\n";
    const ScreenVerdict verdict = screen_only(source, {}, {}, options);
    EXPECT_EQ(verdict.kind, VerdictKind::Unknown);
    EXPECT_NE(verdict.detail.find("budget"), std::string::npos);
    EXPECT_LE(verdict.ops, options.max_ops + 1);
}

// --- the Oracle's screening tier ---------------------------------------------

TEST(ScreenSoundnessTest, ProvenSafeSynthesisSkipsInterpretationExactly) {
    const std::string source = "fn main() {\n    print_int(6 * 7);\n}\n";
    const auto on = oracle_with_screening(true);
    const auto off = oracle_with_screening(false);

    verify::VerifyOutcome outcome;
    const miri::MiriReport synthesized = on->test_source(source, {{}}, &outcome);
    EXPECT_TRUE(outcome.screened);
    EXPECT_EQ(outcome.screen_verdict.kind, VerdictKind::ProvenSafe);
    EXPECT_TRUE(outcome.screen_synthesized);

    const miri::MiriReport interpreted = off->test_source(source, {{}});
    EXPECT_EQ(synthesized.outputs, interpreted.outputs);
    EXPECT_EQ(synthesized.total_steps, interpreted.total_steps);
    EXPECT_TRUE(synthesized.findings.empty());

    const verify::ScreenStats stats = on->screen_stats();
    EXPECT_EQ(stats.screens, 1u);
    EXPECT_EQ(stats.proven_safe, 1u);
    EXPECT_EQ(stats.synthesized, 1u);
    EXPECT_GT(stats.ops, 0u);
}

TEST(ScreenSoundnessTest, ReportCacheHitsReplayTheStoredVerdict) {
    const std::string source = "fn main() {\n    print_int(1 / 0);\n}\n";
    const auto oracle = oracle_with_screening(true);

    verify::VerifyOutcome first;
    (void)oracle->test_source(source, {{}}, &first);
    EXPECT_FALSE(first.report_cached);
    EXPECT_TRUE(first.screened);
    EXPECT_EQ(first.screen_verdict.kind, VerdictKind::LikelyUB);
    EXPECT_EQ(first.screen_verdict.category, miri::UbCategory::Panic);

    verify::VerifyOutcome second;
    (void)oracle->test_source(source, {{}}, &second);
    EXPECT_TRUE(second.report_cached);
    EXPECT_TRUE(second.screened);
    EXPECT_EQ(second.screen_verdict.kind, first.screen_verdict.kind);
    EXPECT_EQ(second.screen_verdict.category, first.screen_verdict.category);
    EXPECT_FALSE(second.screen_synthesized);
    // Replay, not re-screen: exactly one live screening happened.
    EXPECT_EQ(oracle->screen_stats().screens, 1u);

    // A screening-off oracle sharing the same cache must stay fully inert:
    // it serves the memoized report but never surfaces the stored verdict.
    verify::OracleOptions off_options;
    off_options.cache = oracle->cache();
    off_options.caching = true;  // pinned: the test is about the shared cache
    off_options.screening = false;
    const verify::Oracle off(std::move(off_options));
    verify::VerifyOutcome inert;
    (void)off.test_source(source, {{}}, &inert);
    EXPECT_TRUE(inert.report_cached);
    EXPECT_FALSE(inert.screened);
}

// --- the constraint domain ---------------------------------------------------

TEST(ScreenSoundnessTest, IntervalLatticeBehaves) {
    const Interval five = Interval::singleton(5);
    EXPECT_TRUE(five.is_singleton());
    EXPECT_TRUE(five.contains(5));
    EXPECT_FALSE(five.contains(6));

    const Interval joined = five.join(Interval::singleton(-3));
    EXPECT_FALSE(joined.is_singleton());
    EXPECT_TRUE(joined.contains(0));
    EXPECT_TRUE(five.within(joined));
    EXPECT_FALSE(joined.within(five));

    const Interval i8 = Interval::type_range(1, /*is_signed=*/true);
    EXPECT_EQ(i8.lo, -128);
    EXPECT_EQ(i8.hi, 127);
    const Interval u16 = Interval::type_range(2, /*is_signed=*/false);
    EXPECT_EQ(u16.lo, 0);
    EXPECT_EQ(u16.hi, 65535);
    EXPECT_TRUE(i8.within(Interval::full()));
}

}  // namespace
}  // namespace rustbrain::screen
