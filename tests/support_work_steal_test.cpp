// support::WorkStealScheduler — per-worker deques over ThreadPool: every
// submitted task runs exactly once, idle workers steal from loaded
// siblings, task exceptions surface on wait_idle, and the scheduler stays
// serviceable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"
#include "support/work_steal.hpp"

namespace rustbrain::support {
namespace {

TEST(WorkStealSchedulerTest, EveryTaskRunsExactlyOnce) {
    ThreadPool pool(4);
    WorkStealScheduler scheduler(pool);
    constexpr int kTasks = 500;
    std::atomic<int> runs{0};
    std::vector<std::atomic<int>> per_task(kTasks);
    for (auto& counter : per_task) counter = 0;
    for (int i = 0; i < kTasks; ++i) {
        scheduler.submit([&, i](std::size_t) {
            ++per_task[i];
            ++runs;
        });
    }
    scheduler.wait_idle();
    EXPECT_EQ(runs.load(), kTasks);
    for (int i = 0; i < kTasks; ++i) {
        EXPECT_EQ(per_task[i].load(), 1) << "task " << i;
    }
    const WorkStealScheduler::Stats stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(std::accumulate(stats.executed.begin(), stats.executed.end(),
                              std::uint64_t{0}),
              static_cast<std::uint64_t>(kTasks));
}

TEST(WorkStealSchedulerTest, IdleWorkerStealsFromALoadedSibling) {
    ThreadPool pool(2);
    WorkStealScheduler scheduler(pool);

    // Occupy one worker with a gate; only once it is demonstrably running
    // (not merely queued) pile tasks onto both deques: round-robin puts
    // half the backlog on the blocked worker's deque, which the free
    // worker can only reach by stealing.
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::atomic<bool> gate_entered{false};
    std::atomic<int> done{0};
    scheduler.submit([&](std::size_t) {
        gate_entered = true;
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
        ++done;
    });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!gate_entered.load() &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(gate_entered.load());
    for (int i = 0; i < 16; ++i) {
        scheduler.submit([&](std::size_t) { ++done; });
    }
    // The 16 follow-up tasks can only run on the one unblocked worker, and
    // half of them landed on the blocked worker's deque.
    while (done.load() < 16 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(done.load(), 16);
    {
        const std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    scheduler.wait_idle();
    EXPECT_EQ(done.load(), 17);
    EXPECT_GT(scheduler.stats().steals, 0u);
}

TEST(WorkStealSchedulerTest, TaskExceptionSurfacesOnWaitIdle) {
    ThreadPool pool(2);
    WorkStealScheduler scheduler(pool);
    std::atomic<int> survivors{0};
    scheduler.submit(
        [](std::size_t) { throw std::runtime_error("task failed"); });
    for (int i = 0; i < 8; ++i) {
        scheduler.submit([&](std::size_t) { ++survivors; });
    }
    EXPECT_THROW(scheduler.wait_idle(), std::runtime_error);
    // The failure neither killed the workers nor wedged the queue.
    EXPECT_EQ(survivors.load(), 8);
    scheduler.submit([&](std::size_t) { ++survivors; });
    scheduler.wait_idle();  // error already consumed: no rethrow
    EXPECT_EQ(survivors.load(), 9);
}

TEST(WorkStealSchedulerTest, WorkerIdsAreWithinRange) {
    ThreadPool pool(3);
    WorkStealScheduler scheduler(pool);
    std::mutex mutex;
    std::set<std::size_t> seen;
    for (int i = 0; i < 64; ++i) {
        scheduler.submit([&](std::size_t worker) {
            const std::lock_guard<std::mutex> lock(mutex);
            seen.insert(worker);
        });
    }
    scheduler.wait_idle();
    ASSERT_FALSE(seen.empty());
    EXPECT_LT(*seen.rbegin(), 3u);
}

TEST(WorkStealSchedulerTest, WaitIdleOnEmptySchedulerReturnsImmediately) {
    ThreadPool pool(2);
    WorkStealScheduler scheduler(pool);
    scheduler.wait_idle();
    EXPECT_EQ(scheduler.stats().submitted, 0u);
}

}  // namespace
}  // namespace rustbrain::support
