// Corpus serialization: byte-exact round trips over the standard and forged
// corpora, file save/load, and the malformed-input error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "gen/corpus_io.hpp"
#include "gen/forge.hpp"

namespace rustbrain::gen {
namespace {

void expect_cases_equal(const dataset::Corpus& a, const dataset::Corpus& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const dataset::UbCase& x = a.cases()[i];
        const dataset::UbCase& y = b.cases()[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.category, y.category);
        EXPECT_EQ(x.intended_strategy, y.intended_strategy);
        EXPECT_EQ(x.difficulty, y.difficulty);
        EXPECT_EQ(x.inputs, y.inputs);
        EXPECT_EQ(x.buggy_source, y.buggy_source);
        EXPECT_EQ(x.reference_fix, y.reference_fix);
    }
}

TEST(CorpusIoTest, StandardCorpusRoundTripsByteExactly) {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    const std::string text = corpus_to_string(corpus);
    const dataset::Corpus reloaded = corpus_from_string(text);
    expect_cases_equal(corpus, reloaded);
    EXPECT_EQ(corpus_to_string(reloaded), text);
}

TEST(CorpusIoTest, ForgedCorpusRoundTripsByteExactly) {
    ForgeOptions options;
    options.seed = 99;
    options.count = 48;
    const dataset::Corpus corpus = forge_corpus(options);
    const std::string text = corpus_to_string(corpus);
    const dataset::Corpus reloaded = corpus_from_string(text);
    expect_cases_equal(corpus, reloaded);
    EXPECT_EQ(corpus_to_string(reloaded), text);
}

TEST(CorpusIoTest, EmptyCorpusRoundTrips) {
    const dataset::Corpus empty(std::vector<dataset::UbCase>{});
    const std::string text = corpus_to_string(empty);
    EXPECT_EQ(corpus_from_string(text).size(), 0u);
}

TEST(CorpusIoTest, SaveThenLoadFileRoundTrips) {
    ForgeOptions options;
    options.seed = 5;
    options.count = 16;
    const dataset::Corpus corpus = forge_corpus(options);
    const std::string path =
        ::testing::TempDir() + "/corpus_io_roundtrip.rbc";
    save_corpus(corpus, path);
    const dataset::Corpus reloaded = load_corpus(path);
    expect_cases_equal(corpus, reloaded);
    EXPECT_EQ(corpus_to_string(reloaded), corpus_to_string(corpus));
    std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadMissingFileThrowsWithPath) {
    try {
        load_corpus("/no/such/dir/corpus.rbc");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("/no/such/dir/corpus.rbc"),
                  std::string::npos);
    }
}

TEST(CorpusIoTest, BadMagicThrows) {
    EXPECT_THROW(corpus_from_string("totally-not-a-corpus v1\ncases 0\n"),
                 std::runtime_error);
}

TEST(CorpusIoTest, UnsupportedVersionThrows) {
    try {
        corpus_from_string("rustbrain-corpus v999\ncases 0\n");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("version"),
                  std::string::npos);
    }
}

TEST(CorpusIoTest, MalformedInputsThrow) {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    std::string text = corpus_to_string(corpus);

    // Truncation: cut the file mid-case.
    EXPECT_THROW(corpus_from_string(text.substr(0, text.size() / 2)),
                 std::runtime_error);

    // Unknown category label.
    std::string bad_category = text;
    const std::size_t cat_pos = bad_category.find("category alloc");
    ASSERT_NE(cat_pos, std::string::npos);
    bad_category.replace(cat_pos, 14, "category blorp");
    EXPECT_THROW(corpus_from_string(bad_category), std::runtime_error);

    // Unknown strategy name.
    std::string bad_strategy = text;
    const std::size_t strat_pos = bad_strategy.find("strategy ");
    ASSERT_NE(strat_pos, std::string::npos);
    bad_strategy.insert(strat_pos + 9, "x");
    EXPECT_THROW(corpus_from_string(bad_strategy), std::runtime_error);

    // A wrong byte count desynchronizes the source block.
    std::string bad_count = text;
    const std::size_t buggy_pos = bad_count.find("buggy ");
    ASSERT_NE(buggy_pos, std::string::npos);
    bad_count.insert(buggy_pos + 6, "1");  // inflate the count tenfold
    EXPECT_THROW(corpus_from_string(bad_count), std::runtime_error);

    // Declared case count larger than the actual content.
    std::string bad_cases = text;
    const std::size_t cases_pos = bad_cases.find("cases ");
    ASSERT_NE(cases_pos, std::string::npos);
    bad_cases.insert(cases_pos + 6, "9");
    EXPECT_THROW(corpus_from_string(bad_cases), std::runtime_error);

    // A corrupt header count must be rejected up front, not fed to a
    // vector reservation.
    EXPECT_THROW(
        corpus_from_string("rustbrain-corpus v1\ncases 1099511627776\n"),
        std::runtime_error);

    // A near-UINT64_MAX source byte count must not wrap the bounds check.
    std::string huge_block = text;
    const std::size_t block_pos = huge_block.find("buggy ");
    ASSERT_NE(block_pos, std::string::npos);
    const std::size_t block_end = huge_block.find('\n', block_pos);
    huge_block.replace(block_pos, block_end - block_pos,
                       "buggy 18446744073709551615");
    try {
        corpus_from_string(huge_block);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("runs past end"),
                  std::string::npos)
            << error.what();
    }
}

TEST(CorpusIoTest, UnserializableCasesRejectedAtSaveTime) {
    // What load_corpus would refuse to read must be refused at write time.
    dataset::UbCase newline_id;
    newline_id.id = "bad\nid";
    EXPECT_THROW(corpus_to_string(
                     dataset::Corpus(std::vector<dataset::UbCase>{newline_id})),
                 std::invalid_argument);

    dataset::UbCase bad_difficulty;
    bad_difficulty.id = "bad/difficulty";
    bad_difficulty.difficulty = 0;
    EXPECT_THROW(
        corpus_to_string(
            dataset::Corpus(std::vector<dataset::UbCase>{bad_difficulty})),
        std::invalid_argument);
}

TEST(CorpusIoTest, DuplicateIdsRejected) {
    dataset::UbCase c;
    c.id = "dup/case_0";
    c.category = miri::UbCategory::Panic;
    c.buggy_source = "fn main() {\n}\n";
    c.reference_fix = "fn main() {\n}\n";
    c.inputs = {{}};
    std::vector<dataset::UbCase> twice = {c, c};
    // Both the Corpus constructor and (through it) the loader reject dups.
    EXPECT_THROW(dataset::Corpus{std::move(twice)}, std::invalid_argument);

    const dataset::Corpus single(std::vector<dataset::UbCase>{c});
    std::string text = corpus_to_string(single);
    // Duplicate the whole case block and fix the declared count.
    const std::size_t block = text.find("\ncase ");
    ASSERT_NE(block, std::string::npos);
    text += "\n" + text.substr(block + 1);
    const std::size_t count_pos = text.find("cases 1");
    ASSERT_NE(count_pos, std::string::npos);
    text.replace(count_pos, 7, "cases 2");
    EXPECT_THROW(corpus_from_string(text), std::invalid_argument);
}

TEST(CorpusIoTest, SourcesWithoutTrailingNewlineRoundTrip) {
    // The byte-counted block format must not depend on line conventions.
    dataset::UbCase c;
    c.id = "odd/no_newline";
    c.category = miri::UbCategory::Panic;
    c.buggy_source = "fn main() {\n    print_int(1);\n}";   // no trailing \n
    c.reference_fix = "fn main() {\n    print_int(2);\n}";  // no trailing \n
    c.inputs = {{1, 2}, {}};
    c.difficulty = 3;
    c.intended_strategy = dataset::FixStrategy::AssertionGuard;
    const dataset::Corpus corpus(std::vector<dataset::UbCase>{c});
    const dataset::Corpus reloaded =
        corpus_from_string(corpus_to_string(corpus));
    expect_cases_equal(corpus, reloaded);
}

}  // namespace
}  // namespace rustbrain::gen
