#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "baselines/expert_model.hpp"
#include "baselines/fixed_pipeline.hpp"
#include "baselines/standalone_llm.hpp"
#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"
#include "llm/backend.hpp"

namespace rustbrain::baselines {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

TEST(ExpertModelTest, AlwaysSucceedsWithCategoryTimes) {
    ExpertModelRepair expert(42);
    for (const auto& ub_case : corpus().cases()) {
        const core::CaseResult result = expert.repair(ub_case);
        EXPECT_TRUE(result.pass);
        EXPECT_TRUE(result.exec);
        const double mean_ms =
            ExpertModelRepair::category_mean_seconds(ub_case.category) * 1000.0;
        EXPECT_GT(result.time_ms, mean_ms * 0.5);
        EXPECT_LT(result.time_ms, mean_ms * 2.0);
    }
}

TEST(ExpertModelTest, DeterministicPerSeed) {
    ExpertModelRepair a(7);
    ExpertModelRepair b(7);
    const auto& ub_case = corpus().cases().front();
    EXPECT_DOUBLE_EQ(a.repair(ub_case).time_ms, b.repair(ub_case).time_ms);
}

TEST(ExpertModelTest, TableOneCalibration) {
    EXPECT_DOUBLE_EQ(ExpertModelRepair::category_mean_seconds(miri::UbCategory::FuncCall),
                     1176.0);
    EXPECT_DOUBLE_EQ(
        ExpertModelRepair::category_mean_seconds(miri::UbCategory::DanglingPointer),
        114.0);
}

TEST(StandaloneTest, WeakerThanRustBrain) {
    StandaloneLlmRepair solo({"gpt-4", 0.5, 2, 42});
    core::FeedbackStore feedback;
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(corpus(), kbase);
    core::RustBrainConfig config;
    core::RustBrain rb(config, &kbase, &feedback);

    int solo_pass = 0;
    int rb_pass = 0;
    for (const auto& ub_case : corpus().cases()) {
        solo_pass += solo.repair(ub_case).pass;
        rb_pass += rb.repair(ub_case).pass;
    }
    EXPECT_LT(solo_pass, rb_pass);
    // The paper's 25-35 point lift.
    EXPECT_GE(rb_pass - solo_pass, static_cast<int>(corpus().size() / 5));
}

TEST(StandaloneTest, ModelOrderingHolds) {
    StandaloneLlmRepair weak({"gpt-3.5", 0.5, 2, 42});
    StandaloneLlmRepair strong({"gpt-4", 0.5, 2, 42});
    int weak_pass = 0;
    int strong_pass = 0;
    for (const auto& ub_case : corpus().cases()) {
        weak_pass += weak.repair(ub_case).pass;
        strong_pass += strong.repair(ub_case).pass;
    }
    EXPECT_LT(weak_pass, strong_pass);
}

TEST(StandaloneTest, RejectsUnknownModel) {
    EXPECT_THROW(StandaloneLlmRepair({"nope", 0.5, 2, 42}), std::invalid_argument);
}

TEST(FixedPipelineTest, RepairsSomeButTrailsRustBrain) {
    FixedPipelineRepair assistant({"gpt-4", 0.5, 2, 42});
    core::FeedbackStore feedback;
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(corpus(), kbase);
    core::RustBrainConfig config;
    core::RustBrain rb(config, &kbase, &feedback);

    int assistant_pass = 0;
    int assistant_exec = 0;
    int rb_pass = 0;
    int rb_exec = 0;
    for (const auto& ub_case : corpus().cases()) {
        const core::CaseResult a = assistant.repair(ub_case);
        const core::CaseResult b = rb.repair(ub_case);
        assistant_pass += a.pass;
        assistant_exec += a.exec;
        rb_pass += b.pass;
        rb_exec += b.exec;
    }
    EXPECT_GT(assistant_pass, 0);
    EXPECT_LT(assistant_pass, rb_pass);
    EXPECT_LT(assistant_exec, rb_exec);
    // Fig 12's structure: the exec gap is wider than the pass gap.
    EXPECT_GT((rb_exec - assistant_exec), (rb_pass - assistant_pass) / 2);
}

namespace scripted {

/// A backend that ignores the prompted rule and returns pre-scripted
/// candidates in order (echoing the prompt's code once the script runs
/// out), recording the code section of every prompt it sees. Injecting it
/// through the LlmBackend seam lets a test drive an engine into a branch
/// — here, a regression — deterministically instead of hoping a corpus
/// sweep samples one.
class ScriptedBackend final : public llm::LlmBackend {
  public:
    ScriptedBackend(std::vector<std::string> candidates,
                    std::vector<std::string>* prompted_code)
        : candidates_(std::move(candidates)), prompted_code_(prompted_code) {}

    llm::ChatResponse complete(const llm::ChatRequest& request) override {
        const llm::PromptSpec spec =
            llm::PromptSpec::parse(request.messages.front().content);
        prompted_code_->push_back(spec.code);
        const std::string body = calls_ < candidates_.size()
                                     ? candidates_[calls_]
                                     : spec.code;
        ++calls_;
        llm::ChatResponse response;
        response.content = "note: scripted\ncode:\n" + body;
        response.latency_ms = 100.0;
        return response;
    }
    [[nodiscard]] std::uint64_t calls_served() const override { return calls_; }
    [[nodiscard]] std::string description() const override { return "scripted"; }

  private:
    std::vector<std::string> candidates_;
    std::vector<std::string>* prompted_code_;
    std::uint64_t calls_ = 0;
};

}  // namespace scripted

TEST(FixedPipelineTest, FullRollbackOnRegression) {
    // A use-after-free case whose first scripted "patch" regresses: the
    // candidate branches on the input so run 0 double-frees and run 1
    // reads after free — two distinct findings where the original had one.
    // The pipeline must pay its restart-from-T0 rollback (Fig 5a) and feed
    // the ORIGINAL code, not the regressed candidate, to the next step.
    dataset::UbCase ub_case;
    ub_case.id = "scripted/regression";
    ub_case.category = miri::UbCategory::DanglingPointer;
    ub_case.buggy_source = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        dealloc(buf, 8, 8);
        print_int(*slot);
    }
}
)";
    ub_case.reference_fix = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        print_int(*slot);
        dealloc(buf, 8, 8);
    }
}
)";
    ub_case.inputs = {{0}, {1}};

    const std::string regressed = R"(fn main() {
    unsafe {
        let buf = alloc(8, 8);
        let slot = buf as *mut i64;
        *slot = 41;
        dealloc(buf, 8, 8);
        if input(0) == 0 {
            dealloc(buf, 8, 8);
        } else {
            print_int(*slot);
        }
    }
}
)";

    auto prompted_code = std::make_shared<std::vector<std::string>>();
    llm::BackendFactory factory = [&](const llm::ModelProfile&,
                                      std::uint64_t) {
        return std::make_unique<scripted::ScriptedBackend>(
            std::vector<std::string>{regressed}, prompted_code.get());
    };
    FixedPipelineRepair assistant({"gpt-4", 0.5, 2, 42}, factory);
    const core::CaseResult result = assistant.repair(ub_case);

    EXPECT_EQ(result.rollbacks, 1);
    ASSERT_GE(result.error_trajectory.size(), 2u);
    EXPECT_EQ(result.error_trajectory[0], 2u);  // the regression
    // The restart is charged in full and the next step starts from T0.
    EXPECT_GT(result.time_breakdown.at("rollback"), 0.0);
    ASSERT_GE(prompted_code->size(), 2u);
    EXPECT_EQ((*prompted_code)[1], ub_case.buggy_source);
}

TEST(FixedPipelineTest, Deterministic) {
    FixedPipelineRepair a({"gpt-4", 0.5, 2, 42});
    FixedPipelineRepair b({"gpt-4", 0.5, 2, 42});
    const auto& ub_case = corpus().cases().front();
    EXPECT_EQ(a.repair(ub_case).pass, b.repair(ub_case).pass);
    EXPECT_DOUBLE_EQ(a.repair(ub_case).time_ms, b.repair(ub_case).time_ms);
}

TEST(TimingTest, ExpertSlowerThanAllAutomated) {
    ExpertModelRepair expert(42);
    StandaloneLlmRepair solo({"gpt-4", 0.5, 2, 42});
    double expert_time = 0.0;
    double solo_time = 0.0;
    for (const auto& ub_case : corpus().cases()) {
        expert_time += expert.repair(ub_case).time_ms;
        solo_time += solo.repair(ub_case).time_ms;
    }
    // The paper's Table I: several-fold speedup for automated repair.
    EXPECT_GT(expert_time, solo_time * 3);
}

}  // namespace
}  // namespace rustbrain::baselines
