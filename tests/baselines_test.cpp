#include <gtest/gtest.h>

#include "baselines/expert_model.hpp"
#include "baselines/fixed_pipeline.hpp"
#include "baselines/standalone_llm.hpp"
#include "core/rustbrain.hpp"
#include "dataset/corpus.hpp"
#include "kb/seed.hpp"

namespace rustbrain::baselines {
namespace {

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

TEST(ExpertModelTest, AlwaysSucceedsWithCategoryTimes) {
    ExpertModel expert(42);
    for (const auto& ub_case : corpus().cases()) {
        const core::CaseResult result = expert.repair(ub_case);
        EXPECT_TRUE(result.pass);
        EXPECT_TRUE(result.exec);
        const double mean_ms =
            ExpertModel::category_mean_seconds(ub_case.category) * 1000.0;
        EXPECT_GT(result.time_ms, mean_ms * 0.5);
        EXPECT_LT(result.time_ms, mean_ms * 2.0);
    }
}

TEST(ExpertModelTest, DeterministicPerSeed) {
    ExpertModel a(7);
    ExpertModel b(7);
    const auto& ub_case = corpus().cases().front();
    EXPECT_DOUBLE_EQ(a.repair(ub_case).time_ms, b.repair(ub_case).time_ms);
}

TEST(ExpertModelTest, TableOneCalibration) {
    EXPECT_DOUBLE_EQ(ExpertModel::category_mean_seconds(miri::UbCategory::FuncCall),
                     1176.0);
    EXPECT_DOUBLE_EQ(
        ExpertModel::category_mean_seconds(miri::UbCategory::DanglingPointer),
        114.0);
}

TEST(StandaloneTest, WeakerThanRustBrain) {
    StandaloneLlmRepair solo({"gpt-4", 0.5, 2, 42});
    core::FeedbackStore feedback;
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(corpus(), kbase);
    core::RustBrainConfig config;
    core::RustBrain rb(config, &kbase, &feedback);

    int solo_pass = 0;
    int rb_pass = 0;
    for (const auto& ub_case : corpus().cases()) {
        solo_pass += solo.repair(ub_case).pass;
        rb_pass += rb.repair(ub_case).pass;
    }
    EXPECT_LT(solo_pass, rb_pass);
    // The paper's 25-35 point lift.
    EXPECT_GE(rb_pass - solo_pass, static_cast<int>(corpus().size() / 5));
}

TEST(StandaloneTest, ModelOrderingHolds) {
    StandaloneLlmRepair weak({"gpt-3.5", 0.5, 2, 42});
    StandaloneLlmRepair strong({"gpt-4", 0.5, 2, 42});
    int weak_pass = 0;
    int strong_pass = 0;
    for (const auto& ub_case : corpus().cases()) {
        weak_pass += weak.repair(ub_case).pass;
        strong_pass += strong.repair(ub_case).pass;
    }
    EXPECT_LT(weak_pass, strong_pass);
}

TEST(StandaloneTest, RejectsUnknownModel) {
    EXPECT_THROW(StandaloneLlmRepair({"nope", 0.5, 2, 42}), std::invalid_argument);
}

TEST(FixedPipelineTest, RepairsSomeButTrailsRustBrain) {
    FixedPipeline assistant({"gpt-4", 0.5, 2, 42});
    core::FeedbackStore feedback;
    kb::KnowledgeBase kbase;
    kb::seed_from_corpus(corpus(), kbase);
    core::RustBrainConfig config;
    core::RustBrain rb(config, &kbase, &feedback);

    int assistant_pass = 0;
    int assistant_exec = 0;
    int rb_pass = 0;
    int rb_exec = 0;
    for (const auto& ub_case : corpus().cases()) {
        const core::CaseResult a = assistant.repair(ub_case);
        const core::CaseResult b = rb.repair(ub_case);
        assistant_pass += a.pass;
        assistant_exec += a.exec;
        rb_pass += b.pass;
        rb_exec += b.exec;
    }
    EXPECT_GT(assistant_pass, 0);
    EXPECT_LT(assistant_pass, rb_pass);
    EXPECT_LT(assistant_exec, rb_exec);
    // Fig 12's structure: the exec gap is wider than the pass gap.
    EXPECT_GT((rb_exec - assistant_exec), (rb_pass - assistant_pass) / 2);
}

TEST(FixedPipelineTest, FullRollbackOnRegression) {
    // At high temperature with extra iterations the weak model regresses
    // (error count grows past the initial one) somewhere in the corpus and
    // the pipeline pays its restart-from-T0 rollback.
    FixedPipeline assistant({"gpt-3.5", 0.9, 6, 7});
    int rollbacks = 0;
    int steps = 0;
    for (const auto& ub_case : corpus().cases()) {
        const core::CaseResult result = assistant.repair(ub_case);
        rollbacks += result.rollbacks;
        steps += result.steps_executed;
    }
    EXPECT_GT(steps, 0);
    EXPECT_GT(rollbacks, 0);
}

TEST(FixedPipelineTest, Deterministic) {
    FixedPipeline a({"gpt-4", 0.5, 2, 42});
    FixedPipeline b({"gpt-4", 0.5, 2, 42});
    const auto& ub_case = corpus().cases().front();
    EXPECT_EQ(a.repair(ub_case).pass, b.repair(ub_case).pass);
    EXPECT_DOUBLE_EQ(a.repair(ub_case).time_ms, b.repair(ub_case).time_ms);
}

TEST(TimingTest, ExpertSlowerThanAllAutomated) {
    ExpertModel expert(42);
    StandaloneLlmRepair solo({"gpt-4", 0.5, 2, 42});
    double expert_time = 0.0;
    double solo_time = 0.0;
    for (const auto& ub_case : corpus().cases()) {
        expert_time += expert.repair(ub_case).time_ms;
        solo_time += solo.repair(ub_case).time_ms;
    }
    // The paper's Table I: several-fold speedup for automated repair.
    EXPECT_GT(expert_time, solo_time * 3);
}

}  // namespace
}  // namespace rustbrain::baselines
