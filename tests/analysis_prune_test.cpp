// Algorithm 1 invariants: unsafe statements always survive, pruned node
// count never exceeds the original, irrelevant context disappears.
#include <gtest/gtest.h>

#include "analysis/prune.hpp"
#include "analysis/walk.hpp"
#include "dataset/corpus.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace rustbrain::analysis {
namespace {

lang::Program parse(const std::string& source) {
    auto program = lang::try_parse(source);
    EXPECT_TRUE(program.has_value());
    return program ? std::move(*program) : lang::Program{};
}

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

int count_unsafe_stmts(const lang::Program& program) {
    int count = 0;
    WalkCallbacks callbacks;
    callbacks.on_stmt = [&](const lang::Stmt& stmt, bool) {
        if (stmt.kind == lang::StmtKind::Unsafe) ++count;
    };
    walk_program(program, callbacks);
    return count;
}

TEST(PruneTest, DropsIrrelevantStatements) {
    const auto program = parse(R"(
fn main() {
    let noise1 = 1;
    let noise2 = noise1 + 2;
    print_int(noise2 as i64);
    let x = 5;
    let p = &x as *const i32;
    unsafe {
        print_int(*p as i64);
    }
})");
    PruneStats stats;
    const lang::Program pruned = prune_ast(program, &stats);
    const std::string printed = lang::print_program(pruned);
    EXPECT_EQ(printed.find("noise1"), std::string::npos);
    EXPECT_EQ(printed.find("noise2"), std::string::npos);
    EXPECT_NE(printed.find("unsafe"), std::string::npos);
    EXPECT_NE(printed.find("let x"), std::string::npos);  // dependency kept
    EXPECT_LT(stats.pruned_nodes, stats.original_nodes);
}

TEST(PruneTest, KeepsUnsafeFunctionsWhole) {
    const auto program = parse(R"(
unsafe fn danger(p: *const i32) -> i32 {
    let tmp = 1;
    return *p + tmp;
}
fn main() {
    let x = 5;
    unsafe {
        let v = danger(&x as *const i32);
    }
})");
    const lang::Program pruned = prune_ast(program);
    const lang::FnItem* danger = pruned.find_function("danger");
    ASSERT_NE(danger, nullptr);
    EXPECT_EQ(danger->body.statements.size(), 2u);
}

TEST(PruneTest, ProgramWithoutUnsafeShrinksToSkeleton) {
    const auto program = parse(R"(
fn main() {
    let a = 1;
    print_int(a as i64);
})");
    const lang::Program pruned = prune_ast(program);
    // main is kept (entry point) but its body has no unsafe-relevant code.
    ASSERT_NE(pruned.find_function("main"), nullptr);
    EXPECT_TRUE(pruned.find_function("main")->body.statements.empty());
}

TEST(PruneTest, KeepsMutableStatics) {
    const auto program = parse(R"(
static mut G: i64 = 0;
static UNUSED: i64 = 5;
fn main() {
    unsafe { G = 1; }
})");
    const lang::Program pruned = prune_ast(program);
    EXPECT_NE(pruned.find_static("G"), nullptr);
    EXPECT_EQ(pruned.find_static("UNUSED"), nullptr);
}

// Property sweep over the full corpus.
class PruneCorpusSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PruneCorpusSweep, Invariants) {
    const auto& ub_case = corpus().cases()[GetParam()];
    const auto program = parse(ub_case.buggy_source);
    PruneStats stats;
    const lang::Program pruned = prune_ast(program, &stats);
    // 1. Never grows.
    EXPECT_LE(stats.pruned_nodes, stats.original_nodes);
    // 2. Unsafe statements survive.
    EXPECT_EQ(count_unsafe_stmts(pruned), count_unsafe_stmts(program));
    // 3. Result still prints and re-parses.
    EXPECT_TRUE(lang::try_parse(lang::print_program(pruned)).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PruneCorpusSweep,
    ::testing::Range<std::size_t>(0, dataset::Corpus::standard().size(), 7));

}  // namespace
}  // namespace rustbrain::analysis
