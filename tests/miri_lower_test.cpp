// Slot lowering: the slot-lowered interpreter must be observationally
// identical to the tree-walk reference — same findings (category, message,
// span), same outputs, same step counts — over the whole corpus and over
// targeted name-resolution shapes (shadowing, statics, fn pointers,
// `become`), including the InterpLimits edges (step-limit exhaustion and
// call-depth overflow).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "miri/interp.hpp"
#include "miri/lower.hpp"
#include "miri/mirilite.hpp"
#include "verify/oracle.hpp"

namespace rustbrain::miri {
namespace {

using Inputs = std::vector<std::vector<std::int64_t>>;

/// Run `source` through the tree-walk MiriLite and through an uncached
/// Oracle (slot-lowered), and require byte-equal reports.
void expect_paths_agree(const std::string& source, const Inputs& inputs,
                        InterpLimits limits = {}) {
    const MiriLite tree_walk(limits);
    const MiriReport a = tree_walk.test_source(source, inputs);

    verify::OracleOptions options;
    options.limits = limits;
    options.caching = false;
    const verify::Oracle oracle(options);
    const MiriReport b = oracle.test_source(source, inputs);

    ASSERT_EQ(a.findings.size(), b.findings.size()) << source;
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].category, b.findings[i].category);
        EXPECT_EQ(a.findings[i].message, b.findings[i].message);
        EXPECT_EQ(a.findings[i].span.line, b.findings[i].span.line);
        EXPECT_EQ(a.findings[i].span.column, b.findings[i].span.column);
    }
    EXPECT_EQ(a.outputs, b.outputs) << source;
    EXPECT_EQ(a.total_steps, b.total_steps) << source;
}

TEST(MiriLowerTest, WholeCorpusAgreesBuggyAndFixed) {
    const dataset::Corpus corpus = dataset::Corpus::standard();
    for (const dataset::UbCase& ub_case : corpus.cases()) {
        SCOPED_TRACE(ub_case.id);
        expect_paths_agree(ub_case.buggy_source, ub_case.inputs);
        expect_paths_agree(ub_case.reference_fix, ub_case.inputs);
    }
}

TEST(MiriLowerTest, ShadowingResolvesToTheInnermostBinding) {
    expect_paths_agree(R"(fn main() {
    let x = 1;
    let x = x + 10;
    print_int(x);
    {
        let x = 100;
        print_int(x);
    }
    print_int(x);
}
)",
                       {});
}

TEST(MiriLowerTest, LoopRedeclarationGetsAFreshAllocationEachIteration) {
    expect_paths_agree(R"(fn main() {
    let mut i = 0;
    while i < 3 {
        let x = i * 2;
        print_int(x);
        i = i + 1;
    }
}
)",
                       {});
}

TEST(MiriLowerTest, StaticsAndLocalsShareNamespaceWithLocalsWinning) {
    expect_paths_agree(R"(static G: i32 = 7;
fn main() {
    print_int(G as i64);
    let G = 40;
    print_int(G);
}
)",
                       {});
}

TEST(MiriLowerTest, MutableStaticAccess) {
    expect_paths_agree(R"(static mut COUNTER: i64 = 0;
fn bump() {
    unsafe {
        COUNTER = COUNTER + 1;
    }
}
fn main() {
    bump();
    bump();
    unsafe {
        print_int(COUNTER);
    }
}
)",
                       {});
}

TEST(MiriLowerTest, FunctionPointersThroughLocalsAndIndirectCalls) {
    expect_paths_agree(R"(fn double(x: i64) -> i64 {
    return x * 2;
}
fn main() {
    let f = double;
    print_int(f(21));
}
)",
                       {});
}

TEST(MiriLowerTest, BecomeTailCallsReleaseSlotsBeforeTheCallee) {
    expect_paths_agree(R"(fn countdown(n: i64) {
    if n == 0 {
        print_int(0);
        return;
    }
    become countdown(n - 1);
}
fn main() {
    countdown(5000);
}
)",
                       {});
}

TEST(MiriLowerTest, SpawnedThreadsUseSlotFrames) {
    expect_paths_agree(R"(static mut SHARED: i64 = 0;
fn worker() {
    unsafe {
        SHARED = 5;
    }
}
fn main() {
    let handle = spawn(worker);
    join(handle);
    unsafe {
        print_int(SHARED);
    }
}
)",
                       {});
}

TEST(MiriLowerTest, InputsFlowIdentically) {
    expect_paths_agree(R"(fn main() {
    print_int(input(0) + input(1));
}
)",
                       {{3, 4}, {10, 20}});
}

// --- InterpLimits coverage (both paths) ------------------------------------

constexpr const char* kInfiniteLoop = R"(fn main() {
    let mut i = 0;
    while i < 1000000000 {
        i = i + 1;
    }
}
)";

TEST(MiriLowerTest, StepLimitExhaustionIsStableOnBothPaths) {
    InterpLimits limits;
    limits.max_steps = 500;
    const MiriLite tree_walk(limits);
    const MiriReport a = tree_walk.test_source(kInfiniteLoop, {});
    ASSERT_EQ(a.findings.size(), 1u);
    EXPECT_EQ(a.findings.front().category, UbCategory::Panic);
    EXPECT_EQ(a.findings.front().message,
              "step limit exceeded (possible infinite loop)");
    expect_paths_agree(kInfiniteLoop, {}, limits);
}

constexpr const char* kDeepRecursion = R"(fn recurse(n: i64) -> i64 {
    if n == 0 {
        return 0;
    }
    return recurse(n - 1);
}
fn main() {
    print_int(recurse(100000));
}
)";

TEST(MiriLowerTest, CallDepthOverflowIsStableOnBothPaths) {
    InterpLimits limits;
    limits.max_call_depth = 40;
    const MiriLite tree_walk(limits);
    const MiriReport a = tree_walk.test_source(kDeepRecursion, {});
    ASSERT_EQ(a.findings.size(), 1u);
    EXPECT_EQ(a.findings.front().category, UbCategory::Panic);
    EXPECT_EQ(a.findings.front().message,
              "stack overflow: call depth exceeded 40");
    expect_paths_agree(kDeepRecursion, {}, limits);
}

TEST(MiriLowerTest, DefaultLimitsAllowDeepBecomeChains) {
    // `become` must stay O(1) in call depth on the slot path too.
    verify::OracleOptions options;
    options.caching = false;
    const verify::Oracle oracle(options);
    const MiriReport report = oracle.test_source(R"(fn spin(n: i64) {
    if n == 0 {
        return;
    }
    become spin(n - 1);
}
fn main() {
    spin(150000);
}
)",
                                                 {});
    EXPECT_TRUE(report.passed()) << report.summary();
}

TEST(MiriLowerTest, LoweringCountsSlotsPerFunction) {
    auto program = lang::try_parse(R"(fn helper(a: i64, b: i64) -> i64 {
    let c = a + b;
    return c;
}
fn main() {
    let x = helper(1, 2);
    let y = x + 1;
    print_int(y);
}
)");
    ASSERT_TRUE(program.has_value());
    ASSERT_TRUE(lang::type_check(*program));
    const LoweredProgram lowered = lower_program(*program);
    ASSERT_EQ(lowered.fn_slot_counts.size(), 2u);
    EXPECT_EQ(lowered.fn_slot_counts[0], 3u);  // a, b, c
    EXPECT_EQ(lowered.fn_slot_counts[1], 2u);  // x, y
}

}  // namespace
}  // namespace rustbrain::miri
