#include <gtest/gtest.h>

#include <cmath>

#include "analysis/vectorize.hpp"
#include "dataset/corpus.hpp"
#include "lang/parser.hpp"

namespace rustbrain::analysis {
namespace {

lang::Program parse(const std::string& source) {
    auto program = lang::try_parse(source);
    EXPECT_TRUE(program.has_value());
    return program ? std::move(*program) : lang::Program{};
}

const dataset::Corpus& corpus() {
    static const dataset::Corpus c = dataset::Corpus::standard();
    return c;
}

TEST(VectorizeTest, NormalizedOutput) {
    const auto program = parse("fn main() { let x = 1; print_int(x as i64); }");
    const AstVector vec = vectorize(program);
    double norm = 0.0;
    for (float v : vec) norm += static_cast<double>(v) * v;
    EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(VectorizeTest, SelfSimilarityIsOne) {
    const auto program = parse("fn main() { let x = 1; }");
    const AstVector vec = vectorize(program);
    EXPECT_NEAR(cosine_similarity(vec, vec), 1.0, 1e-6);  // float storage
}

TEST(VectorizeTest, NameInsensitive) {
    // Variants differing only in identifiers/constant buckets map to
    // identical vectors — the property KB retrieval relies on.
    const auto a = parse("fn main() { let alpha = 3; print_int(alpha as i64); }");
    const auto b = parse("fn main() { let beta = 7; print_int(beta as i64); }");
    EXPECT_NEAR(cosine_similarity(vectorize(a), vectorize(b)), 1.0, 1e-6);
}

TEST(VectorizeTest, StructureSensitive) {
    const auto a = parse(
        "fn main() { unsafe { let p = alloc(8, 8); dealloc(p, 8, 8); } }");
    const auto b = parse("fn f() { } fn main() { let h = spawn(f); join(h); }");
    EXPECT_LT(cosine_similarity(vectorize(a), vectorize(b)), 0.8);
}

TEST(VectorizeTest, CorpusVariantsCloserThanCrossCategory) {
    const auto v0 =
        vectorize(parse(corpus().find("alloc/double_free_0")->buggy_source));
    const auto v1 =
        vectorize(parse(corpus().find("alloc/double_free_1")->buggy_source));
    const auto other =
        vectorize(parse(corpus().find("datarace/counter_0")->buggy_source));
    const double within = cosine_similarity(v0, v1);
    const double across = cosine_similarity(v0, other);
    EXPECT_GT(within, across);
    EXPECT_GT(within, 0.9);
}

TEST(VectorizeTest, AllCorpusVectorsFinite) {
    for (const auto& ub_case : corpus().cases()) {
        const AstVector vec = vectorize(parse(ub_case.buggy_source));
        for (float v : vec) {
            EXPECT_TRUE(std::isfinite(v)) << ub_case.id;
        }
    }
}

}  // namespace
}  // namespace rustbrain::analysis
