// Direct unit tests of the memory model: borrow stacks, provenance, vector
// clocks, epochs — below the interpreter.
#include <gtest/gtest.h>

#include "miri/memory.hpp"

namespace rustbrain::miri {
namespace {

using lang::Type;

AccessCtx ctx() { return AccessCtx{}; }

TEST(VectorClockTest, GetSetMerge) {
    VectorClock a;
    a.set(0, 3);
    a.set(2, 5);
    EXPECT_EQ(a.get(0), 3u);
    EXPECT_EQ(a.get(1), 0u);
    EXPECT_EQ(a.get(2), 5u);

    VectorClock b;
    b.set(1, 7);
    b.set(2, 1);
    a.merge(b);
    EXPECT_EQ(a.get(0), 3u);
    EXPECT_EQ(a.get(1), 7u);
    EXPECT_EQ(a.get(2), 5u);
}

TEST(VectorClockTest, Increment) {
    VectorClock a;
    a.increment(4);
    a.increment(4);
    EXPECT_EQ(a.get(4), 2u);
}

TEST(MemoryTest, AllocateAndRoundTripScalar) {
    MemoryModel mem;
    const AllocId id = mem.allocate(8, 8, AllocKind::Heap, "h", {});
    const Pointer p = mem.base_pointer(id);
    mem.store(p, Type::i64(), Value::scalar(0xDEADBEEF), ctx());
    const Value v = mem.load(p, Type::i64(), ctx());
    EXPECT_EQ(v.bits(), 0xDEADBEEFu);
}

TEST(MemoryTest, AddressesAligned) {
    MemoryModel mem;
    const AllocId a = mem.allocate(1, 1, AllocKind::Stack, "a", {});
    const AllocId b = mem.allocate(8, 8, AllocKind::Stack, "b", {});
    EXPECT_EQ(mem.get(b).base % 8, 0u);
    EXPECT_NE(mem.get(a).base, mem.get(b).base);
}

TEST(MemoryTest, GuardGapBetweenAllocations) {
    MemoryModel mem;
    const AllocId a = mem.allocate(8, 1, AllocKind::Stack, "a", {});
    const AllocId b = mem.allocate(8, 1, AllocKind::Stack, "b", {});
    EXPECT_GE(mem.get(b).base, mem.get(a).base + 8 + 16);
}

TEST(MemoryTest, UninitReadThrows) {
    MemoryModel mem;
    const AllocId id = mem.allocate(4, 4, AllocKind::Heap, "h", {});
    try {
        mem.load(mem.base_pointer(id), Type::i32(), ctx());
        FAIL() << "expected Uninit UB";
    } catch (const UbException& ub) {
        EXPECT_EQ(ub.finding.category, UbCategory::Uninit);
    }
}

TEST(MemoryTest, PartialOverwriteClearsPointerProvenance) {
    MemoryModel mem;
    const AllocId target = mem.allocate(4, 4, AllocKind::Stack, "t", {});
    const AllocId holder = mem.allocate(8, 8, AllocKind::Stack, "slot", {});
    const Type ptr_type = Type::raw_ptr(Type::i32(), false);

    mem.store(mem.base_pointer(holder), ptr_type,
              Value::pointer(mem.base_pointer(target)), ctx());
    // Clobber one byte of the stored pointer with an integer write.
    Pointer byte_ptr = mem.base_pointer(holder);
    mem.store(byte_ptr, Type::u8(), Value::scalar(0xFF), ctx());

    const Value reloaded = mem.load(mem.base_pointer(holder), ptr_type, ctx());
    EXPECT_FALSE(reloaded.as_ptr().has_provenance());
}

TEST(MemoryTest, StoredPointerKeepsProvenance) {
    MemoryModel mem;
    const AllocId target = mem.allocate(4, 4, AllocKind::Stack, "t", {});
    const AllocId holder = mem.allocate(8, 8, AllocKind::Stack, "slot", {});
    const Type ptr_type = Type::raw_ptr(Type::i32(), false);
    mem.store(mem.base_pointer(holder), ptr_type,
              Value::pointer(mem.base_pointer(target)), ctx());
    const Value reloaded = mem.load(mem.base_pointer(holder), ptr_type, ctx());
    EXPECT_TRUE(reloaded.as_ptr().has_provenance());
    EXPECT_EQ(reloaded.as_ptr().alloc, target);
}

TEST(MemoryTest, OffsetStaysInBounds) {
    MemoryModel mem;
    const AllocId id = mem.allocate(8, 8, AllocKind::Heap, "h", {});
    const Pointer p = mem.base_pointer(id);
    const Pointer end = mem.offset_pointer(p, 8, {});  // one-past-end OK
    EXPECT_EQ(end.addr, p.addr + 8);
    EXPECT_THROW(mem.offset_pointer(p, 9, {}), UbException);
    EXPECT_THROW(mem.offset_pointer(p, -1, {}), UbException);
}

TEST(MemoryTest, RetagRefChainReadWrite) {
    MemoryModel mem;
    const AllocId id = mem.allocate(4, 4, AllocKind::Stack, "x", {});
    const Pointer base = mem.base_pointer(id);
    mem.store(base, Type::i32(), Value::scalar(5), ctx());

    const Pointer unique = mem.retag_ref(base, 4, /*is_mut=*/true, {});
    mem.store(unique, Type::i32(), Value::scalar(6), ctx());
    EXPECT_EQ(mem.load(unique, Type::i32(), ctx()).bits(), 6u);
}

TEST(MemoryTest, WriteThroughBaseInvalidatesRef) {
    MemoryModel mem;
    const AllocId id = mem.allocate(4, 4, AllocKind::Stack, "x", {});
    const Pointer base = mem.base_pointer(id);
    mem.store(base, Type::i32(), Value::scalar(5), ctx());
    const Pointer ref = mem.retag_ref(base, 4, /*is_mut=*/false, {});
    // Direct write via the base tag invalidates the shared ref above it.
    mem.store(base, Type::i32(), Value::scalar(9), ctx());
    try {
        mem.load(ref, Type::i32(), ctx());
        FAIL() << "expected borrow UB";
    } catch (const UbException& ub) {
        EXPECT_EQ(ub.finding.category, UbCategory::BothBorrow);
    }
}

TEST(MemoryTest, ReadDoesNotInvalidateSharedRefs) {
    MemoryModel mem;
    const AllocId id = mem.allocate(4, 4, AllocKind::Stack, "x", {});
    const Pointer base = mem.base_pointer(id);
    mem.store(base, Type::i32(), Value::scalar(5), ctx());
    const Pointer r1 = mem.retag_ref(base, 4, false, {});
    const Pointer r2 = mem.retag_ref(base, 4, false, {});
    // Reads through any shared path keep all shared refs alive.
    EXPECT_EQ(mem.load(r1, Type::i32(), ctx()).bits(), 5u);
    EXPECT_EQ(mem.load(r2, Type::i32(), ctx()).bits(), 5u);
    EXPECT_EQ(mem.load(base, Type::i32(), ctx()).bits(), 5u);
    EXPECT_EQ(mem.load(r1, Type::i32(), ctx()).bits(), 5u);
}

TEST(MemoryTest, RawFromSharedRefIsReadOnly) {
    MemoryModel mem;
    const AllocId id = mem.allocate(4, 4, AllocKind::Stack, "x", {});
    const Pointer base = mem.base_pointer(id);
    mem.store(base, Type::i32(), Value::scalar(5), ctx());
    const Pointer shared = mem.retag_ref(base, 4, false, {});
    const Pointer raw = mem.retag_raw(shared, 4, /*writable=*/false, {});
    EXPECT_EQ(mem.load(raw, Type::i32(), ctx()).bits(), 5u);
    EXPECT_THROW(mem.store(raw, Type::i32(), Value::scalar(1), ctx()), UbException);
}

TEST(MemoryTest, KilledAllocationRejectsAccess) {
    MemoryModel mem;
    const AllocId id = mem.allocate(4, 4, AllocKind::Stack, "x", {});
    const Pointer p = mem.base_pointer(id);
    mem.store(p, Type::i32(), Value::scalar(1), ctx());
    mem.kill(id);
    try {
        mem.load(p, Type::i32(), ctx());
        FAIL() << "expected dangling UB";
    } catch (const UbException& ub) {
        EXPECT_EQ(ub.finding.category, UbCategory::DanglingPointer);
    }
}

TEST(MemoryTest, LeakCheckFindsLiveHeap) {
    MemoryModel mem;
    mem.allocate(8, 8, AllocKind::Heap, "h", {});
    const auto leak = mem.check_leaks();
    ASSERT_TRUE(leak.has_value());
    EXPECT_EQ(leak->category, UbCategory::Alloc);
}

TEST(MemoryTest, LeakCheckIgnoresStackAndStatic) {
    MemoryModel mem;
    mem.allocate(8, 8, AllocKind::Stack, "s", {});
    mem.allocate(8, 8, AllocKind::Static, "g", {});
    EXPECT_FALSE(mem.check_leaks().has_value());
}

TEST(MemoryTest, RaceDetectedBetweenUnorderedWrites) {
    MemoryModel mem;
    const AllocId id = mem.allocate(8, 8, AllocKind::Static, "g", {});
    const Pointer p = mem.base_pointer(id);

    VectorClock vc0;
    vc0.set(0, 1);
    VectorClock vc1;
    vc1.set(1, 1);  // thread 1 knows nothing of thread 0

    AccessCtx c0;
    c0.tid = 0;
    c0.vc = &vc0;
    mem.store(p, Type::i64(), Value::scalar(1), c0);

    AccessCtx c1;
    c1.tid = 1;
    c1.vc = &vc1;
    try {
        mem.store(p, Type::i64(), Value::scalar(2), c1);
        FAIL() << "expected data race";
    } catch (const UbException& ub) {
        EXPECT_EQ(ub.finding.category, UbCategory::DataRace);
    }
}

TEST(MemoryTest, NoRaceWhenOrdered) {
    MemoryModel mem;
    const AllocId id = mem.allocate(8, 8, AllocKind::Static, "g", {});
    const Pointer p = mem.base_pointer(id);

    VectorClock vc0;
    vc0.set(0, 1);
    AccessCtx c0;
    c0.tid = 0;
    c0.vc = &vc0;
    mem.store(p, Type::i64(), Value::scalar(1), c0);

    // Thread 1's clock includes thread 0's write (join/spawn edge).
    VectorClock vc1;
    vc1.set(0, 1);
    vc1.set(1, 1);
    AccessCtx c1;
    c1.tid = 1;
    c1.vc = &vc1;
    EXPECT_NO_THROW(mem.store(p, Type::i64(), Value::scalar(2), c1));
}

TEST(MemoryTest, BothAtomicIsNotARace) {
    MemoryModel mem;
    const AllocId id = mem.allocate(8, 8, AllocKind::Static, "g", {});
    const Pointer p = mem.base_pointer(id);

    VectorClock vc0;
    vc0.set(0, 1);
    AccessCtx c0;
    c0.tid = 0;
    c0.vc = &vc0;
    c0.atomic = true;
    mem.store(p, Type::i64(), Value::scalar(1), c0);

    VectorClock vc1;
    vc1.set(1, 1);
    AccessCtx c1;
    c1.tid = 1;
    c1.vc = &vc1;
    c1.atomic = true;
    EXPECT_NO_THROW(mem.store(p, Type::i64(), Value::scalar(2), c1));
}

TEST(MemoryTest, MixedAtomicNonAtomicRaces) {
    MemoryModel mem;
    const AllocId id = mem.allocate(8, 8, AllocKind::Static, "g", {});
    const Pointer p = mem.base_pointer(id);

    VectorClock vc0;
    vc0.set(0, 1);
    AccessCtx c0;
    c0.tid = 0;
    c0.vc = &vc0;
    c0.atomic = true;
    mem.store(p, Type::i64(), Value::scalar(1), c0);

    VectorClock vc1;
    vc1.set(1, 1);
    AccessCtx c1;
    c1.tid = 1;
    c1.vc = &vc1;
    c1.atomic = false;
    EXPECT_THROW(mem.store(p, Type::i64(), Value::scalar(2), c1), UbException);
}

TEST(MemoryTest, DeallocValidation) {
    MemoryModel mem;
    const AllocId id = mem.allocate(16, 8, AllocKind::Heap, "h", {});
    const Pointer p = mem.base_pointer(id);
    EXPECT_THROW(mem.deallocate(p, 8, 8, {}), UbException);   // wrong size
    EXPECT_THROW(mem.deallocate(p, 16, 4, {}), UbException);  // wrong align
    Pointer inner = p;
    inner.addr += 8;
    EXPECT_THROW(mem.deallocate(inner, 16, 8, {}), UbException);  // not start
    EXPECT_NO_THROW(mem.deallocate(p, 16, 8, {}));
    EXPECT_THROW(mem.deallocate(p, 16, 8, {}), UbException);  // double free
}

TEST(MemoryTest, ArrayStoreLoadElementwise) {
    MemoryModel mem;
    const Type array_type = Type::array(Type::i32(), 3);
    const AllocId id = mem.allocate(array_type.size_bytes(),
                                    array_type.align_bytes(), AllocKind::Stack,
                                    "a", {});
    const Pointer p = mem.base_pointer(id);
    mem.store(p, array_type,
              Value::array({Value::scalar(10), Value::scalar(20), Value::scalar(30)}),
              ctx());
    const Value loaded = mem.load(p, array_type, ctx());
    ASSERT_EQ(loaded.as_array().size(), 3u);
    EXPECT_EQ(loaded.as_array()[1].bits(), 20u);
}

TEST(ValueTest, SignExtension) {
    EXPECT_EQ(Value::scalar(0xFF).as_signed(1), -1);
    EXPECT_EQ(Value::scalar(0x7F).as_signed(1), 127);
    EXPECT_EQ(Value::scalar(0xFFFF).as_signed(2), -1);
    EXPECT_EQ(Value::scalar(5).as_signed(8), 5);
}

TEST(ValueTest, FnAddrRoundTrip) {
    const auto addr = fn_index_to_addr(3);
    EXPECT_EQ(fn_addr_to_index(addr, 10), 3);
    EXPECT_EQ(fn_addr_to_index(addr, 2), FnPtrVal::kInvalidFn);
    EXPECT_EQ(fn_addr_to_index(addr + 1, 10), FnPtrVal::kInvalidFn);
    EXPECT_EQ(fn_addr_to_index(4096, 10), FnPtrVal::kInvalidFn);
}

TEST(ValueTest, TruncateToType) {
    EXPECT_EQ(truncate_to_type(0x1FF, Type::u8()), 0xFFu);
    EXPECT_EQ(truncate_to_type(0x1FF, Type::i64()), 0x1FFu);
    EXPECT_EQ(truncate_to_type(7, Type::unit()), 0u);
}

}  // namespace
}  // namespace rustbrain::miri
