#include "support/strings.hpp"

#include <gtest/gtest.h>

#include "support/hashing.hpp"
#include "support/sim_clock.hpp"

namespace rustbrain::support {
namespace {

TEST(StringsTest, SplitBasic) {
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitEmptySegments) {
    const auto parts = split(",a,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "a");
    EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, TrimWhitespace) {
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, JoinRoundTrip) {
    EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, StartsEndsContains) {
    EXPECT_TRUE(starts_with("unsafe fn", "unsafe"));
    EXPECT_FALSE(starts_with("fn", "unsafe"));
    EXPECT_TRUE(ends_with("main.rs", ".rs"));
    EXPECT_FALSE(ends_with("rs", "main.rs"));
    EXPECT_TRUE(contains("let p = &x;", "&x"));
}

TEST(StringsTest, ReplaceAll) {
    EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
    EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(StringsTest, IndentSkipsEmptyLines) {
    EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");
}

TEST(StringsTest, FormatDouble) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(94.3, 1), "94.3");
}

TEST(HashingTest, Fnv1aStable) {
    // Known FNV-1a 64-bit value for "a".
    EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
    EXPECT_NE(fnv1a64("alloc"), fnv1a64("dealloc"));
}

TEST(HashingTest, U64HashDiffers) {
    EXPECT_NE(fnv1a64_u64(1), fnv1a64_u64(2));
    EXPECT_EQ(fnv1a64_u64(77), fnv1a64_u64(77));
}

TEST(SimClockTest, ChargesAccumulate) {
    SimClock clock;
    clock.charge("llm", 100.0);
    clock.charge("miri", 20.0);
    clock.charge("llm", 30.0);
    EXPECT_DOUBLE_EQ(clock.now_ms(), 150.0);
    EXPECT_DOUBLE_EQ(clock.total_for("llm"), 130.0);
    EXPECT_DOUBLE_EQ(clock.total_for("kb"), 0.0);
}

TEST(SimClockTest, RejectsNegative) {
    SimClock clock;
    EXPECT_THROW(clock.charge("x", -1.0), std::invalid_argument);
}

TEST(SimClockTest, ResetClears) {
    SimClock clock;
    clock.charge("llm", 5.0);
    clock.reset();
    EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0);
    EXPECT_TRUE(clock.breakdown().empty());
}

TEST(SimClockTest, PhaseMeasuresElapsed) {
    SimClock clock;
    ClockPhase phase(clock, "fast");
    clock.charge("llm", 12.0);
    EXPECT_DOUBLE_EQ(phase.elapsed_ms(), 12.0);
}

}  // namespace
}  // namespace rustbrain::support
