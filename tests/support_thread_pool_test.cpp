// ThreadPool: coverage, worker-id stability, exception propagation, reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace rustbrain::support {
namespace {

TEST(ThreadPoolTest, HardwareThreadsAtLeastOne) {
    EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPoolTest, HardwareThreadsHonorsWorkerEnvOverride) {
    // Sweeps on shared machines are tuned via RUSTBRAIN_WORKERS; garbage
    // and non-positive values fall back to the detected count.
    const std::size_t detected = ThreadPool::hardware_threads();
    ASSERT_EQ(setenv("RUSTBRAIN_WORKERS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::hardware_threads(), 3u);
    ASSERT_EQ(setenv("RUSTBRAIN_WORKERS", "0", 1), 0);
    EXPECT_EQ(ThreadPool::hardware_threads(), detected);
    ASSERT_EQ(setenv("RUSTBRAIN_WORKERS", "lots", 1), 0);
    EXPECT_EQ(ThreadPool::hardware_threads(), detected);
    ASSERT_EQ(setenv("RUSTBRAIN_WORKERS", "2x", 1), 0);
    EXPECT_EQ(ThreadPool::hardware_threads(), detected);
    ASSERT_EQ(unsetenv("RUSTBRAIN_WORKERS"), 0);
    EXPECT_EQ(ThreadPool::hardware_threads(), detected);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareThreads) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::size_t index, std::size_t) {
        hits[index].fetch_add(1);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
    ThreadPool pool(3);
    std::mutex mutex;
    std::set<std::size_t> seen;
    pool.parallel_for(64, [&](std::size_t, std::size_t worker) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.insert(worker);
    });
    EXPECT_FALSE(seen.empty());
    for (std::size_t worker : seen) {
        EXPECT_LT(worker, pool.size());
    }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
    ThreadPool pool(2);
    pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SubmitRunsJobsBeforeWaitIdleReturns) {
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t index, std::size_t) {
                              if (index == 13) {
                                  throw std::runtime_error("boom");
                              }
                          }),
        std::runtime_error);
    // The pool must still work after a failed batch.
    std::atomic<int> counter{0};
    pool.parallel_for(10, [&](std::size_t, std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SameWorkerIdNeverRunsConcurrently) {
    // An engine per worker is only safe if jobs with the same worker id are
    // serialized; assert no overlap per id.
    ThreadPool pool(4);
    std::vector<std::atomic<int>> active(pool.size());
    std::atomic<bool> overlapped{false};
    pool.parallel_for(256, [&](std::size_t, std::size_t worker) {
        if (active[worker].fetch_add(1) != 0) overlapped.store(true);
        active[worker].fetch_sub(1);
    });
    EXPECT_FALSE(overlapped.load());
}

}  // namespace
}  // namespace rustbrain::support
